//! Umbrella crate for the YewPar reproduction workspace.
//!
//! This crate exists so that the workspace root can host the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`).
//! The actual library code lives in the `crates/` members:
//!
//! * [`yewpar`] — the search-skeleton library (the paper's contribution),
//! * [`yewpar_semantics`] — the executable formal model of Section 3,
//! * [`yewpar_sim`] — the discrete-event distributed execution substrate,
//! * [`yewpar_instances`] — instance parsers and synthetic generators,
//! * [`yewpar_apps`] — the seven search applications from Section 5.1.

pub use yewpar;
pub use yewpar_apps;
pub use yewpar_instances;
pub use yewpar_semantics;
pub use yewpar_sim;
