//! Offline shim for the `rand` crate, 0.8 API subset (see `vendor/README.md`).
//!
//! Provides `RngCore`/`SeedableRng`, the `Rng` extension trait with
//! `gen_range` (half-open and inclusive integer/float ranges) and `gen_bool`,
//! and `rngs::SmallRng`. `SmallRng` is a SplitMix64 generator: fast, decent
//! statistical quality, and deterministic in its seed — which is all the
//! search skeletons need for reproducible victim selection.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction of a generator.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly. Implemented for half-open and
/// inclusive ranges of the primitive integer and float types.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let sample = self.start + unit * (self.end - self.start);
                // `start + unit * span` can round up to the excluded endpoint
                // on a draw within ~2⁻⁵³ of 1 (e.g. 0.25..0.75 with the
                // maximal draw).  Real rand 0.8 guarantees sample < end for a
                // half-open range, so clamp to the largest value below `end`
                // (which is always >= start, since start < end).  The bit
                // arithmetic is `next_down()` without its Rust-1.86 MSRV:
                // stepping the payload bits toward zero for a positive float
                // and away from zero for a negative one.
                if sample < self.end {
                    sample
                } else if self.end > 0.0 {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else if self.end < 0.0 {
                    <$t>::from_bits(self.end.to_bits() + 1)
                } else {
                    // end == ±0.0: the largest value below zero is the
                    // smallest negative subnormal.
                    -<$t>::from_bits(1)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing random sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.  As in real rand 0.8, `gen_bool(0.0)`
    /// is always `false` (a zero draw must not satisfy `draw < p`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        p > 0.0 && ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5i64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    /// A generator pinned to the maximal draw, exercising the rounding
    /// boundary of the float ranges.
    struct MaxRng;

    impl super::RngCore for MaxRng {
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn float_half_open_range_never_yields_the_excluded_endpoint() {
        let mut rng = MaxRng;
        // With the maximal draw, unit = 1 - 2⁻⁵³ and 0.25 + unit * 0.5 is
        // exactly halfway between 0.75 - 2⁻⁵³ and 0.75; round-to-even picks
        // 0.75, the excluded endpoint, without the clamp.
        let x = rng.gen_range(0.25f64..0.75);
        assert!(x < 0.75, "sampled the excluded endpoint: {x}");
        assert!(x >= 0.25);
        let x = rng.gen_range(0.25f32..0.75);
        assert!(x < 0.75, "sampled the excluded f32 endpoint: {x}");
        // Negative and zero endpoints must clamp toward the range, not away.
        let x = rng.gen_range(-0.75f64..-0.25);
        assert!((-0.75..-0.25).contains(&x));
        let x = rng.gen_range(-1.0f64..0.0);
        assert!((-1.0..0.0).contains(&x), "got {x}");
        // Inclusive ranges may return the endpoint itself but nothing above.
        let x = rng.gen_range(0.25f64..=0.75);
        assert!(x <= 0.75);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }
}
