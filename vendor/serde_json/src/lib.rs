//! Offline shim for the `serde_json` crate (see `vendor/README.md`).
//!
//! Provides the `json!` macro (object/array literals with expression values),
//! the [`Value`] tree, and [`to_string_pretty`] — the surface used by the
//! benchmark report writers. Object key order is preserved as written.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number (integer or float).
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no Infinity/NaN; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::U64(v as u64)) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self { Value::Number(Number::U64(*v as u64)) }
        }
    )*};
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::I64(v as i64)) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self { Value::Number(Number::I64(*v as i64)) }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, usize);
impl_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::F64(v))
    }
}

impl From<&f64> for Value {
    fn from(v: &f64) -> Self {
        Value::Number(Number::F64(*v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Self {
        Value::String((*v).to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Serialisation error (never produced by this shim; kept for signature
/// compatibility with `serde_json::to_string_pretty`).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialisation error")
    }
}

impl std::error::Error for Error {}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if fields.is_empty() => out.push_str("{}"),
        Value::Object(fields) => {
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(key, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-print a value with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    Ok(out)
}

/// Build a [`Value`] from a JSON-like literal. Keys must be string literals;
/// values may be arbitrary expressions convertible into [`Value`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($element) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::Value::from($value)) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_preserves_order_and_types() {
        let rows = vec![json!({"a": 1u64}), json!({"a": 2u64})];
        let v = json!({
            "name": "x",
            "count": 3usize,
            "ratio": 0.5f64,
            "ok": true,
            "rows": rows,
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.starts_with("{\n  \"name\": \"x\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("\"rows\": [\n"));
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "k": "a\"b\\c\nd" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains(r#""a\"b\\c\nd""#));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
        assert_eq!(to_string_pretty(&json!(null)).unwrap(), "null");
    }
}
