//! Offline shim for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps `std::sync::{Mutex, RwLock}` with parking_lot's non-poisoning,
//! guard-returning API. Poisoned locks are recovered transparently: a
//! panicking worker thread is already surfaced by the search engine's join
//! logic, so lock poisoning carries no extra information here.

use std::sync::{self, PoisonError};

/// Guard types are re-exported from `std`; only the acquisition API differs.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// See [`MutexGuard`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// See [`MutexGuard`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(10);
        assert_eq!(*l.read(), 10);
        *l.write() = 11;
        assert_eq!(l.into_inner(), 11);
    }
}
