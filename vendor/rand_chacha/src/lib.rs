//! Offline shim for the `rand_chacha` crate (see `vendor/README.md`).
//!
//! Exposes `ChaCha8Rng` with the `SeedableRng`/`RngCore` API the instance
//! generators use. The output stream is a keyed SplitMix64 derivative, **not**
//! real ChaCha8: seeded generation is deterministic and well distributed
//! (which is what the synthetic instance generators need) but does not match
//! upstream `rand_chacha` streams bit-for-bit.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator standing in for ChaCha8.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: u64,
    key: u64,
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state ^ self.key;
        z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        z ^ (z >> 33)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Derive a whitened key so nearby seeds give unrelated streams.
        let mut key = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x6A09_E667_F3BC_C909;
        key = (key ^ (key >> 29)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        ChaCha8Rng { state: seed, key }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
        }
    }
}
