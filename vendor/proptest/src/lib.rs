//! Offline shim for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: the `proptest!` macro with
//! `name(arg in strategy, ...)` bindings and an optional
//! `#![proptest_config(...)]` header, `prop_assert!`/`prop_assert_eq!`,
//! uniform range strategies over primitive numbers, and
//! `collection::vec(strategy, len_range)`. Failing cases are reported with
//! their inputs; there is **no shrinking**. Cases are generated from a
//! deterministic per-test seed so failures are reproducible.

use std::ops::Range;

pub mod test_runner {
    //! Runner configuration (subset of proptest's `TestRunner` config).

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate (default 256, as in real proptest).
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seed a [`TestRng`] from a test's fully qualified name (FNV-1a hash), so
/// every property gets an independent but reproducible stream.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h)
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of an element strategy with a length drawn
    /// from `len` (half-open, as in `proptest::collection::vec`).
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run a block of property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by one or more
/// `fn name(arg in strategy, ...) { body }` items (attributes such as
/// `#[test]` and doc comments are forwarded).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { [$config] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$config:expr]) => {};
    ([$config:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!("{} = {:?}; ", stringify!($arg), $arg));)+
                    s
                };
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property {} failed at case {}/{}:\n  {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { [$config] $($rest)* }
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Strategy over `0..=T::MAX`-style full ranges is not implemented; the
/// workspace only uses explicit ranges. This guard exists so misuse fails
/// with a clear message at compile time rather than silently passing.
pub fn unsupported(_: Range<()>) {
    unreachable!("unsupported proptest feature used; extend vendor/proptest")
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 5u64..10, y in 0usize..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_header_is_accepted(v in crate::collection::vec(0usize..4, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 4));
            prop_assert_eq!(v.iter().filter(|&&e| e < 4).count(), v.len());
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failures_report_inputs() {
        proptest! {
            fn always_fails(x in 0u8..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_per_test_seed() {
        let mut a = crate::rng_for_test("some::test");
        let mut b = crate::rng_for_test("some::test");
        let mut c = crate::rng_for_test("other::test");
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}
