//! Offline shim for the `crossbeam-channel` crate (see `vendor/README.md`).
//!
//! Implements the bounded-channel subset this workspace uses on top of
//! `std::sync::mpsc::sync_channel`. Since Rust 1.72 std's mpsc is itself the
//! crossbeam implementation, so behaviour (including rendezvous semantics for
//! capacity 0) matches the real crate for this surface.

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvTimeoutError, TryRecvError};

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug)]
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Recover the unsent message.
    pub fn into_inner(self) -> T {
        self.0
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// The receiver has been dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recover the unsent message.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
        }
    }
}

/// The sending half of a bounded channel. Clonable; `Send + Sync`.
pub struct Sender<T>(mpsc::SyncSender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Block until the message is delivered or the receiver disconnects.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value).map_err(|e| SendError(e.0))
    }

    /// Deliver without blocking, failing if the channel is full.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        self.0.try_send(value).map_err(|e| match e {
            mpsc::TrySendError::Full(t) => TrySendError::Full(t),
            mpsc::TrySendError::Disconnected(t) => TrySendError::Disconnected(t),
        })
    }
}

/// The receiving half of a bounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    /// Receive, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }

    /// Receive, blocking until a message or disconnection.
    pub fn recv(&self) -> Result<T, mpsc::RecvError> {
        self.0.recv()
    }
}

/// Create a bounded channel with the given capacity (0 = rendezvous).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_try_send_respects_capacity() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn send_error_returns_message() {
        let (tx, rx) = bounded(1);
        drop(rx);
        let err = tx.send(7).unwrap_err();
        assert_eq!(err.into_inner(), 7);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u8>(1);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        ));
    }
}
