//! Offline shim for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the macro and builder surface this workspace's benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! group configuration (`sample_size`, `measurement_time`, `warm_up_time`),
//! `bench_function` / `bench_with_input`, and `Bencher::{iter, iter_batched}`.
//! Measurement is plain wall-clock sampling: each benchmark runs a short
//! warm-up, then `sample_size` timed iterations, and the mean/min are printed
//! to stdout. No statistics, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    /// Collected per-sample durations for the enclosing group to report.
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std_black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.elapsed.push(start.elapsed());
        }
    }

    /// Time `routine` over inputs built by `setup` (setup excluded from the
    /// measured time).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std_black_box(routine(setup()));
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; sampling is bounded by `sample_size`.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            elapsed: Vec::new(),
        };
        f(&mut bencher);
        let n = bencher.elapsed.len().max(1);
        let total: Duration = bencher.elapsed.iter().sum();
        let mean = total / n as u32;
        let min = bencher.elapsed.iter().min().copied().unwrap_or_default();
        println!(
            "bench {:<50} mean {:>12?}  min {:>12?}  ({} samples)",
            format!("{}/{}", self.name, id),
            mean,
            min,
            n
        );
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        let mut f = f;
        self.run(id.to_string(), |b| f(b));
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// Finish the group (no-op; reports are printed eagerly).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with generated `criterion_group!` code.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            _criterion: self,
        }
    }
}

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        group.bench_function("iter", |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_expansion_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
