//! Symmetric TSP instances with integer distances.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A symmetric travelling-salesperson instance given by a full distance
/// matrix (integer distances, as in TSPLIB's `EUC_2D` rounding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TspInstance {
    n: usize,
    dist: Vec<u32>,
}

impl TspInstance {
    /// Build an instance from a full distance matrix (must be square and
    /// symmetric with zero diagonal).
    pub fn from_matrix(matrix: Vec<Vec<u32>>) -> Self {
        let n = matrix.len();
        let mut dist = vec![0; n * n];
        for (i, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), n, "distance matrix must be square");
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, matrix[j][i], "distance matrix must be symmetric");
                dist[i * n + j] = d;
            }
        }
        TspInstance { n, dist }
    }

    /// Random Euclidean instance: `n` cities uniformly placed in a
    /// `size × size` square, distances rounded to the nearest integer.
    pub fn random_euclidean(n: usize, size: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let coords: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..size), rng.gen_range(0.0..size)))
            .collect();
        let mut dist = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = coords[i].0 - coords[j].0;
                let dy = coords[i].1 - coords[j].1;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt().round() as u32;
            }
        }
        TspInstance { n, dist }
    }

    /// Number of cities.
    pub fn cities(&self) -> usize {
        self.n
    }

    /// Distance between cities `i` and `j`.
    pub fn distance(&self, i: usize, j: usize) -> u32 {
        self.dist[i * self.n + j]
    }

    /// Length of the closed tour visiting `tour` in order and returning to
    /// its first city.
    pub fn tour_length(&self, tour: &[usize]) -> u64 {
        if tour.len() < 2 {
            return 0;
        }
        let mut total = 0u64;
        for w in tour.windows(2) {
            total += self.distance(w[0], w[1]) as u64;
        }
        total + self.distance(*tour.last().unwrap(), tour[0]) as u64
    }

    /// The cheapest edge incident to city `i` (excluding the self loop),
    /// used by simple lower bounds.
    pub fn min_edge(&self, i: usize) -> u32 {
        (0..self.n)
            .filter(|&j| j != i)
            .map(|j| self.distance(i, j))
            .min()
            .unwrap_or(0)
    }

    /// Exact optimum by Held–Karp dynamic programming (reference answer for
    /// tests; exponential memory, only for n ≤ ~16).
    pub fn optimum_by_held_karp(&self) -> u64 {
        let n = self.n;
        assert!(
            (2..=16).contains(&n),
            "Held-Karp reference only supports 2..=16 cities"
        );
        let full = 1usize << (n - 1); // subsets of cities 1..n
        let inf = u64::MAX / 4;
        // dp[mask][j]: shortest path from 0 visiting exactly mask ∪ {0},
        // ending at city j+1.
        let mut dp = vec![vec![inf; n - 1]; full];
        for j in 0..n - 1 {
            dp[1 << j][j] = self.distance(0, j + 1) as u64;
        }
        for mask in 1..full {
            for j in 0..n - 1 {
                if mask & (1 << j) == 0 || dp[mask][j] >= inf {
                    continue;
                }
                for k in 0..n - 1 {
                    if mask & (1 << k) != 0 {
                        continue;
                    }
                    let next = mask | (1 << k);
                    let cand = dp[mask][j] + self.distance(j + 1, k + 1) as u64;
                    if cand < dp[next][k] {
                        dp[next][k] = cand;
                    }
                }
            }
        }
        (0..n - 1)
            .map(|j| dp[full - 1][j] + self.distance(j + 1, 0) as u64)
            .min()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square() -> TspInstance {
        // Four cities at the corners of a unit square scaled by 10.
        TspInstance::from_matrix(vec![
            vec![0, 10, 14, 10],
            vec![10, 0, 10, 14],
            vec![14, 10, 0, 10],
            vec![10, 14, 10, 0],
        ])
    }

    #[test]
    fn tour_length_of_square() {
        let t = square();
        assert_eq!(t.tour_length(&[0, 1, 2, 3]), 40);
        assert_eq!(t.tour_length(&[0, 2, 1, 3]), 48);
        assert_eq!(t.cities(), 4);
        assert_eq!(t.min_edge(0), 10);
    }

    #[test]
    fn held_karp_finds_square_optimum() {
        assert_eq!(square().optimum_by_held_karp(), 40);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_is_rejected() {
        TspInstance::from_matrix(vec![vec![0, 1], vec![2, 0]]);
    }

    #[test]
    fn random_euclidean_is_deterministic() {
        let a = TspInstance::random_euclidean(9, 100.0, 5);
        let b = TspInstance::random_euclidean(9, 100.0, 5);
        assert_eq!(a, b);
        assert_eq!(a.cities(), 9);
    }

    proptest! {
        #[test]
        fn euclidean_distances_satisfy_symmetry_and_rough_triangle(n in 3usize..10, seed in 0u64..100) {
            let t = TspInstance::random_euclidean(n, 50.0, seed);
            for i in 0..n {
                prop_assert_eq!(t.distance(i, i), 0);
                for j in 0..n {
                    prop_assert_eq!(t.distance(i, j), t.distance(j, i));
                    for k in 0..n {
                        // Rounding can violate the exact triangle inequality by at most 1 per edge.
                        prop_assert!(t.distance(i, k) as u64 <= t.distance(i, j) as u64 + t.distance(j, k) as u64 + 2);
                    }
                }
            }
        }

        #[test]
        fn any_tour_is_at_least_the_optimum(seed in 0u64..50) {
            let t = TspInstance::random_euclidean(8, 100.0, seed);
            let opt = t.optimum_by_held_karp();
            let identity: Vec<usize> = (0..8).collect();
            prop_assert!(t.tour_length(&identity) >= opt);
        }
    }
}
