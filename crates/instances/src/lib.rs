//! Instance parsers and synthetic instance generators.
//!
//! The YewPar paper evaluates its skeletons on standard challenge instances:
//! DIMACS clique graphs (brock, p_hat, san, MANN families), finite-geometry
//! k-clique instances, knapsack and TSP instances, and subgraph-isomorphism
//! pattern/target pairs.  Those exact files are not redistributed here;
//! instead this crate provides
//!
//! * a DIMACS `.clq` parser/writer so real instances can be dropped in, and
//! * **seeded synthetic generators** producing instance families with the
//!   same structural character (dense graphs with planted cliques, banded
//!   random graphs, structured "sandwiches", Euclidean tours, correlated
//!   knapsack classes, pattern-embedded SIP pairs), scaled so that the
//!   benchmark harnesses finish in seconds rather than hours.
//!
//! Every generator is deterministic in its seed (ChaCha8), so benchmark runs
//! are reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod knapsack;
pub mod registry;
pub mod sip;
pub mod tsp;

pub use graph::Graph;
pub use knapsack::KnapsackInstance;
pub use sip::SipInstance;
pub use tsp::TspInstance;
