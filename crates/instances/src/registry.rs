//! Named instance registry.
//!
//! The paper's evaluation uses named standard instances (DIMACS clique
//! graphs, a finite-geometry k-clique instance, around 20 instances per
//! application for Table 2).  This module fixes a *named*, seeded set of
//! synthetic stand-ins so that the benchmark harnesses, the tests and
//! EXPERIMENTS.md all refer to the same instances.
//!
//! Naming convention: `<family>-<n>-<variant>`, e.g. `brock-90-1` is the
//! first planted-clique ("brock-like") graph on 90 vertices.

use crate::graph::{self, Graph};
use crate::knapsack::{KnapsackClass, KnapsackInstance};
use crate::sip::SipInstance;
use crate::tsp::TspInstance;

/// A named clique-search instance.
#[derive(Debug, Clone)]
pub struct NamedGraph {
    /// Registry name (stable across runs).
    pub name: String,
    /// The graph itself.
    pub graph: Graph,
}

/// The 18 clique instances used by the Table 1 overhead experiment, modelled
/// on the four DIMACS families that appear in the paper's Table 1
/// (brock, p_hat, san, MANN) but scaled so each solves in milliseconds to a
/// few seconds sequentially.
pub fn table1_clique_instances() -> Vec<NamedGraph> {
    let mut out = Vec::new();
    // brock-like: dense random graphs with a planted clique.
    for (i, (n, p, k)) in [
        (110, 0.60, 18),
        (120, 0.60, 19),
        (130, 0.58, 19),
        (140, 0.55, 20),
    ]
    .iter()
    .enumerate()
    {
        out.push(NamedGraph {
            name: format!("brock-{n}-{}", i + 1),
            graph: graph::planted_clique(*n, *p, *k, 1000 + i as u64),
        });
    }
    // p_hat-like: wide degree spread.
    for (i, (n, lo, hi)) in [
        (120, 0.3, 0.85),
        (130, 0.3, 0.85),
        (140, 0.3, 0.8),
        (150, 0.3, 0.8),
        (160, 0.25, 0.75),
    ]
    .iter()
    .enumerate()
    {
        out.push(NamedGraph {
            name: format!("p_hat-{n}-{}", i + 1),
            graph: graph::p_hat_like(*n, *lo, *hi, 2000 + i as u64),
        });
    }
    // san-like: dense with an outsized planted clique.
    for (i, (n, p, k)) in [
        (100, 0.72, 24),
        (110, 0.72, 25),
        (120, 0.70, 26),
        (130, 0.66, 25),
        (140, 0.65, 26),
    ]
    .iter()
    .enumerate()
    {
        out.push(NamedGraph {
            name: format!("san-{n}-{}", i + 1),
            graph: graph::san_like(*n, *p, *k, 3000 + i as u64),
        });
    }
    // MANN-like: near-complete graphs.
    for (i, (n, miss)) in [(60, 0.06), (66, 0.06), (70, 0.06), (72, 0.055)]
        .iter()
        .enumerate()
    {
        out.push(NamedGraph {
            name: format!("mann-{n}-{}", i + 1),
            graph: graph::mann_like(*n, *miss, 4000 + i as u64),
        });
    }
    out
}

/// The harder decision instance used by the Figure 4 scaling experiment: a
/// large graph with a wide degree spread, standing in for the
/// `spreads_H(4,4)` finite-geometry instance.  The Figure 4 harness runs the
/// k-clique decision search for `k = ω + 1` (one above the clique number),
/// i.e. an exhaustive unsatisfiability proof, which gives a deterministic,
/// heavily parallelisable workload of the same character as the paper's
/// hour-long decision search.
pub fn fig4_kclique_instance() -> NamedGraph {
    NamedGraph {
        name: "spreads-like-180".to_string(),
        graph: graph::p_hat_like(180, 0.4, 0.85, 4444),
    }
}

/// Clique instances for the Table 2 skeleton comparison (smaller set).
pub fn table2_clique_instances() -> Vec<NamedGraph> {
    vec![
        NamedGraph {
            name: "brock-110-t2".into(),
            graph: graph::planted_clique(110, 0.58, 17, 7001),
        },
        NamedGraph {
            name: "p_hat-120-t2".into(),
            graph: graph::p_hat_like(120, 0.3, 0.85, 7002),
        },
        NamedGraph {
            name: "san-110-t2".into(),
            graph: graph::san_like(110, 0.68, 25, 7003),
        },
    ]
}

/// Knapsack instances for Table 2.
pub fn table2_knapsack_instances() -> Vec<(String, KnapsackInstance)> {
    vec![
        (
            "knap-uncorr-44".into(),
            KnapsackInstance::generate(KnapsackClass::Uncorrelated, 44, 1000, 8001),
        ),
        (
            "knap-weak-40".into(),
            KnapsackInstance::generate(KnapsackClass::WeaklyCorrelated, 40, 1000, 8002),
        ),
        (
            "knap-strong-28".into(),
            KnapsackInstance::generate(KnapsackClass::StronglyCorrelated, 28, 200, 8003),
        ),
    ]
}

/// TSP instances for Table 2.
pub fn table2_tsp_instances() -> Vec<(String, TspInstance)> {
    vec![
        (
            "tsp-euc-13".into(),
            TspInstance::random_euclidean(13, 1000.0, 9001),
        ),
        (
            "tsp-euc-14".into(),
            TspInstance::random_euclidean(14, 1000.0, 9002),
        ),
        (
            "tsp-euc-15".into(),
            TspInstance::random_euclidean(15, 500.0, 9003),
        ),
    ]
}

/// SIP instances for Table 2 (satisfiable plus one unsatisfiability proof,
/// like the mixed difficulty of the paper's SIP set).
pub fn table2_sip_instances() -> Vec<(String, SipInstance)> {
    vec![
        (
            "sip-embed-60-14".into(),
            SipInstance::with_embedding(60, 14, 0.3, 10_001),
        ),
        (
            "sip-embed-70-15".into(),
            SipInstance::with_embedding(70, 15, 0.25, 10_002),
        ),
        (
            "sip-unsat-40-10".into(),
            SipInstance::unlikely(40, 10, 10_003),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table1_has_eighteen_distinctly_named_instances() {
        let set = table1_clique_instances();
        assert_eq!(set.len(), 18);
        let names: HashSet<_> = set.iter().map(|g| g.name.clone()).collect();
        assert_eq!(names.len(), 18, "instance names must be unique");
        for inst in &set {
            assert!(inst.graph.order() >= 40);
            assert!(inst.graph.size() > 0);
        }
    }

    #[test]
    fn registry_is_deterministic() {
        let a = table1_clique_instances();
        let b = table1_clique_instances();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.graph, y.graph);
        }
    }

    #[test]
    fn fig4_instance_is_large_and_dense_enough_to_be_hard() {
        let named = fig4_kclique_instance();
        assert!(named.graph.order() >= 100);
        assert!(named.graph.density() > 0.3);
    }

    #[test]
    fn table2_sets_are_nonempty_and_named() {
        assert_eq!(table2_clique_instances().len(), 3);
        assert_eq!(table2_knapsack_instances().len(), 3);
        assert_eq!(table2_tsp_instances().len(), 3);
        assert_eq!(table2_sip_instances().len(), 3);
    }
}
