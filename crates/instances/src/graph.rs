//! Undirected graphs with bitset adjacency, the DIMACS `.clq` format, and
//! seeded random-graph generators modelled on the DIMACS clique families.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use yewpar::bitset::BitSet;
use yewpar::error::{Error, Result};

/// An undirected simple graph with adjacency stored as one [`BitSet`] per
/// vertex (the representation used by the bitset clique algorithms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<BitSet>,
    edges: usize,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj: vec![BitSet::new(n); n],
            edges: 0,
        }
    }

    /// Number of vertices.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn size(&self) -> usize {
        self.edges
    }

    /// Add the undirected edge `{u, v}` (ignored if already present or if
    /// `u == v`).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range for order {}",
            self.n
        );
        if u == v || self.adj[u].contains(v) {
            return;
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
        self.edges += 1;
    }

    /// Adjacency test.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && self.adj[u].contains(v)
    }

    /// The neighbourhood of `v` as a bitset.
    pub fn neighbours(&self, v: usize) -> &BitSet {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].count()
    }

    /// Edge density in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let max = self.n * (self.n - 1) / 2;
        self.edges as f64 / max as f64
    }

    /// Check whether `vertices` induces a clique.
    pub fn is_clique(&self, vertices: &[usize]) -> bool {
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Vertices sorted by non-increasing degree (the static ordering heuristic
    /// used when building clique search trees).
    pub fn degree_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.degree(v)));
        order
    }

    /// Relabel the graph so that vertex `i` of the result is `perm[i]` of the
    /// original.
    pub fn relabel(&self, perm: &[usize]) -> Graph {
        assert_eq!(perm.len(), self.n);
        let mut g = Graph::new(self.n);
        for (new_u, &old_u) in perm.iter().enumerate() {
            for (new_v, &old_v) in perm.iter().enumerate().skip(new_u + 1) {
                if self.has_edge(old_u, old_v) {
                    g.add_edge(new_u, new_v);
                }
            }
        }
        g
    }

    /// Parse a graph in DIMACS `.clq` / `.col` format (`p edge N M` header,
    /// `e u v` edge lines with 1-based vertices, `c` comment lines).
    pub fn from_dimacs(text: &str) -> Result<Graph> {
        let mut graph: Option<Graph> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("p") => {
                    let _format = parts.next();
                    let n: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                        Error::Parse(format!("line {}: bad vertex count", lineno + 1))
                    })?;
                    graph = Some(Graph::new(n));
                }
                Some("e") => {
                    let g = graph.as_mut().ok_or_else(|| {
                        Error::Parse(format!("line {}: edge before p line", lineno + 1))
                    })?;
                    let u: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                        Error::Parse(format!("line {}: bad edge endpoint", lineno + 1))
                    })?;
                    let v: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                        Error::Parse(format!("line {}: bad edge endpoint", lineno + 1))
                    })?;
                    if u == 0 || v == 0 || u > g.n || v > g.n {
                        return Err(Error::Parse(format!(
                            "line {}: vertex out of range",
                            lineno + 1
                        )));
                    }
                    g.add_edge(u - 1, v - 1);
                }
                _ => continue,
            }
        }
        graph.ok_or_else(|| Error::Parse("no p line found".into()))
    }

    /// Render the graph in DIMACS `.clq` format.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("p edge {} {}\n", self.n, self.edges));
        for u in 0..self.n {
            for v in self.adj[u].iter() {
                if v > u {
                    out.push_str(&format!("e {} {}\n", u + 1, v + 1));
                }
            }
        }
        out
    }
}

/// Erdős–Rényi `G(n, p)` random graph.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A "brock-like" instance: a dense random graph with a planted (hidden)
/// clique of `clique_size` vertices, scattered through the vertex order so
/// that degree heuristics cannot trivially find it — the character of the
/// DIMACS `brock` family.
pub fn planted_clique(n: usize, p: f64, clique_size: usize, seed: u64) -> Graph {
    assert!(clique_size <= n, "clique larger than the graph");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = gnp(n, p, seed.wrapping_add(1));
    // Choose the planted members by reservoir-style sampling of a shuffled
    // vertex list.
    let mut vertices: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        vertices.swap(i, j);
    }
    let members = &vertices[..clique_size];
    for (i, &u) in members.iter().enumerate() {
        for &v in &members[i + 1..] {
            g.add_edge(u, v);
        }
    }
    g
}

/// A "p_hat-like" instance: a random graph with a wide degree spread, built
/// by giving every vertex its own edge probability drawn from `[lo, hi]`
/// (the generalised `G(n, p)` construction used for the DIMACS `p_hat`
/// family).
pub fn p_hat_like(n: usize, lo: f64, hi: f64, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(lo..=hi)).collect();
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (probs[u] + probs[v]) / 2.0;
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A "san-like" instance: a very dense graph whose maximum clique is planted
/// and substantially larger than what random structure alone would give,
/// so bounds are tight and search is pruning-heavy.
pub fn san_like(n: usize, density: f64, clique_size: usize, seed: u64) -> Graph {
    planted_clique(n, density, clique_size, seed)
}

/// A "MANN-like" instance: the complement of a sparse graph (i.e. an
/// extremely dense graph) whose maximum clique is very large — search trees
/// are deep and thin.
pub fn mann_like(n: usize, missing_prob: f64, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if !rng.gen_bool(missing_prob.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(5);
        assert_eq!(g.order(), 5);
        assert_eq!(g.size(), 0);
        assert_eq!(g.density(), 0.0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn add_edge_is_symmetric_and_idempotent() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(0, 0);
        assert_eq!(g.size(), 1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.degree(0), 1);
        assert!(g.neighbours(0).contains(1));
    }

    #[test]
    fn clique_checking() {
        let mut g = Graph::new(5);
        for &(u, v) in &[(0, 1), (0, 2), (1, 2), (2, 3)] {
            g.add_edge(u, v);
        }
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 2, 3]));
        assert!(g.is_clique(&[4]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn dimacs_roundtrip() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(2, 5);
        g.add_edge(3, 4);
        let text = g.to_dimacs();
        let parsed = Graph::from_dimacs(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn dimacs_parser_handles_comments_and_errors() {
        let ok = "c a comment\np edge 3 2\ne 1 2\ne 2 3\n";
        let g = Graph::from_dimacs(ok).unwrap();
        assert_eq!(g.order(), 3);
        assert_eq!(g.size(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));

        assert!(Graph::from_dimacs("").is_err());
        assert!(Graph::from_dimacs("e 1 2\n").is_err());
        assert!(Graph::from_dimacs("p edge 2 1\ne 1 5\n").is_err());
        assert!(Graph::from_dimacs("p edge x 1\n").is_err());
    }

    #[test]
    fn gnp_extremes() {
        let empty = gnp(20, 0.0, 1);
        assert_eq!(empty.size(), 0);
        let complete = gnp(20, 1.0, 1);
        assert_eq!(complete.size(), 20 * 19 / 2);
        assert!((complete.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gnp_is_deterministic_in_its_seed() {
        assert_eq!(gnp(40, 0.3, 7), gnp(40, 0.3, 7));
        assert_ne!(gnp(40, 0.3, 7), gnp(40, 0.3, 8));
    }

    #[test]
    fn planted_clique_contains_a_clique_of_requested_size() {
        let g = planted_clique(60, 0.4, 12, 99);
        // Find the planted members by brute force greedy extension from every
        // vertex would be slow; instead verify indirectly: some set of 12
        // vertices is a clique.  We recover it by re-running the generator's
        // shuffling logic — simpler: check the degeneracy bound allows it.
        // Direct check: at least one vertex has >= 11 neighbours that are
        // pairwise adjacent is expensive; rely on the clique application's
        // integration tests for exact verification and check basic shape here.
        assert_eq!(g.order(), 60);
        assert!(g.density() > 0.3);
    }

    #[test]
    fn mann_like_is_very_dense() {
        let g = mann_like(40, 0.05, 3);
        assert!(g.density() > 0.9);
    }

    #[test]
    fn p_hat_like_has_wide_degree_spread() {
        let g = p_hat_like(80, 0.1, 0.9, 11);
        let degrees: Vec<usize> = (0..g.order()).map(|v| g.degree(v)).collect();
        let min = degrees.iter().min().unwrap();
        let max = degrees.iter().max().unwrap();
        assert!(
            max - min > 10,
            "expected a wide degree spread, got {min}..{max}"
        );
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = gnp(10, 0.5, 5);
        let perm: Vec<usize> = (0..10).rev().collect();
        let h = g.relabel(&perm);
        assert_eq!(g.size(), h.size());
        for u in 0..10 {
            for v in 0..10 {
                assert_eq!(g.has_edge(perm[u], perm[v]), h.has_edge(u, v));
            }
        }
    }

    #[test]
    fn degree_order_is_non_increasing() {
        let g = p_hat_like(30, 0.1, 0.9, 2);
        let order = g.degree_order();
        for w in order.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
    }

    proptest! {
        #[test]
        fn dimacs_roundtrip_random_graphs(n in 1usize..30, p in 0.0f64..1.0, seed in 0u64..1000) {
            let g = gnp(n, p, seed);
            let parsed = Graph::from_dimacs(&g.to_dimacs()).unwrap();
            prop_assert_eq!(parsed, g);
        }

        #[test]
        fn planted_clique_vertices_really_form_a_clique(seed in 0u64..200) {
            // Reconstruct the planted members exactly as the generator does.
            let n = 30;
            let k = 8;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = planted_clique(n, 0.2, k, seed);
            let mut vertices: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rand::Rng::gen_range(&mut rng, 0..=i);
                vertices.swap(i, j);
            }
            prop_assert!(g.is_clique(&vertices[..k]));
        }
    }
}
