//! Subgraph isomorphism instances: pattern/target graph pairs.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::graph::{gnp, Graph};

/// A subgraph-isomorphism (SIP) instance: decide whether the pattern graph
/// appears as a (non-induced) subgraph of the target graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SipInstance {
    /// The (small) pattern graph.
    pub pattern: Graph,
    /// The (larger) target graph.
    pub target: Graph,
}

impl SipInstance {
    /// Check that `mapping[i]` (pattern vertex i → target vertex) is a valid
    /// non-induced subgraph embedding: injective and edge-preserving.
    pub fn is_embedding(&self, mapping: &[usize]) -> bool {
        if mapping.len() != self.pattern.order() {
            return false;
        }
        // Injectivity.
        let mut seen = vec![false; self.target.order()];
        for &t in mapping {
            if t >= self.target.order() || seen[t] {
                return false;
            }
            seen[t] = true;
        }
        // Edge preservation.
        for u in 0..self.pattern.order() {
            for v in (u + 1)..self.pattern.order() {
                if self.pattern.has_edge(u, v) && !self.target.has_edge(mapping[u], mapping[v]) {
                    return false;
                }
            }
        }
        true
    }

    /// Generate an instance with a **guaranteed** embedding: the target is a
    /// `G(n, p)` graph and the pattern is an edge subgraph induced by a
    /// random subset of `pattern_size` target vertices (with vertex labels
    /// shuffled), so the decision answer is always "yes".
    pub fn with_embedding(target_n: usize, pattern_size: usize, p: f64, seed: u64) -> Self {
        assert!(pattern_size <= target_n);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let target = gnp(target_n, p, seed.wrapping_add(17));
        // Pick the embedded vertices.
        let mut vertices: Vec<usize> = (0..target_n).collect();
        for i in (1..target_n).rev() {
            let j = rng.gen_range(0..=i);
            vertices.swap(i, j);
        }
        let members = &vertices[..pattern_size];
        let mut pattern = Graph::new(pattern_size);
        for i in 0..pattern_size {
            for j in (i + 1)..pattern_size {
                if target.has_edge(members[i], members[j]) {
                    // Keep most edges; drop a few so the pattern is a proper
                    // subgraph (still guaranteed embeddable).
                    if rng.gen_bool(0.9) {
                        pattern.add_edge(i, j);
                    }
                }
            }
        }
        SipInstance { pattern, target }
    }

    /// Generate an instance that is *unlikely* to contain an embedding: the
    /// pattern is a dense random graph generated independently of a sparse
    /// target, so the decision search usually has to exhaust the space.
    pub fn unlikely(target_n: usize, pattern_size: usize, seed: u64) -> Self {
        let target = gnp(target_n, 0.15, seed.wrapping_add(3));
        let pattern = gnp(pattern_size, 0.9, seed.wrapping_add(4));
        SipInstance { pattern, target }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn embedding_checker_accepts_identity_on_equal_graphs() {
        let g = gnp(8, 0.5, 1);
        let inst = SipInstance {
            pattern: g.clone(),
            target: g,
        };
        let identity: Vec<usize> = (0..8).collect();
        assert!(inst.is_embedding(&identity));
    }

    #[test]
    fn embedding_checker_rejects_bad_mappings() {
        let mut pattern = Graph::new(2);
        pattern.add_edge(0, 1);
        let target = Graph::new(3); // no edges at all
        let inst = SipInstance { pattern, target };
        assert!(!inst.is_embedding(&[0, 1]), "edge not preserved");
        assert!(!inst.is_embedding(&[0, 0]), "not injective");
        assert!(!inst.is_embedding(&[0]), "wrong arity");
        assert!(!inst.is_embedding(&[0, 9]), "vertex out of range");
    }

    #[test]
    fn with_embedding_is_deterministic() {
        let a = SipInstance::with_embedding(20, 6, 0.4, 11);
        let b = SipInstance::with_embedding(20, 6, 0.4, 11);
        assert_eq!(a, b);
        assert_eq!(a.pattern.order(), 6);
        assert_eq!(a.target.order(), 20);
    }

    proptest! {
        /// The construction guarantees an embedding exists: the original
        /// member list (reconstructed from the seed) must be one.
        #[test]
        fn with_embedding_really_embeds(seed in 0u64..100) {
            let target_n = 16;
            let k = 5;
            let inst = SipInstance::with_embedding(target_n, k, 0.5, seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut vertices: Vec<usize> = (0..target_n).collect();
            for i in (1..target_n).rev() {
                let j = rand::Rng::gen_range(&mut rng, 0..=i);
                vertices.swap(i, j);
            }
            let mapping: Vec<usize> = vertices[..k].to_vec();
            prop_assert!(inst.is_embedding(&mapping));
        }
    }
}
