//! 0/1 knapsack instances and the standard correlated generator classes.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A 0/1 knapsack instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnapsackInstance {
    /// Profit of each item.
    pub profits: Vec<u64>,
    /// Weight of each item.
    pub weights: Vec<u64>,
    /// Total weight capacity.
    pub capacity: u64,
}

/// Correlation class of a generated instance (Pisinger's classic families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnapsackClass {
    /// Profits and weights drawn independently.
    Uncorrelated,
    /// Profit = weight + noise: bounds are informative but not exact.
    WeaklyCorrelated,
    /// Profit = weight + constant: hard for branch and bound.
    StronglyCorrelated,
}

impl KnapsackInstance {
    /// Number of items.
    pub fn items(&self) -> usize {
        self.profits.len()
    }

    /// Total profit and weight of a subset of item indices.
    pub fn evaluate(&self, chosen: &[usize]) -> (u64, u64) {
        let profit = chosen.iter().map(|&i| self.profits[i]).sum();
        let weight = chosen.iter().map(|&i| self.weights[i]).sum();
        (profit, weight)
    }

    /// True if the subset fits in the capacity.
    pub fn is_feasible(&self, chosen: &[usize]) -> bool {
        self.evaluate(chosen).1 <= self.capacity
    }

    /// Item indices sorted by non-increasing profit density (profit/weight) —
    /// the branching heuristic of the branch-and-bound solver.
    pub fn density_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.items()).collect();
        // Compare p_i / w_i > p_j / w_j without floating point:
        // p_i * w_j > p_j * w_i.
        order.sort_by(|&i, &j| {
            let lhs = self.profits[i] as u128 * self.weights[j].max(1) as u128;
            let rhs = self.profits[j] as u128 * self.weights[i].max(1) as u128;
            rhs.cmp(&lhs)
        });
        order
    }

    /// Exact optimum by dynamic programming over capacity (reference answer
    /// for tests; O(items × capacity), so only suitable for small instances).
    pub fn optimum_by_dp(&self) -> u64 {
        let cap = self.capacity as usize;
        let mut best = vec![0u64; cap + 1];
        for i in 0..self.items() {
            let w = self.weights[i] as usize;
            let p = self.profits[i];
            if w > cap {
                continue;
            }
            for c in (w..=cap).rev() {
                best[c] = best[c].max(best[c - w] + p);
            }
        }
        best[cap]
    }

    /// Generate an instance of the given class.
    ///
    /// * `items` — number of items,
    /// * `max_weight` — weights drawn from `1..=max_weight`,
    /// * capacity is set to half the total weight (the standard choice that
    ///   makes roughly half the items fit).
    pub fn generate(class: KnapsackClass, items: usize, max_weight: u64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut profits = Vec::with_capacity(items);
        let mut weights = Vec::with_capacity(items);
        for _ in 0..items {
            let w = rng.gen_range(1..=max_weight);
            let p = match class {
                KnapsackClass::Uncorrelated => rng.gen_range(1..=max_weight),
                KnapsackClass::WeaklyCorrelated => {
                    let spread = (max_weight / 10).max(1);
                    let delta = rng.gen_range(0..=2 * spread) as i64 - spread as i64;
                    (w as i64 + delta).max(1) as u64
                }
                KnapsackClass::StronglyCorrelated => w + max_weight / 10,
            };
            profits.push(p);
            weights.push(w);
        }
        let capacity = weights.iter().sum::<u64>() / 2;
        KnapsackInstance {
            profits,
            weights,
            capacity: capacity.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> KnapsackInstance {
        KnapsackInstance {
            profits: vec![60, 100, 120],
            weights: vec![10, 20, 30],
            capacity: 50,
        }
    }

    #[test]
    fn evaluate_and_feasibility() {
        let k = tiny();
        assert_eq!(k.items(), 3);
        assert_eq!(k.evaluate(&[1, 2]), (220, 50));
        assert!(k.is_feasible(&[1, 2]));
        assert!(!k.is_feasible(&[0, 1, 2]));
    }

    #[test]
    fn dp_optimum_matches_known_answer() {
        assert_eq!(tiny().optimum_by_dp(), 220);
    }

    #[test]
    fn density_order_puts_best_ratio_first() {
        let k = tiny();
        let order = k.density_order();
        assert_eq!(order[0], 0, "item 0 has ratio 6.0, the best");
    }

    #[test]
    fn generation_is_deterministic_and_class_shaped() {
        let a = KnapsackInstance::generate(KnapsackClass::StronglyCorrelated, 20, 100, 3);
        let b = KnapsackInstance::generate(KnapsackClass::StronglyCorrelated, 20, 100, 3);
        assert_eq!(a, b);
        for i in 0..a.items() {
            assert_eq!(
                a.profits[i],
                a.weights[i] + 10,
                "strong correlation broken at item {i}"
            );
        }
        let u = KnapsackInstance::generate(KnapsackClass::Uncorrelated, 50, 100, 4);
        assert_eq!(u.items(), 50);
        assert!(u.capacity >= 1);
    }

    proptest! {
        #[test]
        fn generated_instances_are_well_formed(
            items in 1usize..40,
            max_weight in 2u64..200,
            seed in 0u64..500,
        ) {
            for class in [KnapsackClass::Uncorrelated, KnapsackClass::WeaklyCorrelated, KnapsackClass::StronglyCorrelated] {
                let k = KnapsackInstance::generate(class, items, max_weight, seed);
                prop_assert_eq!(k.items(), items);
                prop_assert!(k.profits.iter().all(|&p| p >= 1));
                prop_assert!(k.weights.iter().all(|&w| (1..=max_weight).contains(&w)));
                prop_assert!(k.capacity <= k.weights.iter().sum::<u64>());
            }
        }

        #[test]
        fn dp_never_exceeds_total_profit(seed in 0u64..100) {
            let k = KnapsackInstance::generate(KnapsackClass::WeaklyCorrelated, 12, 30, seed);
            let opt = k.optimum_by_dp();
            prop_assert!(opt <= k.profits.iter().sum::<u64>());
        }
    }
}
