//! Virtual-time mirror of the runtime's multiplexing scheduler.
//!
//! The threaded [`Runtime`](yewpar::Runtime) leases disjoint worker subsets
//! to concurrent searches under a pluggable
//! [`SchedulePolicy`].  Its fairness
//! properties (who is admitted when, with how many workers, and how long
//! submissions wait) are timing-dependent and therefore awkward to assert
//! on wall clocks.  This module replays the *same policy objects* against a
//! virtual clock: each admitted search is simulated with its granted worker
//! count (disjointness is free — simulated searches share nothing), its
//! virtual makespan becomes its completion event, and the scheduler loop
//! admits, leases and reclaims exactly like the threaded dispatcher.  The
//! result is a deterministic schedule on which queue waits and grant sizes
//! can be asserted to the tick:
//!
//! * under [`Fifo`](yewpar::schedule::Fifo), submission *k*'s
//!   `queue_wait_ticks` is exactly the sum of its predecessors' makespans;
//! * under [`FairShare`](yewpar::schedule::FairShare), submissions that fit
//!   the pool together are granted simultaneously at tick 0 with a
//!   proportional split;
//! * per-search committed work (`nodes`) is unchanged by co-scheduling,
//!   because grants are disjoint — the mirror of the threaded assertion in
//!   `tests/sim_vs_threads.rs`.

use std::time::Duration;

use yewpar::schedule::{Adjustment, PendingRequest, Priority, RunningSearch, SchedulePolicy};
use yewpar::trace::{TraceEvent, TraceRecord, CONTROL_WORKER};
use yewpar::SearchStatus;

use crate::engine::{SimConfig, SimOutcome};

/// The boxed search runner of a [`SimJob`]: maps the scheduler-granted
/// configuration to a simulated outcome.
pub type SimRun<'p, R> = Box<dyn Fn(&SimConfig) -> SimOutcome<R> + 'p>;

/// One submission to the virtual scheduler.
pub struct SimJob<'p, R> {
    /// The search to run once granted: called with the scheduler-granted
    /// configuration (the submission's [`SimJob::config`] with its worker
    /// count replaced by the grant).
    pub run: SimRun<'p, R>,
    /// The submission's configuration; `config.workers()` is the
    /// *requested* worker count (the analogue of `SearchConfig::workers`).
    pub config: SimConfig,
    /// Virtual tick at which the submission arrives (0 = at startup).
    pub submit_at: u64,
    /// Scheduling priority, the analogue of `SearchConfig::priority`.
    /// [`Fifo`](yewpar::schedule::Fifo) and
    /// [`FairShare`](yewpar::schedule::FairShare) ignore it;
    /// [`DeadlineShare`](yewpar::schedule::DeadlineShare) weights admission
    /// and reclamation by it.
    pub priority: Priority,
}

impl<'p, R> SimJob<'p, R> {
    /// A submission arriving at tick 0.
    pub fn new(config: SimConfig, run: impl Fn(&SimConfig) -> SimOutcome<R> + 'p) -> Self {
        SimJob {
            run: Box::new(run),
            config,
            submit_at: 0,
            priority: Priority::Normal,
        }
    }

    /// Set the virtual arrival tick.
    pub fn submit_at(mut self, tick: u64) -> Self {
        self.submit_at = tick;
        self
    }

    /// Set the scheduling priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The submission as a policy-visible request, waiting since
    /// `submitted_at` on a clock reading `now`.  Virtual ticks are exposed
    /// as microseconds (the same mapping
    /// [`SimConfig::deadline_ticks`] documents), so a policy reading
    /// `queued_for` or `deadline` sees coherent durations.
    fn request(&self, submitted_at: u64, now: u64) -> PendingRequest {
        PendingRequest {
            requested_workers: self.config.workers().max(1),
            queued_for: Duration::from_micros(now - submitted_at),
            priority: self.priority,
            deadline: self.config.deadline_ticks.map(Duration::from_micros),
        }
    }
}

/// A job queued in the virtual scheduler.
struct Waiting {
    job_index: usize,
    submitted_at: u64,
}

/// A granted job running until its virtual completion time.
struct Running {
    finish_at: u64,
    granted: usize,
    /// Tie-break so completions resolve in admission order.
    seq: u64,
}

/// Run `jobs` through a virtual-time multiplexed scheduler over a pool of
/// `pool_workers`, admitting with `policy` — the deterministic mirror of
/// [`Runtime::with_policy`](yewpar::Runtime::with_policy).
///
/// Each admitted job is simulated single-locality with its granted worker
/// count; its [`SimOutcome`] is returned in submission order with
/// [`queue_wait_ticks`](SimOutcome::queue_wait_ticks) (virtual submission →
/// grant, recorded from the scheduler's clock) and
/// [`granted_workers`](SimOutcome::granted_workers) filled in.  Grants are
/// fixed for a job's lifetime, exactly like the threaded runtime's.
pub fn simulate_multiplexed<R>(
    pool_workers: usize,
    policy: &mut dyn SchedulePolicy,
    jobs: Vec<SimJob<'_, R>>,
) -> Vec<SimOutcome<R>> {
    let capacity = pool_workers.max(1);
    let mut outcomes: Vec<Option<SimOutcome<R>>> = jobs.iter().map(|_| None).collect();
    // Arrival events, processed in (tick, submission order).
    let mut arrivals: Vec<(u64, usize)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (j.submit_at, i))
        .collect();
    arrivals.sort_by_key(|&(tick, index)| (tick, index));
    let mut arrivals = arrivals.into_iter().peekable();

    let mut now: u64 = 0;
    let mut free = capacity;
    let mut pending: Vec<Waiting> = Vec::new();
    let mut running: Vec<Running> = Vec::new();
    let mut seq: u64 = 0;

    loop {
        // Ingest every arrival at or before `now` (the scheduler batches a
        // burst, like the dispatcher draining its channel).
        while let Some(&(tick, index)) = arrivals.peek() {
            if tick > now {
                break;
            }
            arrivals.next();
            pending.push(Waiting {
                job_index: index,
                submitted_at: tick,
            });
        }

        // Plan and execute admissions until the policy admits nothing.
        loop {
            if pending.is_empty() {
                break;
            }
            let requests: Vec<PendingRequest> = pending
                .iter()
                .map(|w| jobs[w.job_index].request(w.submitted_at, now))
                .collect();
            let admissions = policy.plan(&requests, free, capacity, running.len());
            if admissions.is_empty() {
                break;
            }
            // Pop admitted entries back-to-front so indices stay valid.
            let mut admitted: Vec<(Waiting, usize)> = Vec::with_capacity(admissions.len());
            for admission in admissions.into_iter().rev() {
                let waiting = pending.remove(admission.index);
                admitted.push((waiting, admission.workers.max(1)));
            }
            admitted.reverse();
            for (waiting, granted) in admitted {
                let job = &jobs[waiting.job_index];
                // The grant re-shapes the submission's config: a
                // single-locality slice of the pool with `granted` workers.
                let mut cfg = job.config.clone();
                cfg.localities = 1;
                cfg.workers_per_locality = granted;
                let mut outcome = (job.run)(&cfg);
                outcome.queue_wait_ticks = now - waiting.submitted_at;
                outcome.granted_workers = granted;
                running.push(Running {
                    finish_at: now + outcome.makespan,
                    granted,
                    seq,
                });
                seq += 1;
                outcomes[waiting.job_index] = Some(outcome);
                free = free.saturating_sub(granted);
            }
        }

        // Advance the clock to the next event: a completion or an arrival.
        let next_completion = running.iter().map(|r| (r.finish_at, r.seq)).min();
        let next_arrival = arrivals.peek().map(|&(tick, _)| tick);
        match (next_completion, next_arrival) {
            (None, None) => break,
            (Some((finish, _)), arrival) if arrival.map_or(true, |a| finish <= a) => {
                now = finish;
                // Reclaim every lease finishing at this tick, in admission
                // order (deterministic, like the dispatcher's FIFO channel).
                let mut done: Vec<usize> = running
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.finish_at == finish)
                    .map(|(i, _)| i)
                    .collect();
                done.sort_by_key(|&i| running[i].seq);
                for i in done.into_iter().rev() {
                    let r = running.remove(i);
                    free = (free + r.granted).min(capacity);
                }
            }
            (_, Some(arrival)) => {
                now = arrival;
            }
            // The guard always admits a completion when no arrival exists.
            (Some(_), None) => unreachable!(),
        }
    }

    debug_assert!(pending.is_empty() && running.is_empty());
    outcomes
        .into_iter()
        .map(|o| o.expect("every submitted job was scheduled"))
        .collect()
}

/// The result of [`simulate_multiplexed_elastic`]: per-job outcomes in
/// submission order plus the scheduler-level flight-recorder trace.
pub struct ElasticSchedule<R> {
    /// One outcome per submitted job, in submission order.  Beyond what
    /// [`simulate_multiplexed`] fills in, a preempted job resolves with
    /// [`SearchStatus::Cancelled`], its `nodes` scaled down to the work
    /// completed before the preemption, and `makespan` covering grant to
    /// unwind.
    pub outcomes: Vec<SimOutcome<R>>,
    /// Scheduler-level records (`SearchQueued`/`SearchGranted`/
    /// `GrantGrown`/`GrantShrunk`/`WorkerRevoked`/`SearchFinished`), all
    /// stamped with [`CONTROL_WORKER`] and virtual ticks — the same shape
    /// the threaded dispatcher emits, so they feed
    /// [`yewpar::trace::analyze`] (e.g. the `grant_thrash` rule) directly.
    pub trace: Vec<TraceRecord>,
}

/// A granted job in the *elastic* virtual scheduler.
struct ElasticRunning<R> {
    job_index: usize,
    search_id: u64,
    seq: u64,
    granted_at: u64,
    requested: usize,
    priority: Priority,
    /// Workers currently leased, *including* revocations still in flight
    /// (the policy-visible target count, like `RunningSearch::workers`).
    width: usize,
    pending_revocations: usize,
    preempted: bool,
    /// Malleable-work model: the job is `makespan × grant` worker-ticks of
    /// perfectly divisible area.  `area_done` accrues at the current width
    /// between scheduler events; the remaining area at a width change
    /// replays at the new width (`new_finish = t + ceil(remaining / w)`,
    /// i.e. `remaining_ticks × old_w / new_w`).
    area_total: u128,
    area_done: u128,
    last_event: u64,
    finish_at: u64,
    base: SimOutcome<R>,
}

impl<R> ElasticRunning<R> {
    /// Accrue progress up to `now` at the current width.  A preempted job
    /// is unwinding, not searching: its area is frozen.
    fn settle(&mut self, now: u64) {
        if !self.preempted {
            self.area_done += u128::from(now - self.last_event) * self.width as u128;
            self.area_done = self.area_done.min(self.area_total);
        }
        self.last_event = now;
    }

    /// Recompute the completion event for the current width (call after
    /// [`settle`](Self::settle)).
    fn reschedule(&mut self, now: u64) {
        let remaining = self.area_total - self.area_done;
        self.finish_at = now + (remaining.div_ceil(self.width.max(1) as u128)) as u64;
    }

    fn snapshot(&self, now: u64, elastic: bool) -> RunningSearch {
        RunningSearch {
            search_id: self.search_id,
            workers: self.width,
            requested_workers: self.requested,
            priority: self.priority,
            elastic,
            running_for: Duration::from_micros(now - self.granted_at),
            pending_revocations: self.pending_revocations,
            preempted: self.preempted,
        }
    }
}

/// Run `jobs` through the virtual-time scheduler with **renegotiable
/// leases** — the deterministic mirror of the threaded runtime's elastic
/// dispatcher.  [`simulate_multiplexed`] keeps the fixed-grant model (and
/// its exact schedules); this variant additionally drives
/// [`SchedulePolicy::replan`] at every scheduler event and executes the
/// returned [`Adjustment`]s:
///
/// * **Grow** takes effect immediately: the job's remaining work replays at
///   the wider width from the current tick.
/// * **Shrink** is cooperative: the revoked workers keep searching for
///   `revocation_latency` ticks (the virtual analogue of the poll-stride
///   bound on threaded revocation acknowledgement) and leave together at
///   `t + revocation_latency`, each acknowledged with a
///   [`WorkerRevoked`](TraceEvent::WorkerRevoked) record carrying that
///   exact latency.
/// * **Preempt** cancels the job: it unwinds within one revocation-latency
///   bound, resolving [`SearchStatus::Cancelled`] with its partial work
///   (`nodes` scaled to the area completed — the anytime-incumbent mirror).
///
/// Jobs are *malleable*: each admission is simulated once at its granted
/// width (fixing `result`/`nodes`/counters), and width changes rescale the
/// remaining virtual time as `ceil(remaining × old_w / new_w)`.  Under a
/// serial policy ([`Fifo`](yewpar::schedule::Fifo)) `replan` is never
/// consulted and no lease changes, so the schedule is identical to
/// [`simulate_multiplexed`] — the neutrality the perf gate asserts.
pub fn simulate_multiplexed_elastic<R>(
    pool_workers: usize,
    policy: &mut dyn SchedulePolicy,
    revocation_latency: u64,
    jobs: Vec<SimJob<'_, R>>,
) -> ElasticSchedule<R> {
    let capacity = pool_workers.max(1);
    let revocation_latency = revocation_latency.max(1);
    let elastic = policy.concurrent();
    let mut outcomes: Vec<Option<SimOutcome<R>>> = jobs.iter().map(|_| None).collect();
    let mut trace: Vec<TraceRecord> = Vec::new();
    let mut arrivals: Vec<(u64, usize)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (j.submit_at, i))
        .collect();
    arrivals.sort_by_key(|&(tick, index)| (tick, index));
    let mut arrivals = arrivals.into_iter().peekable();

    let mut now: u64 = 0;
    let mut free = capacity;
    let mut pending: Vec<Waiting> = Vec::new();
    let mut running: Vec<ElasticRunning<R>> = Vec::new();
    // Revocations in flight: (due tick, search id, worker count).
    let mut revocations: Vec<(u64, u64, usize)> = Vec::new();
    let mut next_search_id: u64 = 1;
    let mut seq: u64 = 0;

    loop {
        // Ingest every arrival at or before `now`.
        while let Some(&(tick, index)) = arrivals.peek() {
            if tick > now {
                break;
            }
            arrivals.next();
            trace.push(TraceRecord {
                ts: tick,
                worker: CONTROL_WORKER,
                event: TraceEvent::SearchQueued {
                    search_id: next_search_id + pending.len() as u64,
                },
            });
            pending.push(Waiting {
                job_index: index,
                submitted_at: tick,
            });
        }

        // Land every revocation due at or before `now`: the revoked
        // workers offload to the survivors and their slots return to the
        // pool.  Revocations against a job that has meanwhile been
        // preempted dissolve — its whole lease returns at the unwind.
        revocations.sort_by_key(|&(due, search, _)| (due, search));
        while let Some(&(due, search, count)) = revocations.first() {
            if due > now {
                break;
            }
            revocations.remove(0);
            if let Some(job) = running.iter_mut().find(|r| r.search_id == search) {
                job.pending_revocations = job.pending_revocations.saturating_sub(count);
                if job.preempted {
                    continue;
                }
                job.settle(now);
                for i in 0..count {
                    trace.push(TraceRecord {
                        ts: now,
                        worker: CONTROL_WORKER,
                        event: TraceEvent::WorkerRevoked {
                            search_id: search,
                            slot: (job.width - 1 - i) as u32,
                            latency_ns: revocation_latency,
                        },
                    });
                }
                job.width -= count;
                free = (free + count).min(capacity);
                job.reschedule(now);
            }
        }

        // Complete every job finishing at this tick, in admission order.
        let mut done: Vec<usize> = running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.finish_at <= now)
            .map(|(i, _)| i)
            .collect();
        done.sort_by_key(|&i| running[i].seq);
        for i in done.into_iter().rev() {
            let mut job = running.remove(i);
            job.settle(now);
            free = (free + job.width).min(capacity);
            revocations.retain(|&(_, search, _)| search != job.search_id);
            trace.push(TraceRecord {
                ts: now,
                worker: CONTROL_WORKER,
                event: TraceEvent::SearchFinished {
                    search_id: job.search_id,
                },
            });
            let mut outcome = job.base;
            outcome.makespan = now - job.granted_at;
            if job.preempted {
                outcome.status = SearchStatus::Cancelled;
                if let Some(scaled) =
                    (u128::from(outcome.nodes) * job.area_done).checked_div(job.area_total)
                {
                    outcome.nodes = scaled as u64;
                }
            }
            outcomes[job.job_index] = Some(outcome);
        }

        // Plan and execute admissions until the policy admits nothing.
        loop {
            if pending.is_empty() {
                break;
            }
            let requests: Vec<PendingRequest> = pending
                .iter()
                .map(|w| jobs[w.job_index].request(w.submitted_at, now))
                .collect();
            let admissions = policy.plan(&requests, free, capacity, running.len());
            if admissions.is_empty() {
                break;
            }
            let mut admitted: Vec<(Waiting, usize)> = Vec::with_capacity(admissions.len());
            for admission in admissions.into_iter().rev() {
                let waiting = pending.remove(admission.index);
                admitted.push((waiting, admission.workers.max(1)));
            }
            admitted.reverse();
            for (waiting, granted) in admitted {
                let job = &jobs[waiting.job_index];
                let mut cfg = job.config.clone();
                cfg.localities = 1;
                cfg.workers_per_locality = granted;
                let mut base = (job.run)(&cfg);
                base.queue_wait_ticks = now - waiting.submitted_at;
                base.granted_workers = granted;
                let search_id = next_search_id;
                next_search_id += 1;
                trace.push(TraceRecord {
                    ts: now,
                    worker: CONTROL_WORKER,
                    event: TraceEvent::SearchGranted {
                        search_id,
                        workers: granted as u32,
                    },
                });
                let makespan = base.makespan;
                running.push(ElasticRunning {
                    job_index: waiting.job_index,
                    search_id,
                    seq,
                    granted_at: now,
                    requested: job.config.workers().max(1),
                    priority: job.priority,
                    width: granted,
                    pending_revocations: 0,
                    preempted: false,
                    area_total: u128::from(makespan) * granted as u128,
                    area_done: 0,
                    last_event: now,
                    finish_at: now + makespan,
                    base,
                });
                seq += 1;
                free = free.saturating_sub(granted);
            }
        }

        // Renegotiate running leases — the virtual replanning tick.  The
        // threaded dispatcher replans on a short periodic timer; the
        // virtual clock replans at every scheduler event, which is the
        // same schedule with the idle gaps removed.
        if elastic && !running.is_empty() {
            running.sort_by_key(|r| r.search_id);
            let snapshot: Vec<RunningSearch> =
                running.iter().map(|r| r.snapshot(now, elastic)).collect();
            let requests: Vec<PendingRequest> = pending
                .iter()
                .map(|w| jobs[w.job_index].request(w.submitted_at, now))
                .collect();
            for adjustment in policy.replan(&snapshot, &requests, free, capacity) {
                match adjustment {
                    Adjustment::Grow { search, workers } => {
                        let Some(job) = running.iter_mut().find(|r| r.search_id == search) else {
                            continue;
                        };
                        if job.preempted {
                            continue;
                        }
                        let extra = workers.min(free);
                        if extra == 0 {
                            continue;
                        }
                        job.settle(now);
                        job.width += extra;
                        free -= extra;
                        job.reschedule(now);
                        trace.push(TraceRecord {
                            ts: now,
                            worker: CONTROL_WORKER,
                            event: TraceEvent::GrantGrown {
                                search_id: search,
                                workers: job.width as u32,
                            },
                        });
                    }
                    Adjustment::Shrink { search, workers } => {
                        let Some(job) = running.iter_mut().find(|r| r.search_id == search) else {
                            continue;
                        };
                        if job.preempted {
                            continue;
                        }
                        // Cooperative revocation never takes the last
                        // settled worker.
                        let take =
                            workers.min(job.width.saturating_sub(job.pending_revocations + 1));
                        if take == 0 {
                            continue;
                        }
                        job.pending_revocations += take;
                        revocations.push((now + revocation_latency, search, take));
                        trace.push(TraceRecord {
                            ts: now,
                            worker: CONTROL_WORKER,
                            event: TraceEvent::GrantShrunk {
                                search_id: search,
                                workers: (job.width - job.pending_revocations) as u32,
                            },
                        });
                    }
                    Adjustment::Preempt { search } => {
                        let Some(job) = running.iter_mut().find(|r| r.search_id == search) else {
                            continue;
                        };
                        if job.preempted {
                            continue;
                        }
                        job.settle(now);
                        job.preempted = true;
                        // The search unwinds cooperatively: its lease
                        // returns within one revocation-latency bound.
                        job.finish_at = now + revocation_latency;
                    }
                }
            }
        }

        // Advance the clock to the next event: a completion, a revocation
        // acknowledgement, or an arrival.
        let next_completion = running.iter().map(|r| (r.finish_at, r.seq)).min();
        let next_revocation = revocations.iter().map(|&(due, _, _)| due).min();
        let next_arrival = arrivals.peek().map(|&(tick, _)| tick);
        let next = [
            next_completion.map(|(tick, _)| tick),
            next_revocation,
            next_arrival,
        ]
        .into_iter()
        .flatten()
        .min();
        match next {
            Some(tick) => now = tick.max(now),
            None => break,
        }
    }

    debug_assert!(pending.is_empty() && running.is_empty());
    ElasticSchedule {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every submitted job was scheduled"))
            .collect(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yewpar::monoid::Sum;
    use yewpar::schedule::{DeadlineShare, FairShare, Fifo};
    use yewpar::trace::analyze::{analyze, AnalyzeConfig, FindingKind};
    use yewpar::{Coordination, Enumerate, SearchProblem};

    use crate::engine::simulate_enumerate;

    struct Fanout {
        depth: usize,
        width: usize,
    }

    impl SearchProblem for Fanout {
        type Node = usize;
        type Gen<'a> = std::vec::IntoIter<usize>;
        fn root(&self) -> usize {
            0
        }
        fn generator(&self, node: &usize) -> Self::Gen<'_> {
            if *node < self.depth {
                vec![node + 1; self.width].into_iter()
            } else {
                vec![].into_iter()
            }
        }
    }

    impl Enumerate for Fanout {
        type Value = Sum<u64>;
        fn value(&self, _n: &usize) -> Sum<u64> {
            Sum(1)
        }
    }

    fn job(workers: usize) -> SimJob<'static, Sum<u64>> {
        sized_job(workers, 7)
    }

    fn sized_job(workers: usize, depth: usize) -> SimJob<'static, Sum<u64>> {
        let cfg = SimConfig::new(Coordination::depth_bounded(2), 1, workers);
        SimJob::new(cfg, move |granted_cfg| {
            simulate_enumerate(&Fanout { depth, width: 3 }, granted_cfg)
        })
    }

    #[test]
    fn fifo_serialises_and_accumulates_queue_wait() {
        let outcomes = simulate_multiplexed(8, &mut Fifo, vec![job(8), job(8), job(8)]);
        assert_eq!(outcomes[0].queue_wait_ticks, 0);
        assert_eq!(
            outcomes[1].queue_wait_ticks, outcomes[0].makespan,
            "the second FIFO submission waits out the first"
        );
        assert_eq!(
            outcomes[2].queue_wait_ticks,
            outcomes[0].makespan + outcomes[1].makespan
        );
        for out in &outcomes {
            assert_eq!(out.granted_workers, 8, "FIFO grants the request in full");
            assert!(out.status.is_complete());
        }
    }

    #[test]
    fn fair_share_admits_a_fitting_pair_simultaneously() {
        let outcomes = simulate_multiplexed(8, &mut FairShare, vec![job(4), job(4)]);
        for out in &outcomes {
            assert_eq!(out.queue_wait_ticks, 0, "both admitted at tick 0");
            assert_eq!(out.granted_workers, 4);
        }
        // Identical jobs co-scheduled on equal shares do identical work.
        assert_eq!(outcomes[0].nodes, outcomes[1].nodes);
        assert_eq!(outcomes[0].makespan, outcomes[1].makespan);
    }

    #[test]
    fn fair_share_splits_a_contended_pool_and_reclaims() {
        // Three greedy jobs on 8 workers: 3+3+2 (ceiling split, oldest
        // favoured), all admitted at tick 0.
        let outcomes = simulate_multiplexed(8, &mut FairShare, vec![job(8), job(8), job(8)]);
        let grants: Vec<usize> = outcomes.iter().map(|o| o.granted_workers).collect();
        assert_eq!(grants, vec![3, 3, 2]);
        assert!(outcomes.iter().all(|o| o.queue_wait_ticks == 0));
        // A *late* fourth job (arriving once the pool is fully leased)
        // waits for the first reclamation, not for the whole pool.
        let first_finish = outcomes.iter().map(|o| o.makespan).min().unwrap();
        let outcomes = simulate_multiplexed(
            8,
            &mut FairShare,
            vec![job(8), job(8), job(8), job(8).submit_at(1)],
        );
        assert_eq!(
            outcomes[3].queue_wait_ticks,
            first_finish - 1,
            "the queued job is admitted at the first completion"
        );
    }

    #[test]
    fn co_scheduling_does_not_change_per_search_work() {
        let solo = simulate_multiplexed(8, &mut FairShare, vec![job(4)]);
        let paired = simulate_multiplexed(8, &mut FairShare, vec![job(4), job(4)]);
        assert_eq!(solo[0].nodes, paired[0].nodes);
        assert_eq!(solo[0].nodes, paired[1].nodes);
        assert_eq!(
            solo[0].makespan, paired[0].makespan,
            "disjoint grants: no slowdown"
        );
    }

    #[test]
    fn arrivals_after_startup_are_respected() {
        let late = job(8).submit_at(10_000);
        let outcomes = simulate_multiplexed(8, &mut Fifo, vec![job(8), late]);
        // The late job's wait is measured from its own arrival.
        let first = outcomes[0].makespan;
        assert_eq!(outcomes[1].queue_wait_ticks, first.saturating_sub(10_000));
    }

    #[test]
    fn elastic_under_fifo_is_schedule_identical_to_fixed_grants() {
        // A serial policy never replans, so the elastic scheduler must
        // produce the exact fixed-grant schedule — the neutrality the perf
        // gate asserts against the committed BENCH baselines.
        let make = || vec![job(8), job(4), job(8).submit_at(10_000)];
        let plain = simulate_multiplexed(8, &mut Fifo, make());
        let elastic = simulate_multiplexed_elastic(8, &mut Fifo, 50, make());
        assert_eq!(plain.len(), elastic.outcomes.len());
        for (p, e) in plain.iter().zip(&elastic.outcomes) {
            assert_eq!(p.queue_wait_ticks, e.queue_wait_ticks);
            assert_eq!(p.granted_workers, e.granted_workers);
            assert_eq!(p.makespan, e.makespan);
            assert_eq!(p.nodes, e.nodes);
            assert_eq!(p.status, e.status);
        }
        assert!(
            !elastic.trace.iter().any(|r| matches!(
                r.event,
                TraceEvent::GrantGrown { .. }
                    | TraceEvent::GrantShrunk { .. }
                    | TraceEvent::WorkerRevoked { .. }
            )),
            "a serial policy renegotiates no lease"
        );
    }

    #[test]
    fn urgent_arrival_is_admitted_after_exactly_one_revocation_latency() {
        // A saturating Low-priority job holds all 8 workers; an Urgent
        // 4-worker job arrives at tick 100.  DeadlineShare revokes 4
        // workers at tick 100; they acknowledge at 100 + R; the urgent job
        // starts that same tick — its queue wait is exactly R.
        const R: u64 = 50;
        let background = sized_job(8, 8).priority(Priority::Low);
        let urgent = sized_job(4, 5).priority(Priority::Urgent).submit_at(100);
        let schedule =
            simulate_multiplexed_elastic(8, &mut DeadlineShare, R, vec![background, urgent]);
        let [bg, urgent] = &schedule.outcomes[..] else {
            panic!("two outcomes");
        };
        assert_eq!(
            urgent.queue_wait_ticks, R,
            "admitted one revocation-latency bound after arrival, not after \
             the background makespan"
        );
        assert_eq!(urgent.granted_workers, 4);
        assert!(urgent.status.is_complete());
        assert!(bg.status.is_complete(), "shrunk, not preempted");
        let revoked: Vec<u64> = schedule
            .trace
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::WorkerRevoked { latency_ns, .. } => Some(latency_ns),
                _ => None,
            })
            .collect();
        assert_eq!(revoked, vec![R; 4], "each acknowledgement took exactly R");
    }

    #[test]
    fn preemption_resolves_cancelled_with_partial_work() {
        // On a 4-worker pool an Urgent 4-worker arrival cannot be served
        // by shrinking alone (the background keeps one worker), so
        // DeadlineShare preempts the background outright.
        const R: u64 = 50;
        let solo = simulate_multiplexed(4, &mut Fifo, vec![sized_job(4, 8)]);
        let background = sized_job(4, 8).priority(Priority::Low);
        let urgent = sized_job(4, 5).priority(Priority::Urgent).submit_at(100);
        let schedule =
            simulate_multiplexed_elastic(4, &mut DeadlineShare, R, vec![background, urgent]);
        let [bg, urgent] = &schedule.outcomes[..] else {
            panic!("two outcomes");
        };
        assert_eq!(bg.status, SearchStatus::Cancelled);
        assert_eq!(bg.makespan, 100 + R, "unwound one revocation bound later");
        assert!(bg.nodes > 0, "the partial incumbent is kept");
        assert!(
            bg.nodes < solo[0].nodes,
            "preempted mid-run: {} of {} nodes",
            bg.nodes,
            solo[0].nodes
        );
        assert_eq!(urgent.queue_wait_ticks, R);
        assert!(urgent.status.is_complete());
    }

    #[test]
    fn grant_oscillation_is_flagged_by_the_thrash_analyzer() {
        // FairShare grows a lone small job into the whole pool, reclaims
        // for each newcomer, then re-grows when the newcomer finishes.
        // Two newcomer cycles produce four lease changes on the first
        // search — enough for the flight-recorder's grant_thrash rule.
        let schedule = simulate_multiplexed_elastic(
            8,
            &mut FairShare,
            10,
            vec![
                sized_job(2, 9),
                sized_job(6, 4).submit_at(1_000),
                sized_job(6, 4).submit_at(200_000),
            ],
        );
        assert!(schedule.outcomes.iter().all(|o| o.status.is_complete()));
        // Committed work is fixed at admission width: co-scheduling and
        // lease changes never alter what a search counts.
        let solo = simulate_multiplexed(8, &mut FairShare, vec![sized_job(2, 9)]);
        assert_eq!(schedule.outcomes[0].nodes, solo[0].nodes);
        let changes = schedule
            .trace
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    TraceEvent::GrantGrown { search_id: 1, .. }
                        | TraceEvent::GrantShrunk { search_id: 1, .. }
                )
            })
            .count();
        assert!(changes >= 4, "only {changes} lease changes on search 1");
        let findings = analyze(&schedule.trace, &AnalyzeConfig::default());
        assert!(
            findings.iter().any(|f| f.kind == FindingKind::GrantThrash),
            "thrash rule stayed silent over {findings:?}"
        );
    }
}
