//! Virtual-time mirror of the runtime's multiplexing scheduler.
//!
//! The threaded [`Runtime`](yewpar::Runtime) leases disjoint worker subsets
//! to concurrent searches under a pluggable
//! [`SchedulePolicy`].  Its fairness
//! properties (who is admitted when, with how many workers, and how long
//! submissions wait) are timing-dependent and therefore awkward to assert
//! on wall clocks.  This module replays the *same policy objects* against a
//! virtual clock: each admitted search is simulated with its granted worker
//! count (disjointness is free — simulated searches share nothing), its
//! virtual makespan becomes its completion event, and the scheduler loop
//! admits, leases and reclaims exactly like the threaded dispatcher.  The
//! result is a deterministic schedule on which queue waits and grant sizes
//! can be asserted to the tick:
//!
//! * under [`Fifo`](yewpar::schedule::Fifo), submission *k*'s
//!   `queue_wait_ticks` is exactly the sum of its predecessors' makespans;
//! * under [`FairShare`](yewpar::schedule::FairShare), submissions that fit
//!   the pool together are granted simultaneously at tick 0 with a
//!   proportional split;
//! * per-search committed work (`nodes`) is unchanged by co-scheduling,
//!   because grants are disjoint — the mirror of the threaded assertion in
//!   `tests/sim_vs_threads.rs`.

use yewpar::schedule::{PendingRequest, SchedulePolicy};

use crate::engine::{SimConfig, SimOutcome};

/// The boxed search runner of a [`SimJob`]: maps the scheduler-granted
/// configuration to a simulated outcome.
pub type SimRun<'p, R> = Box<dyn Fn(&SimConfig) -> SimOutcome<R> + 'p>;

/// One submission to the virtual scheduler.
pub struct SimJob<'p, R> {
    /// The search to run once granted: called with the scheduler-granted
    /// configuration (the submission's [`SimJob::config`] with its worker
    /// count replaced by the grant).
    pub run: SimRun<'p, R>,
    /// The submission's configuration; `config.workers()` is the
    /// *requested* worker count (the analogue of `SearchConfig::workers`).
    pub config: SimConfig,
    /// Virtual tick at which the submission arrives (0 = at startup).
    pub submit_at: u64,
}

impl<'p, R> SimJob<'p, R> {
    /// A submission arriving at tick 0.
    pub fn new(config: SimConfig, run: impl Fn(&SimConfig) -> SimOutcome<R> + 'p) -> Self {
        SimJob {
            run: Box::new(run),
            config,
            submit_at: 0,
        }
    }

    /// Set the virtual arrival tick.
    pub fn submit_at(mut self, tick: u64) -> Self {
        self.submit_at = tick;
        self
    }
}

/// A job queued in the virtual scheduler.
struct Waiting {
    job_index: usize,
    requested: usize,
    submitted_at: u64,
}

/// A granted job running until its virtual completion time.
struct Running {
    finish_at: u64,
    granted: usize,
    /// Tie-break so completions resolve in admission order.
    seq: u64,
}

/// Run `jobs` through a virtual-time multiplexed scheduler over a pool of
/// `pool_workers`, admitting with `policy` — the deterministic mirror of
/// [`Runtime::with_policy`](yewpar::Runtime::with_policy).
///
/// Each admitted job is simulated single-locality with its granted worker
/// count; its [`SimOutcome`] is returned in submission order with
/// [`queue_wait_ticks`](SimOutcome::queue_wait_ticks) (virtual submission →
/// grant, recorded from the scheduler's clock) and
/// [`granted_workers`](SimOutcome::granted_workers) filled in.  Grants are
/// fixed for a job's lifetime, exactly like the threaded runtime's.
pub fn simulate_multiplexed<R>(
    pool_workers: usize,
    policy: &mut dyn SchedulePolicy,
    jobs: Vec<SimJob<'_, R>>,
) -> Vec<SimOutcome<R>> {
    let capacity = pool_workers.max(1);
    let mut outcomes: Vec<Option<SimOutcome<R>>> = jobs.iter().map(|_| None).collect();
    // Arrival events, processed in (tick, submission order).
    let mut arrivals: Vec<(u64, usize)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (j.submit_at, i))
        .collect();
    arrivals.sort_by_key(|&(tick, index)| (tick, index));
    let mut arrivals = arrivals.into_iter().peekable();

    let mut now: u64 = 0;
    let mut free = capacity;
    let mut pending: Vec<Waiting> = Vec::new();
    let mut running: Vec<Running> = Vec::new();
    let mut seq: u64 = 0;

    loop {
        // Ingest every arrival at or before `now` (the scheduler batches a
        // burst, like the dispatcher draining its channel).
        while let Some(&(tick, index)) = arrivals.peek() {
            if tick > now {
                break;
            }
            arrivals.next();
            pending.push(Waiting {
                job_index: index,
                requested: jobs[index].config.workers().max(1),
                submitted_at: tick,
            });
        }

        // Plan and execute admissions until the policy admits nothing.
        loop {
            if pending.is_empty() {
                break;
            }
            let requests: Vec<PendingRequest> = pending
                .iter()
                .map(|w| PendingRequest {
                    requested_workers: w.requested,
                    // Policies see the wait as a Duration; expose virtual
                    // ticks as microseconds (neither built-in policy reads
                    // it, but custom ones may).
                    queued_for: std::time::Duration::from_micros(now - w.submitted_at),
                })
                .collect();
            let admissions = policy.plan(&requests, free, capacity, running.len());
            if admissions.is_empty() {
                break;
            }
            // Pop admitted entries back-to-front so indices stay valid.
            let mut admitted: Vec<(Waiting, usize)> = Vec::with_capacity(admissions.len());
            for admission in admissions.into_iter().rev() {
                let waiting = pending.remove(admission.index);
                admitted.push((waiting, admission.workers.max(1)));
            }
            admitted.reverse();
            for (waiting, granted) in admitted {
                let job = &jobs[waiting.job_index];
                // The grant re-shapes the submission's config: a
                // single-locality slice of the pool with `granted` workers.
                let mut cfg = job.config.clone();
                cfg.localities = 1;
                cfg.workers_per_locality = granted;
                let mut outcome = (job.run)(&cfg);
                outcome.queue_wait_ticks = now - waiting.submitted_at;
                outcome.granted_workers = granted;
                running.push(Running {
                    finish_at: now + outcome.makespan,
                    granted,
                    seq,
                });
                seq += 1;
                outcomes[waiting.job_index] = Some(outcome);
                free = free.saturating_sub(granted);
            }
        }

        // Advance the clock to the next event: a completion or an arrival.
        let next_completion = running.iter().map(|r| (r.finish_at, r.seq)).min();
        let next_arrival = arrivals.peek().map(|&(tick, _)| tick);
        match (next_completion, next_arrival) {
            (None, None) => break,
            (Some((finish, _)), arrival) if arrival.map_or(true, |a| finish <= a) => {
                now = finish;
                // Reclaim every lease finishing at this tick, in admission
                // order (deterministic, like the dispatcher's FIFO channel).
                let mut done: Vec<usize> = running
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.finish_at == finish)
                    .map(|(i, _)| i)
                    .collect();
                done.sort_by_key(|&i| running[i].seq);
                for i in done.into_iter().rev() {
                    let r = running.remove(i);
                    free = (free + r.granted).min(capacity);
                }
            }
            (_, Some(arrival)) => {
                now = arrival;
            }
            // The guard always admits a completion when no arrival exists.
            (Some(_), None) => unreachable!(),
        }
    }

    debug_assert!(pending.is_empty() && running.is_empty());
    outcomes
        .into_iter()
        .map(|o| o.expect("every submitted job was scheduled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yewpar::monoid::Sum;
    use yewpar::schedule::{FairShare, Fifo};
    use yewpar::{Coordination, Enumerate, SearchProblem};

    use crate::engine::simulate_enumerate;

    struct Fanout {
        depth: usize,
        width: usize,
    }

    impl SearchProblem for Fanout {
        type Node = usize;
        type Gen<'a> = std::vec::IntoIter<usize>;
        fn root(&self) -> usize {
            0
        }
        fn generator(&self, node: &usize) -> Self::Gen<'_> {
            if *node < self.depth {
                vec![node + 1; self.width].into_iter()
            } else {
                vec![].into_iter()
            }
        }
    }

    impl Enumerate for Fanout {
        type Value = Sum<u64>;
        fn value(&self, _n: &usize) -> Sum<u64> {
            Sum(1)
        }
    }

    fn job(workers: usize) -> SimJob<'static, Sum<u64>> {
        let cfg = SimConfig::new(Coordination::depth_bounded(2), 1, workers);
        SimJob::new(cfg, |granted_cfg| {
            simulate_enumerate(&Fanout { depth: 7, width: 3 }, granted_cfg)
        })
    }

    #[test]
    fn fifo_serialises_and_accumulates_queue_wait() {
        let outcomes = simulate_multiplexed(8, &mut Fifo, vec![job(8), job(8), job(8)]);
        assert_eq!(outcomes[0].queue_wait_ticks, 0);
        assert_eq!(
            outcomes[1].queue_wait_ticks, outcomes[0].makespan,
            "the second FIFO submission waits out the first"
        );
        assert_eq!(
            outcomes[2].queue_wait_ticks,
            outcomes[0].makespan + outcomes[1].makespan
        );
        for out in &outcomes {
            assert_eq!(out.granted_workers, 8, "FIFO grants the request in full");
            assert!(out.status.is_complete());
        }
    }

    #[test]
    fn fair_share_admits_a_fitting_pair_simultaneously() {
        let outcomes = simulate_multiplexed(8, &mut FairShare, vec![job(4), job(4)]);
        for out in &outcomes {
            assert_eq!(out.queue_wait_ticks, 0, "both admitted at tick 0");
            assert_eq!(out.granted_workers, 4);
        }
        // Identical jobs co-scheduled on equal shares do identical work.
        assert_eq!(outcomes[0].nodes, outcomes[1].nodes);
        assert_eq!(outcomes[0].makespan, outcomes[1].makespan);
    }

    #[test]
    fn fair_share_splits_a_contended_pool_and_reclaims() {
        // Three greedy jobs on 8 workers: 3+3+2 (ceiling split, oldest
        // favoured), all admitted at tick 0.
        let outcomes = simulate_multiplexed(8, &mut FairShare, vec![job(8), job(8), job(8)]);
        let grants: Vec<usize> = outcomes.iter().map(|o| o.granted_workers).collect();
        assert_eq!(grants, vec![3, 3, 2]);
        assert!(outcomes.iter().all(|o| o.queue_wait_ticks == 0));
        // A *late* fourth job (arriving once the pool is fully leased)
        // waits for the first reclamation, not for the whole pool.
        let first_finish = outcomes.iter().map(|o| o.makespan).min().unwrap();
        let outcomes = simulate_multiplexed(
            8,
            &mut FairShare,
            vec![job(8), job(8), job(8), job(8).submit_at(1)],
        );
        assert_eq!(
            outcomes[3].queue_wait_ticks,
            first_finish - 1,
            "the queued job is admitted at the first completion"
        );
    }

    #[test]
    fn co_scheduling_does_not_change_per_search_work() {
        let solo = simulate_multiplexed(8, &mut FairShare, vec![job(4)]);
        let paired = simulate_multiplexed(8, &mut FairShare, vec![job(4), job(4)]);
        assert_eq!(solo[0].nodes, paired[0].nodes);
        assert_eq!(solo[0].nodes, paired[1].nodes);
        assert_eq!(
            solo[0].makespan, paired[0].makespan,
            "disjoint grants: no slowdown"
        );
    }

    #[test]
    fn arrivals_after_startup_are_respected() {
        let late = job(8).submit_at(10_000);
        let outcomes = simulate_multiplexed(8, &mut Fifo, vec![job(8), late]);
        // The late job's wait is measured from its own arrival.
        let first = outcomes[0].makespan;
        assert_eq!(outcomes[1].queue_wait_ticks, first.saturating_sub(10_000));
    }
}
