//! The discrete-event simulation engine.
//!
//! Workers are advanced one search step at a time in virtual-time order.
//! Every step charges its cost to the worker's clock; the simulation ends
//! when every spawned task has been fully explored (or a decision search
//! short-circuits), and the makespan is the virtual time of that moment.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use yewpar::genstack::GenStack;
use yewpar::monoid::Monoid;
use yewpar::objective::PruneLevel;
use yewpar::params::Coordination;
use yewpar::trace::{TraceEvent, TraceRecord, CONTROL_WORKER, UNKNOWN_VICTIM};
use yewpar::workpool::{DepthPool, OrderedPool, SeqKey, Task, POP_BATCH, PUSH_BATCH, STEAL_BATCH};
use yewpar::{Decide, Enumerate, Optimise, SearchProblem, SearchStatus};

/// Virtual-time costs of the simulated operations, in abstract "ticks".
///
/// The defaults approximate a cluster where a node expansion costs ~1µs
/// (100 ticks), an intra-locality steal tens of microseconds, a remote steal
/// or an incumbent broadcast ~100µs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of processing (expanding) one search-tree node.
    pub node_cost: u64,
    /// Cost of pushing one task into a workpool (covers the pool lock plus
    /// the first task of a batch).
    pub spawn_cost: u64,
    /// Marginal cost of each *additional* task in a batched pool operation:
    /// a burst of `n` spawns costs `spawn_cost + batch_task_cost × (n-1)`
    /// instead of `spawn_cost × n`, mirroring the threaded engine's batched
    /// release (one lock acquisition per generator burst).
    pub batch_task_cost: u64,
    /// Cost of popping a task from the local workpool.
    pub pop_cost: u64,
    /// Latency of obtaining work from another worker/pool in the same locality.
    pub local_steal_latency: u64,
    /// Latency of obtaining work from a remote locality.
    pub remote_steal_latency: u64,
    /// Delay before an improved incumbent becomes visible at other localities.
    pub bound_broadcast_latency: u64,
    /// Re-poll interval of an idle worker that found no work anywhere.
    pub idle_poll: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            node_cost: 100,
            spawn_cost: 20,
            batch_task_cost: 5,
            pop_cost: 20,
            local_steal_latency: 500,
            remote_steal_latency: 10_000,
            bound_broadcast_latency: 20_000,
            idle_poll: 200,
        }
    }
}

impl CostModel {
    /// Virtual time of one batched pool push of `n` tasks: the full
    /// [`spawn_cost`](CostModel::spawn_cost) buys the lock and the first
    /// task, each further task pays only the marginal
    /// [`batch_task_cost`](CostModel::batch_task_cost).  Zero for an empty
    /// batch (no pool operation happens).
    pub fn batched_spawn_cost(&self, n: usize) -> u64 {
        match n {
            0 => 0,
            n => self.spawn_cost + self.batch_task_cost * (n as u64 - 1),
        }
    }
}

/// Cap on the steal back-off state per (thief, locality).  A routed probe
/// that misses gates its target locality out of the thief's routing table
/// for the next `1 << streak` routing decisions (saturating at
/// `1 << BACKOFF_CAP`), steering subsequent probes to the next-best
/// candidate.  When *every* candidate is gated the thief additionally waits
/// `min(streak, BACKOFF_CAP) * idle_poll` before its still-issued probe —
/// a linear nap, deliberately shallow: with the default model it tops out
/// at 600 ticks, well under one remote transfer window, so a backed-off
/// thief is throttled but never parked while work is visible.
const BACKOFF_CAP: u32 = 3;

/// Busy steps between starvation scans of the work-pushing path, mirroring
/// the threaded engine's stride-gated check: the scan reads every worker's
/// state, so it must stay off the per-node fast path.
const PUSH_CHECK_STRIDE: u32 = 2;

/// Maximum tasks (in flight + undrained) a locality's mailbox may hold
/// before pushers stop selecting it.  Bounds the work a starved locality
/// can hoard while still letting several shipments overlap one transfer
/// window — with a single-shipment cap the push channel moves at most
/// `PUSH_BATCH` tasks per `remote_steal_latency`, too slow to relieve a
/// whole starved locality.
const MAILBOX_DEPTH: usize = 32;

/// Configuration of one simulated execution.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of localities (physical machines in the paper's terminology).
    pub localities: usize,
    /// Search workers per locality (the paper uses 15 on 16-core nodes).
    pub workers_per_locality: usize,
    /// The search coordination to simulate.
    pub coordination: Coordination,
    /// Virtual-time cost model.
    pub costs: CostModel,
    /// Seed for randomised victim selection.
    pub seed: u64,
    /// Ordered coordination only: reclaim speculation sequentially after a
    /// pending decision witness (purge queued tasks, cancel in-flight ones)
    /// instead of letting it run until the in-order commit fires.  Mirrors
    /// the threaded engine's `SearchConfig::cancel_speculation`; on by
    /// default, ignored by every other coordination.
    pub cancel_speculation: bool,
    /// Virtual-time deadline in ticks, mirroring the threaded engine's
    /// `SearchConfig::deadline`: the simulation stops at the first event at
    /// or past this virtual time, reports
    /// [`SearchStatus::DeadlineExceeded`], and returns the partial result
    /// accumulated so far (anytime semantics).  With the default
    /// [`CostModel`] (~100 ticks per expanded node ≈ 1 µs), one millisecond
    /// is 100 000 ticks.  `None` (the default) runs to completion.  There
    /// is no simulated cancel token — external cancellation is an
    /// asynchronous wall-clock phenomenon with no virtual-time analogue.
    pub deadline_ticks: Option<u64>,
    /// Record flight-recorder events (the same
    /// [`yewpar::trace::TraceEvent`] vocabulary as the threaded
    /// engine, stamped with *virtual* ticks instead of nanoseconds) into
    /// [`SimOutcome::trace`].  Recording never charges virtual time: a
    /// traced run has exactly the same makespan and counters as an untraced
    /// one.  Off by default.
    pub trace: bool,
    /// Stack-Stealing only: make *remote* victim selection hint-guided
    /// (shallowest stealable frontier across all other localities) instead
    /// of blind-random.  This deliberately re-creates the strip-mining
    /// pathology the blind-random default exists to prevent — every idle
    /// locality converges on the first busy worker's shallow frontier — so
    /// the anomaly analyzer's
    /// [`StealStripMining`](yewpar::trace::analyze::FindingKind::StealStripMining)
    /// rule can be exercised against a known-bad schedule.  Off by default;
    /// ignored by every other coordination.
    pub hint_directed_remote_steals: bool,
    /// Locality-aware steal routing, mirroring the threaded engine's
    /// `SearchConfig::steal_routing`: an idle worker consults the
    /// per-locality load gauges and probes the *least-loaded-but-nonempty*
    /// remote locality — with a blind-random victim *within* it, preserving
    /// the anti-strip-mining invariant — instead of gambling on a uniformly
    /// random remote worker.  Consecutive misses against one locality back
    /// the thief off exponentially (see [`TraceEvent::StealBackoff`]).  On
    /// by default; forced off by `hint_directed_remote_steals`, whose whole
    /// point is re-creating the unrouted pathology.
    pub steal_routing: bool,
    /// Starvation-triggered work pushing, mirroring the threaded engine's
    /// `SearchConfig::work_pushing`: a busy worker that observes a starved
    /// remote locality (≥1 idle worker, nothing queued or stealable, no
    /// batch already in flight) ships it a bounded burst of lowest-depth
    /// subtrees through a per-locality mailbox.  The batch becomes visible
    /// after the remote transfer latency — one shipment buys up to
    /// [`PUSH_BATCH`] tasks instead of one expensive round-trip per steal —
    /// and idle workers drain their locality's mailbox before any steal
    /// scan.  On by default; forced off by `hint_directed_remote_steals`.
    pub work_pushing: bool,
}

impl SimConfig {
    /// A convenience constructor: `localities × workers_per_locality` workers
    /// with default costs.
    pub fn new(coordination: Coordination, localities: usize, workers_per_locality: usize) -> Self {
        SimConfig {
            localities: localities.max(1),
            workers_per_locality: workers_per_locality.max(1),
            coordination,
            costs: CostModel::default(),
            seed: 0xF1_6004,
            cancel_speculation: true,
            deadline_ticks: None,
            trace: false,
            hint_directed_remote_steals: false,
            steal_routing: true,
            work_pushing: true,
        }
    }

    /// Total number of simulated workers.
    pub fn workers(&self) -> usize {
        self.localities * self.workers_per_locality
    }
}

/// Result of a simulated execution.
#[derive(Debug, Clone)]
pub struct SimOutcome<R> {
    /// The search result (identical to what the threaded skeletons return).
    pub result: R,
    /// Virtual completion time.
    pub makespan: u64,
    /// Total node-processing work performed (ticks, summed over workers).
    pub total_work: u64,
    /// Nodes processed.
    pub nodes: u64,
    /// Subtrees pruned.
    pub prunes: u64,
    /// Tasks spawned into pools or stolen.
    pub spawns: u64,
    /// Successful steals (remote or local).
    pub steals: u64,
    /// Remote steal hits obtained through gauge-routed locality selection
    /// (a subset of [`steals`](SimOutcome::steals)); zero with
    /// [`SimConfig::steal_routing`] off.
    pub routed_steals: u64,
    /// Tasks shipped into remote-locality mailboxes by the
    /// starvation-triggered work-pushing path; zero with
    /// [`SimConfig::work_pushing`] off.
    pub pushed_tasks: u64,
    /// Exponential back-off naps taken after consecutive routed-steal
    /// misses against one locality.
    pub backoff_naps: u64,
    /// Tasks spawned with a sequence key (Ordered coordination only).
    pub ordered_spawns: u64,
    /// Ordered pops that ran ahead of the sequential frontier (a smaller
    /// sequence key was still in flight when the pop happened).
    pub priority_inversions: u64,
    /// Nodes expanded by Ordered tasks sequentially after the committed
    /// decision witness — discarded at commit time and excluded from
    /// `nodes`, which therefore stays replicable across worker counts.
    pub speculative_nodes: u64,
    /// Ordered speculative tasks reclaimed by the cancellation signal
    /// (queued purges plus in-flight early exits).  Zero when
    /// `cancel_speculation` is off or no witness is recorded.
    pub cancelled_tasks: u64,
    /// Simulated workpool lock acquisitions: one per pool operation (a
    /// push or pop, batched or not — a whole batch counts once).  The
    /// virtual mirror of `WorkerMetrics::lock_acquisitions`; with batching
    /// this grows far slower than `nodes`.
    pub lock_acquisitions: u64,
    /// Non-empty batched releases (generator bursts handed to a pool in one
    /// operation).  `spawns / batch_pushes` is the realised amortisation
    /// factor, mirroring `WorkerMetrics::batch_pushes`.
    pub batch_pushes: u64,
    /// Deadline evaluations performed (one per scheduled event), the
    /// virtual analogue of `WorkerMetrics::poll_checks`.
    pub poll_checks: u64,
    /// Number of workers simulated.
    pub workers: usize,
    /// How the simulated search ended: [`SearchStatus::Complete`], or
    /// [`SearchStatus::DeadlineExceeded`] when
    /// [`SimConfig::deadline_ticks`] expired first (the result is then the
    /// partial anytime answer).
    pub status: SearchStatus,
    /// Virtual ticks the search spent queued before the scheduler granted
    /// it workers.  Zero for a directly simulated search; set by
    /// [`simulate_multiplexed`](crate::multiplex::simulate_multiplexed),
    /// which records it from the virtual scheduler's clock — the mirror of
    /// the threaded runtime's dispatcher-recorded `Metrics::queue_wait`.
    pub queue_wait_ticks: u64,
    /// The worker count the scheduler granted (equals
    /// [`workers`](SimOutcome::workers) for a directly simulated search;
    /// under a multiplexed `FairShare` schedule it may be less than the
    /// submission requested).
    pub granted_workers: usize,
    /// Flight-recorder events captured during the run (empty unless
    /// [`SimConfig::trace`] was set).  Timestamps are virtual ticks on the
    /// same clock as [`makespan`](SimOutcome::makespan), so the records
    /// feed directly into [`yewpar::trace::analyze`] and the
    /// [`yewpar::trace::sink`] exporters alongside threaded traces.
    pub trace: Vec<TraceRecord>,
}

impl<R> SimOutcome<R> {
    /// Parallel efficiency: node work divided by `makespan × workers`.
    pub fn efficiency(&self) -> f64 {
        if self.makespan == 0 || self.workers == 0 {
            return 1.0;
        }
        self.total_work as f64 / (self.makespan as f64 * self.workers as f64)
    }

    /// Speedup relative to a reference makespan (usually the 1-worker run).
    pub fn speedup_vs(&self, reference_makespan: u64) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        reference_makespan as f64 / self.makespan as f64
    }
}

/// What the driver wants the traversal to do after processing a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Expand,
    Prune,
    PruneSiblings,
    ShortCircuit,
}

/// Single-threaded search-type driver with locality-aware knowledge.
trait SimDriver<P: SearchProblem> {
    fn process(&mut self, problem: &P, node: &P::Node, locality: usize, now: u64) -> Action;

    /// Ordered coordination only: the sequence key of the task about to call
    /// [`process`](Self::process).  Decision drivers use it to keep the
    /// *sequentially first* witness rather than the temporally first one —
    /// the commit discards later-keyed witnesses, so the reported node must
    /// match.  Default: ignore (every other coordination stops at the first
    /// witness found, which is then the only one).
    fn set_active_task(&mut self, _key: Option<&SeqKey>) {}
}

/// Enumeration: accumulate the monoid; knowledge is purely local.
struct EnumSimDriver<P: Enumerate> {
    acc: P::Value,
}

impl<P: Enumerate> SimDriver<P> for EnumSimDriver<P> {
    fn process(&mut self, problem: &P, node: &P::Node, _locality: usize, _now: u64) -> Action {
        let acc = std::mem::replace(&mut self.acc, P::Value::empty());
        self.acc = acc.combine(problem.value(node));
        Action::Expand
    }
}

/// A recorded incumbent improvement: other localities see it only after the
/// broadcast latency has elapsed.
struct BoundUpdate<S> {
    score: S,
    origin: usize,
    visible_elsewhere_at: u64,
}

/// Optimisation: strengthen a global incumbent, prune against the *visible*
/// bound of the worker's locality (stale bounds lose pruning, not correctness).
struct OptimSimDriver<P: Optimise> {
    best: Option<(P::Score, P::Node)>,
    updates: Vec<BoundUpdate<P::Score>>,
    broadcast_latency: u64,
}

impl<P: Optimise> OptimSimDriver<P> {
    fn new(broadcast_latency: u64) -> Self {
        OptimSimDriver {
            best: None,
            updates: Vec::new(),
            broadcast_latency,
        }
    }

    /// The best score visible from `locality` at time `now`.
    fn visible_bound(&self, locality: usize, now: u64) -> Option<&P::Score> {
        self.updates
            .iter()
            .filter(|u| u.origin == locality || u.visible_elsewhere_at <= now)
            .map(|u| &u.score)
            .max()
    }

    fn strengthen(&mut self, score: P::Score, node: &P::Node, locality: usize, now: u64) {
        let improves = match &self.best {
            Some((best, _)) => score > *best,
            None => true,
        };
        if improves {
            self.best = Some((score.clone(), node.clone()));
            self.updates.push(BoundUpdate {
                score,
                origin: locality,
                visible_elsewhere_at: now + self.broadcast_latency,
            });
        }
    }
}

impl<P: Optimise> SimDriver<P> for OptimSimDriver<P> {
    fn process(&mut self, problem: &P, node: &P::Node, locality: usize, now: u64) -> Action {
        let score = problem.objective(node);
        self.strengthen(score, node, locality, now);
        if let Some(bound) = problem.bound(node) {
            if let Some(best) = self.visible_bound(locality, now) {
                if bound <= *best {
                    return match problem.prune_level() {
                        PruneLevel::Node => Action::Prune,
                        PruneLevel::Siblings => Action::PruneSiblings,
                    };
                }
            }
        }
        Action::Expand
    }
}

/// Decision: optimisation plus a short-circuit at the target.
struct DecideSimDriver<P: Decide> {
    inner: OptimSimDriver<P>,
    target: P::Score,
    witness: Option<P::Node>,
    /// Sequence key of the task currently calling `process` (Ordered only).
    active_key: Option<SeqKey>,
    /// Sequence key of the task that produced `witness` (Ordered only).
    witness_key: Option<SeqKey>,
}

impl<P: Decide> SimDriver<P> for DecideSimDriver<P> {
    fn set_active_task(&mut self, key: Option<&SeqKey>) {
        // Called once per simulated traversal step; the key only changes at
        // task boundaries, so skip the Vec clone while it is unchanged.
        if self.active_key.as_ref() != key {
            self.active_key = key.cloned();
        }
    }

    fn process(&mut self, problem: &P, node: &P::Node, locality: usize, now: u64) -> Action {
        let score = problem.objective(node);
        if score >= self.target {
            // Under Ordered speculation several tasks may each hit a
            // witness; only the sequentially first one survives the commit,
            // so keep the candidate with the smallest task key.  Outside
            // Ordered (no active key) the first witness stops the run and is
            // trivially the one to keep.
            let keep = match (&self.active_key, &self.witness_key) {
                (Some(key), Some(existing)) => key < existing,
                _ => true,
            };
            if keep {
                self.witness = Some(node.clone());
                self.witness_key = self.active_key.clone();
            }
            return Action::ShortCircuit;
        }
        self.inner.strengthen(score, node, locality, now);
        if let Some(bound) = problem.bound(node) {
            if bound < self.target {
                return match problem.prune_level() {
                    PruneLevel::Node => Action::Prune,
                    PruneLevel::Siblings => Action::PruneSiblings,
                };
            }
        }
        Action::Expand
    }
}

/// Per-worker simulation state.
struct SimWorker<'p, P: SearchProblem> {
    locality: usize,
    /// Resumable depth-first traversal of the current task.
    stack: GenStack<'p, P>,
    /// Stolen (or locally retained) tasks not yet started.
    backlog: Vec<Task<P::Node>>,
    /// Backtracks since the last Budget split.
    backtracks_since_split: u64,
    /// Total node-processing work charged to this worker.
    work: u64,
    /// Nodes processed by the current task (flight-recorder `TaskEnd` delta).
    task_nodes: u64,
    /// Prunes performed by the current task.
    task_prunes: u64,
    /// Backtracks performed by the current task.
    task_backtracks: u64,
    /// Consecutive routed-steal misses against each remote locality — the
    /// per-(thief, locality) back-off state.
    miss_streak: Vec<u32>,
    /// Routing decisions left before each locality is probed again
    /// (`1 << min(streak, BACKOFF_CAP)` after a miss): a gated locality is
    /// skipped in favour of the next-best candidate, and only when *every*
    /// nonempty candidate is gated does the thief take an exponential nap.
    skip: Vec<u32>,
    /// Busy steps since the start of the run, gating the starvation scan of
    /// the work-pushing path to every [`PUSH_CHECK_STRIDE`] steps.
    push_gate: u32,
    /// True while this worker is stalled inside a remote steal transfer:
    /// the stolen task already sits in `backlog` (it left the victim at
    /// probe time) but the worker cannot touch it until the transfer
    /// window elapses.  Starvation gauges must count such a worker as
    /// starved — its backlog is in flight, not feeding anyone.
    in_remote_fetch: bool,
}

/// Aggregate counters of a simulation run.
#[derive(Debug, Default, Clone, Copy)]
struct SimStats {
    nodes: u64,
    prunes: u64,
    spawns: u64,
    steals: u64,
    routed_steals: u64,
    pushed_tasks: u64,
    backoff_naps: u64,
    makespan: u64,
    total_work: u64,
    ordered_spawns: u64,
    priority_inversions: u64,
    speculative_nodes: u64,
    cancelled_tasks: u64,
    lock_acquisitions: u64,
    batch_pushes: u64,
    poll_checks: u64,
    /// The virtual deadline fired before the search could finish.
    deadline_hit: bool,
}

/// Virtual-time flight recorder: the simulator's stand-in for the threaded
/// engine's per-worker ring buffers.  Records are appended in event-loop
/// order with the virtual timestamp of the emitting step; emission never
/// charges a tick, so a traced run has exactly the same makespan, node
/// counts and steal schedule as an untraced one (asserted by the
/// `tracing_is_free_in_virtual_time` test).
struct SimTrace {
    on: bool,
    records: Vec<TraceRecord>,
}

impl SimTrace {
    fn new(on: bool) -> Self {
        SimTrace {
            on,
            records: Vec::new(),
        }
    }

    #[inline]
    fn emit(&mut self, ts: u64, worker: u32, event: TraceEvent) {
        if self.on {
            self.records.push(TraceRecord { ts, worker, event });
        }
    }
}

/// Build a [`TraceEvent::TaskEnd`] from the per-task deltas the simulator
/// tracks.  Only nodes, prunes and backtracks have per-task meaning in the
/// virtual cost model; spawn/batch/poll counters and the depth high-water
/// mark are aggregate-only here and reported as zero.
fn task_end_event(nodes: u64, prunes: u64, backtracks: u64) -> TraceEvent {
    TraceEvent::TaskEnd {
        nodes,
        prunes,
        backtracks,
        spawns: 0,
        batch_pushes: 0,
        poll_checks: 0,
        max_depth: 0,
    }
}

/// The `TaskEnd` event of a pool-coordination worker's current task.
fn end_of_task<P: SearchProblem>(worker: &SimWorker<'_, P>) -> TraceEvent {
    task_end_event(
        worker.task_nodes,
        worker.task_prunes,
        worker.task_backtracks,
    )
}

/// Simulate an enumeration search.
pub fn simulate_enumerate<P: Enumerate>(problem: &P, config: &SimConfig) -> SimOutcome<P::Value> {
    let mut driver = EnumSimDriver::<P> {
        acc: P::Value::empty(),
    };
    let mut trace = SimTrace::new(config.trace);
    let stats = simulate(problem, config, &mut driver, &mut trace);
    outcome(stats, config, driver.acc, trace.records)
}

/// Simulate an optimisation search.
pub fn simulate_maximise<P: Optimise>(
    problem: &P,
    config: &SimConfig,
) -> SimOutcome<Option<(P::Node, P::Score)>> {
    let mut driver = OptimSimDriver::<P>::new(config.costs.bound_broadcast_latency);
    let mut trace = SimTrace::new(config.trace);
    let stats = simulate(problem, config, &mut driver, &mut trace);
    outcome(
        stats,
        config,
        driver.best.map(|(s, n)| (n, s)),
        trace.records,
    )
}

/// Simulate a decision search.
pub fn simulate_decide<P: Decide>(problem: &P, config: &SimConfig) -> SimOutcome<Option<P::Node>> {
    let mut driver = DecideSimDriver::<P> {
        inner: OptimSimDriver::<P>::new(config.costs.bound_broadcast_latency),
        target: problem.target(),
        witness: None,
        active_key: None,
        witness_key: None,
    };
    let mut trace = SimTrace::new(config.trace);
    let stats = simulate(problem, config, &mut driver, &mut trace);
    outcome(stats, config, driver.witness, trace.records)
}

fn outcome<R>(
    stats: SimStats,
    config: &SimConfig,
    result: R,
    trace: Vec<TraceRecord>,
) -> SimOutcome<R> {
    SimOutcome {
        result,
        makespan: stats.makespan,
        total_work: stats.total_work,
        nodes: stats.nodes,
        prunes: stats.prunes,
        spawns: stats.spawns,
        steals: stats.steals,
        routed_steals: stats.routed_steals,
        pushed_tasks: stats.pushed_tasks,
        backoff_naps: stats.backoff_naps,
        ordered_spawns: stats.ordered_spawns,
        priority_inversions: stats.priority_inversions,
        speculative_nodes: stats.speculative_nodes,
        cancelled_tasks: stats.cancelled_tasks,
        lock_acquisitions: stats.lock_acquisitions,
        batch_pushes: stats.batch_pushes,
        poll_checks: stats.poll_checks,
        workers: config.workers(),
        status: if stats.deadline_hit {
            SearchStatus::DeadlineExceeded
        } else {
            SearchStatus::Complete
        },
        queue_wait_ticks: 0,
        granted_workers: config.workers(),
        trace,
    }
}

/// The core event loop, generic over the search-type driver.
fn simulate<P, D>(problem: &P, config: &SimConfig, driver: &mut D, trace: &mut SimTrace) -> SimStats
where
    P: SearchProblem,
    D: SimDriver<P>,
{
    // The Ordered coordination gets its own loop: a sequence-keyed global
    // pool with in-order commit semantics cannot be approximated by the
    // per-locality depth pools without losing the replicability guarantee.
    if let Coordination::Ordered { spawn_depth } = config.coordination {
        return simulate_ordered(problem, config, driver, spawn_depth, trace);
    }

    let costs = &config.costs;
    let n_workers = config.workers();
    let n_localities = config.localities;
    let coordination = config.coordination;
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // One order-preserving pool per locality (used by Depth-Bounded, Budget
    // and Sequential; Stack-Stealing steals directly from worker stacks).
    let pools: Vec<DepthPool<P::Node>> = (0..n_localities).map(|_| DepthPool::new()).collect();

    let mut workers: Vec<SimWorker<'_, P>> = (0..n_workers)
        .map(|i| SimWorker {
            locality: i / config.workers_per_locality,
            stack: GenStack::new(),
            backlog: Vec::new(),
            backtracks_since_split: 0,
            work: 0,
            task_nodes: 0,
            task_prunes: 0,
            task_backtracks: 0,
            miss_streak: vec![0; n_localities],
            skip: vec![0; n_localities],
            push_gate: 0,
            in_remote_fetch: false,
        })
        .collect();

    // The locality layer: steal routing and work pushing are both disabled
    // by the strip-mining knob — its whole point is re-creating the
    // unrouted, unpushed pathology for the anomaly analyzer.
    let routing = config.steal_routing && !config.hint_directed_remote_steals && n_localities > 1;
    let pushing = config.work_pushing && !config.hint_directed_remote_steals && n_localities > 1;
    // Per-locality mailboxes for pushed batches: `(visible_at, task)`
    // entries in shipment order (visibility times are non-decreasing, so
    // draining from the front never skips a visible entry).
    let mut mailboxes: Vec<VecDeque<(u64, Task<P::Node>)>> =
        (0..n_localities).map(|_| VecDeque::new()).collect();

    // The root task starts at locality 0 (worker 0's backlog for
    // stack-stealing; locality 0's pool otherwise).
    let root_task = Task::new(problem.root(), 0);
    let mut outstanding: u64 = 1;
    match coordination {
        Coordination::StackStealing { .. } => workers[0].backlog.push(root_task),
        _ => pools[0].push(root_task),
    }

    let mut stats = SimStats::default();
    // Event heap: (time, worker) — Reverse for a min-heap; ties broken by
    // worker index for determinism.
    let mut events: BinaryHeap<Reverse<(u64, usize)>> =
        (0..n_workers).map(|w| Reverse((0, w))).collect();
    let mut short_circuited = false;

    while let Some(Reverse((now, w))) = events.pop() {
        if outstanding == 0 || short_circuited {
            break;
        }
        // Virtual deadline: events are processed in time order, so the
        // first event at or past the deadline ends the whole run — exactly
        // like the threaded engine's per-step wall-clock poll, with zero
        // nondeterminism.  Every event is one deadline evaluation, the
        // virtual analogue of the threaded stride-gated poll check.
        stats.poll_checks += 1;
        if let Some(d) = config.deadline_ticks.filter(|&d| now >= d) {
            stats.deadline_hit = true;
            // The overshooting event never executes: the run ends at the
            // deadline itself.
            stats.makespan = d;
            break;
        }
        let mut next_time = now;
        // This worker's event has arrived: any remote transfer it was
        // stalled in has completed.
        workers[w].in_remote_fetch = false;

        // ---- Busy worker: one traversal step of its current task ----------
        if !workers[w].stack.is_empty() {
            // Starvation-triggered work pushing (stack-stealing): every
            // PUSH_CHECK_STRIDE busy steps, scan for a remote locality that
            // is starving (more idle workers than stealable stacks) with no
            // shipment already in flight, and push it this worker's lowest
            // frontier frame.  The mailbox batch becomes visible after the
            // remote transfer latency — one shipment feeds several starved
            // workers for the price of a single steal round-trip.
            if pushing
                && now >= costs.remote_steal_latency
                && matches!(coordination, Coordination::StackStealing { .. })
            {
                workers[w].push_gate = workers[w].push_gate.wrapping_add(1);
                if workers[w].push_gate % PUSH_CHECK_STRIDE == 0 {
                    let loc = workers[w].locality;
                    // Only the locality's best holder ships, and only its
                    // best frame: the starved side needs one payload worth
                    // a transfer window, not a scatter of scraps, and
                    // limiting the source to the frontier holder keeps the
                    // other local stacks intact for intra-locality steals.
                    let my_frontier = workers[w].stack.steal_depth();
                    let rich = my_frontier
                        .is_some_and(|d| Some(d) == locality_frontier(&mut workers, loc));
                    // Target the first locality that is demonstrably
                    // starving: more workers idle (or stalled mid-fetch)
                    // than it has stealable stacks left, with an empty
                    // mailbox so at most one shipment is in flight per
                    // target — pacing that stops a burst of pushers from
                    // shredding the source locality to feed one drain.
                    let target = rich
                        .then(|| {
                            (1..n_localities)
                                .map(|o| (loc + o) % n_localities)
                                .find(|&l| {
                                    mailboxes[l].is_empty()
                                        && idle_workers(&workers, l)
                                            > stealable_stacks(&mut workers, l)
                                })
                        })
                        .flatten();
                    if let Some(target) = target {
                        // Ship exactly one frontier frame.  Larger payloads
                        // (multi-frame steal-half bursts) measurably hurt:
                        // they strip the best holder past its frontier and
                        // the source locality drains sooner than the target
                        // recovers.
                        let burst = workers[w].stack.split_lowest(true);
                        if !burst.is_empty() {
                            let total = burst.len() as u64;
                            outstanding += total;
                            stats.spawns += total;
                            stats.batch_pushes += 1;
                            stats.lock_acquisitions += 1;
                            next_time += costs.batched_spawn_cost(total as usize);
                            stats.pushed_tasks += total;
                            trace.emit(
                                next_time,
                                w as u32,
                                TraceEvent::WorkPushed {
                                    locality: target as u32,
                                    tasks: burst.len() as u32,
                                },
                            );
                            let visible = next_time + costs.remote_steal_latency;
                            mailboxes[target].extend(burst.into_iter().map(|t| (visible, t)));
                        }
                    }
                }
            }
            // Budget coordination: split before the next step if the budget
            // is exhausted.
            if let Coordination::Budget { backtracks } = coordination {
                if workers[w].backtracks_since_split >= backtracks {
                    let mut offload = workers[w].stack.split_lowest(true);
                    if !offload.is_empty() {
                        outstanding += offload.len() as u64;
                        stats.spawns += offload.len() as u64;
                        stats.batch_pushes += 1;
                        stats.lock_acquisitions += 1;
                        next_time += costs.batched_spawn_cost(offload.len());
                        // Starvation divert, mirroring the threaded
                        // PoolSource::release: a burst of ≥2 tasks may route
                        // up to half (capped at PUSH_BATCH) into a starved
                        // remote locality's mailbox instead of the local
                        // pool; the shipment becomes visible after the
                        // remote transfer latency.
                        if pushing && now >= costs.remote_steal_latency && offload.len() >= 2 {
                            let loc = workers[w].locality;
                            let target =
                                (1..n_localities)
                                    .map(|o| (loc + o) % n_localities)
                                    .find(|&l| {
                                        mailboxes[l].len() < MAILBOX_DEPTH
                                            && pools[l].is_empty()
                                            && idle_workers(&workers, l) >= 1
                                    });
                            if let Some(target) = target {
                                let keep = offload.len() - (offload.len() / 2).min(PUSH_BATCH);
                                let diverted = offload.split_off(keep);
                                stats.pushed_tasks += diverted.len() as u64;
                                trace.emit(
                                    next_time,
                                    w as u32,
                                    TraceEvent::WorkPushed {
                                        locality: target as u32,
                                        tasks: diverted.len() as u32,
                                    },
                                );
                                let visible = next_time + costs.remote_steal_latency;
                                mailboxes[target]
                                    .extend(diverted.into_iter().map(|t| (visible, t)));
                            }
                        }
                        pools[workers[w].locality].push_all(offload);
                    }
                    workers[w].backtracks_since_split = 0;
                }
            }
            match workers[w].stack.next_child() {
                Some((child, depth)) => {
                    next_time += costs.node_cost;
                    workers[w].work += costs.node_cost;
                    workers[w].task_nodes += 1;
                    stats.nodes += 1;
                    match driver.process(problem, &child, workers[w].locality, next_time) {
                        Action::Expand => workers[w].stack.push(problem, &child, depth),
                        Action::Prune => {
                            stats.prunes += 1;
                            workers[w].task_prunes += 1;
                        }
                        Action::PruneSiblings => {
                            stats.prunes += 1;
                            workers[w].task_prunes += 1;
                            workers[w].stack.pop();
                            workers[w].backtracks_since_split += 1;
                            workers[w].task_backtracks += 1;
                            if workers[w].stack.is_empty() {
                                trace.emit(next_time, w as u32, end_of_task(&workers[w]));
                                outstanding -= 1;
                                if outstanding == 0 {
                                    stats.makespan = next_time;
                                }
                            }
                        }
                        Action::ShortCircuit => {
                            trace.emit(next_time, w as u32, end_of_task(&workers[w]));
                            stats.makespan = next_time;
                            short_circuited = true;
                        }
                    }
                }
                None => {
                    workers[w].stack.pop();
                    workers[w].backtracks_since_split += 1;
                    workers[w].task_backtracks += 1;
                    next_time += 1; // backtracking is cheap but not free
                    if workers[w].stack.is_empty() {
                        // Task complete.
                        trace.emit(next_time, w as u32, end_of_task(&workers[w]));
                        outstanding -= 1;
                        if outstanding == 0 {
                            stats.makespan = next_time;
                        }
                    }
                }
            }
            events.push(Reverse((next_time, w)));
            continue;
        }

        // ---- Idle worker: start backlog work, pop a pool, or steal --------
        if let Some(task) = pop_backlog(&mut workers[w]) {
            next_time += start_task(
                problem,
                driver,
                &mut workers[w],
                &pools,
                coordination,
                costs,
                &mut outstanding,
                &mut stats,
                &mut short_circuited,
                task,
                now,
                w as u32,
                trace,
            );
            events.push(Reverse((next_time, w)));
            continue;
        }

        let my_locality = workers[w].locality;
        match coordination {
            Coordination::Ordered { .. } => unreachable!("ordered runs in simulate_ordered"),
            Coordination::Sequential
            | Coordination::DepthBounded { .. }
            | Coordination::Budget { .. } => {
                // Local pool first — a batched pop takes up to `POP_BATCH`
                // tasks for one pool operation, capped at this worker's fair
                // share of the pool so a scarce frontier is never hoarded in
                // one backlog (the threaded engine avoids this by sharding
                // the pool per worker; the locality-level pool here must
                // ration instead).  When the pool is empty, gamble on a
                // *random* remote pool — the sharded pool's depth hints are
                // in-process atomics that do not propagate across localities
                // in the distributed model, so remote probing stays blind —
                // and take a small batch on a hit to amortise the steal
                // latency over `STEAL_BATCH` tasks.
                let share = pools[my_locality]
                    .len()
                    .div_ceil(config.workers_per_locality.max(1))
                    .max(1);
                let mut grabbed = VecDeque::new();
                if pools[my_locality].pop_batch(share.min(POP_BATCH), &mut grabbed) > 0 {
                    stats.lock_acquisitions += 1;
                    next_time += costs.pop_cost;
                    workers[w].backlog.extend(grabbed);
                } else if drain_mailbox(&mut mailboxes[my_locality], now, &mut workers[w].backlog)
                    > 0
                {
                    // Pushed batches are drained before any remote probe —
                    // they are already local, one pool operation away.
                    stats.lock_acquisitions += 1;
                    next_time += costs.pop_cost;
                } else if n_localities > 1 {
                    // Victim locality: with routing on, the load gauges send
                    // the probe to the *most-loaded* remote pool (ties to
                    // the highest id — deterministic), skipping the probe
                    // entirely when every remote gauge reads empty — the
                    // gauge-gated fast path of the sharded pool.  With
                    // routing off (or during the warm-up window, before any
                    // remote transfer can have completed) the probe stays
                    // blind-random.
                    let pick = if routing && now >= costs.remote_steal_latency {
                        (0..n_localities)
                            .filter(|&l| l != my_locality)
                            .map(|l| (pools[l].len(), l))
                            .filter(|&(len, _)| len > 0)
                            .max()
                            .map(|(len, l)| (l, Some(len as u64)))
                    } else {
                        let mut victim = rng.gen_range(0..n_localities - 1);
                        if victim >= my_locality {
                            victim += 1;
                        }
                        Some((victim, None))
                    };
                    if let Some((victim, load)) = pick {
                        // Victim-side rationing: never ship more than half
                        // the victim pool's tasks, so a scarce frontier is
                        // spread across stealing localities instead of
                        // hoarded by the first thief to land.
                        let cap = STEAL_BATCH.min(pools[victim].len().div_ceil(2)).max(1);
                        // Pool-coordination steal events name the victim
                        // *locality* (the pool is the unit stolen from, as
                        // in the threaded sharded pool's cross-shard steal).
                        trace.emit(
                            now,
                            w as u32,
                            TraceEvent::StealRequest {
                                victim: victim as u32,
                            },
                        );
                        let got = pools[victim].pop_batch(cap, &mut grabbed);
                        if got > 0 {
                            stats.lock_acquisitions += 1;
                            stats.steals += 1;
                            trace.emit(
                                now,
                                w as u32,
                                TraceEvent::StealHit {
                                    victim: victim as u32,
                                    tasks: got as u32,
                                    remote: true,
                                },
                            );
                            if let Some(load) = load {
                                stats.routed_steals += 1;
                                trace.emit(
                                    now,
                                    w as u32,
                                    TraceEvent::StealRouted {
                                        locality: victim as u32,
                                        load,
                                    },
                                );
                            }
                            next_time += costs.remote_steal_latency;
                            workers[w].backlog.extend(grabbed);
                        } else {
                            trace.emit(
                                now,
                                w as u32,
                                TraceEvent::StealMiss {
                                    victim: victim as u32,
                                },
                            );
                            next_time += costs.idle_poll;
                        }
                    } else {
                        // Every remote gauge reads empty: fail fast for one
                        // idle poll without touching a single pool lock.
                        trace.emit(
                            now,
                            w as u32,
                            TraceEvent::StealMiss {
                                victim: UNKNOWN_VICTIM,
                            },
                        );
                        next_time += costs.idle_poll;
                    }
                } else {
                    // Single locality: an empty pool means an idle re-poll
                    // with nobody to steal from — still a failed acquisition
                    // for the starvation analysis.
                    trace.emit(
                        now,
                        w as u32,
                        TraceEvent::StealMiss {
                            victim: UNKNOWN_VICTIM,
                        },
                    );
                    next_time += costs.idle_poll;
                }
            }
            Coordination::StackStealing { chunked } => {
                // Steal directly from another worker's stack: prefer a local
                // victim, fall back to a remote one.  The two tiers see
                // different information, mirroring the threaded engine's
                // shared-memory work-hint array:
                //
                // * *Local* picks are hint-guided — the per-worker hints are
                //   cheap in-process atomics, so a thief skips empty stacks
                //   entirely (failing fast for one idle poll when nobody in
                //   the locality has work) and targets the victim whose
                //   stealable frontier is *shallowest* (the heuristically
                //   biggest subtree), breaking ties at random.
                // * *Remote* picks are blind — hints do not propagate across
                //   localities in the distributed model, so the thief
                //   gambles a random remote worker and pays the full steal
                //   latency on a miss.  (This is also a safety valve: were
                //   remote thieves hint-guided too, every idle locality
                //   would strip-mine the first busy worker's shallow
                //   frontier the instant it appears, shipping nearly the
                //   whole root frontier into in-flight transfers at once.
                //   `SimConfig::hint_directed_remote_steals` deliberately
                //   re-opens that valve so the anomaly analyzer can be
                //   exercised against the pathology.)
                // Mailbox first: a pushed batch that has arrived is this
                // locality's cheapest work — one pool operation away, no
                // steal round-trip.  Draining also resets the thief's
                // back-off state: fresh work arriving means the cluster
                // load has shifted and stale miss streaks would misroute.
                if drain_mailbox(&mut mailboxes[my_locality], now, &mut workers[w].backlog) > 0 {
                    stats.lock_acquisitions += 1;
                    for l in 0..n_localities {
                        workers[w].miss_streak[l] = 0;
                        workers[w].skip[l] = 0;
                    }
                    next_time += costs.pop_cost;
                    events.push(Reverse((next_time, w)));
                    continue;
                }
                let mut stolen = Vec::new();
                let mut latency = costs.idle_poll;
                let mut backoff_wait = 0u64;
                let mut remote = false;
                let mut routed: Option<(usize, u64)> = None;
                let mut chosen: Option<usize> = None;
                let mut best_depth = usize::MAX;
                let mut best: Vec<usize> = Vec::new();
                for (v, victim) in workers.iter_mut().enumerate() {
                    if v == w || victim.locality != my_locality {
                        continue;
                    }
                    if let Some(d) = victim.stack.steal_depth() {
                        match d.cmp(&best_depth) {
                            std::cmp::Ordering::Less => {
                                best_depth = d;
                                best.clear();
                                best.push(v);
                            }
                            std::cmp::Ordering::Equal => best.push(v),
                            std::cmp::Ordering::Greater => {}
                        }
                    }
                }
                if !best.is_empty() {
                    let victim = best[rng.gen_range(0..best.len())];
                    trace.emit(
                        now,
                        w as u32,
                        TraceEvent::StealRequest {
                            victim: victim as u32,
                        },
                    );
                    stolen = workers[victim].stack.split_lowest(chunked);
                    latency = costs.local_steal_latency;
                    chosen = Some(victim);
                } else if n_localities > 1 {
                    let victim = if config.hint_directed_remote_steals {
                        // The known-bad schedule behind the analyzer's
                        // strip-mining rule: hint-guide the *remote* pick
                        // too, so every idle locality converges on the
                        // worker with the shallowest stealable frontier.
                        let mut depth = usize::MAX;
                        let mut candidates: Vec<usize> = Vec::new();
                        for (v, victim) in workers.iter_mut().enumerate() {
                            if victim.locality == my_locality {
                                continue;
                            }
                            if let Some(d) = victim.stack.steal_depth() {
                                match d.cmp(&depth) {
                                    std::cmp::Ordering::Less => {
                                        depth = d;
                                        candidates.clear();
                                        candidates.push(v);
                                    }
                                    std::cmp::Ordering::Equal => candidates.push(v),
                                    std::cmp::Ordering::Greater => {}
                                }
                            }
                        }
                        (!candidates.is_empty())
                            .then(|| candidates[rng.gen_range(0..candidates.len())])
                    } else if routing && now >= costs.remote_steal_latency {
                        // Gauge-routed: steer the probe toward the remote
                        // locality advertising the *shallowest* stealable
                        // frontier, then pick a *blind-random* victim inside
                        // it.  Frontier depth is the load signal the gauges
                        // publish — the tree is consumed bottom-up, so a
                        // shallow unexplored frame marks a heuristically
                        // large subtree that repays the transfer window,
                        // while uniformly deep frontiers are scraps.  The
                        // blind pick *within* the locality preserves the
                        // anti-strip-mining invariant at worker level: the
                        // gauges narrow probes to a locality, never to a
                        // specific victim's stack.  A locality the thief
                        // recently missed in is skip-gated (capped
                        // exponential per (thief, locality)): the next
                        // probes go to the other candidates.  When *every*
                        // candidate is gated the thief naps a capped-linear
                        // back-off and then probes the shallowest gated
                        // candidate anyway — back-off redirects and
                        // throttles probes, it never parks the thief while
                        // work is visible (the endgame tail is exactly one
                        // busy locality and a hundred gated thieves).  No
                        // remote frontier at all → fall through to one
                        // blind-random probe, consuming exactly the RNG
                        // draws the unrouted engine would.  Routing never
                        // engages inside the warm-up window
                        // (`now < remote_steal_latency`): no remote transfer
                        // can have completed yet, so the gauges carry no
                        // actionable signal and short runs (decision
                        // searches that end inside one transfer window) must
                        // see the exact baseline schedule of the blind
                        // engine, RNG draw for RNG draw.
                        let span = config.workers_per_locality;
                        let mut best: Option<(usize, usize)> = None;
                        let mut best_gated: Option<(usize, usize)> = None;
                        for l in 0..n_localities {
                            if l == my_locality {
                                continue;
                            }
                            let depth = match locality_frontier(&mut workers, l) {
                                Some(d) => d,
                                None => continue,
                            };
                            if workers[w].skip[l] > 0 {
                                workers[w].skip[l] -= 1;
                                if best_gated.map_or(true, |(d, _)| depth < d) {
                                    best_gated = Some((depth, l));
                                }
                                continue;
                            }
                            if best.map_or(true, |(d, _)| depth < d) {
                                best = Some((depth, l));
                            }
                        }
                        if let Some((depth, t)) = best {
                            routed = Some((t, depth as u64));
                            Some(t * span + rng.gen_range(0..span))
                        } else if let Some((depth, t)) = best_gated {
                            let misses = workers[w].miss_streak[t];
                            backoff_wait = u64::from(misses.min(BACKOFF_CAP)) * costs.idle_poll;
                            stats.backoff_naps += 1;
                            trace.emit(
                                now,
                                w as u32,
                                TraceEvent::StealBackoff {
                                    locality: t as u32,
                                    misses,
                                },
                            );
                            routed = Some((t, depth as u64));
                            Some(t * span + rng.gen_range(0..span))
                        } else {
                            let remote_victims: Vec<usize> = (0..n_workers)
                                .filter(|&v| workers[v].locality != my_locality)
                                .collect();
                            Some(remote_victims[rng.gen_range(0..remote_victims.len())])
                        }
                    } else {
                        let remote_victims: Vec<usize> = (0..n_workers)
                            .filter(|&v| workers[v].locality != my_locality)
                            .collect();
                        Some(remote_victims[rng.gen_range(0..remote_victims.len())])
                    };
                    if let Some(victim) = victim {
                        trace.emit(
                            now,
                            w as u32,
                            TraceEvent::StealRequest {
                                victim: victim as u32,
                            },
                        );
                        chosen = Some(victim);
                        let split = workers[victim].stack.split_lowest(chunked);
                        if !split.is_empty() {
                            stolen = split;
                            latency = costs.remote_steal_latency;
                            remote = true;
                            workers[w].in_remote_fetch = true;
                        }
                    }
                }
                if !stolen.is_empty() {
                    outstanding += stolen.len() as u64;
                    stats.spawns += stolen.len() as u64;
                    stats.steals += 1;
                    trace.emit(
                        now,
                        w as u32,
                        TraceEvent::StealHit {
                            victim: chosen.expect("a steal hit names its victim") as u32,
                            tasks: stolen.len() as u32,
                            remote,
                        },
                    );
                    if let Some((target, load)) = routed {
                        // A routed hit clears the thief's miss streak
                        // against that locality.
                        workers[w].miss_streak[target] = 0;
                        stats.routed_steals += 1;
                        trace.emit(
                            now,
                            w as u32,
                            TraceEvent::StealRouted {
                                locality: target as u32,
                                load,
                            },
                        );
                    }
                    workers[w].backlog.extend(stolen);
                } else {
                    trace.emit(
                        now,
                        w as u32,
                        TraceEvent::StealMiss {
                            victim: chosen.map(|v| v as u32).unwrap_or(UNKNOWN_VICTIM),
                        },
                    );
                    if let Some((target, _)) = routed {
                        // A routed probe that missed gates that locality
                        // out of the thief's routing table for the next
                        // `1 << streak` decisions — the next acquire probes
                        // the next-best candidate instead of hammering the
                        // same one.
                        let streak = workers[w].miss_streak[target].saturating_add(1);
                        workers[w].miss_streak[target] = streak;
                        workers[w].skip[target] = 1 << streak.min(BACKOFF_CAP);
                    }
                }
                next_time += latency + backoff_wait;
            }
        }
        events.push(Reverse((next_time, w)));
    }

    if stats.makespan == 0 {
        // Short-circuit before any completion event, or a degenerate
        // zero-work run: fall back to the last observed time.
        stats.makespan = stats.nodes * costs.node_cost / n_workers.max(1) as u64;
    }
    stats.total_work = workers.iter().map(|w| w.work).sum();
    // Mailbox/outstanding reconciliation: every pushed batch is counted in
    // `outstanding` when it ships, so a completed run (outstanding == 0)
    // proves every mailbox drained — no task may finish the search stranded
    // in transit.  (Deadline and short-circuit exits legitimately abandon
    // in-flight shipments, mirroring the threaded `discard` drain.)
    debug_assert!(
        outstanding != 0 || mailboxes.iter().all(VecDeque::is_empty),
        "completed simulation stranded pushed tasks in a mailbox"
    );
    stats
}

/// One retired (or aborted) task of the simulated Ordered coordination: its
/// sequence key plus its private counters, classified committed/speculative
/// only once the final witness is known — exactly like the threaded commit
/// log's task records.
struct OrderedTaskRecord {
    key: SeqKey,
    nodes: u64,
    prunes: u64,
}

/// Per-worker state of the simulated Ordered coordination.
struct OrderedSimWorker<'p, P: SearchProblem> {
    /// Resumable depth-first traversal of the current task.
    stack: GenStack<'p, P>,
    /// Sequence key of the current task (`None` when idle).
    key: Option<SeqKey>,
    /// Nodes processed by the current task.
    nodes: u64,
    /// Prunes performed by the current task.
    prunes: u64,
    /// Total node-processing work charged to this worker.
    work: u64,
}

/// The shared commit state of the simulated Ordered coordination: the global
/// sequence-keyed pool plus the in-flight set, witness, task records and
/// outstanding counter every disposal path touches.  Mirrors the threaded
/// engine's `CommitLog`, collapsed into one owner so retiring, cancelling
/// and skipping all share the same bookkeeping.
struct OrderedCommitState<N> {
    pool: OrderedPool<Task<N>>,
    in_flight: std::collections::BTreeSet<SeqKey>,
    records: Vec<OrderedTaskRecord>,
    witness: Option<SeqKey>,
    committed: bool,
    outstanding: u64,
    /// The [`SimConfig::cancel_speculation`] knob.
    cancel: bool,
}

impl<N> OrderedCommitState<N> {
    fn new(cancel: bool, root: Task<N>) -> Self {
        let pool = OrderedPool::new();
        pool.push(SeqKey::root(), root);
        OrderedCommitState {
            pool,
            in_flight: std::collections::BTreeSet::new(),
            records: Vec::new(),
            witness: None,
            committed: false,
            outstanding: 1,
            cancel,
        }
    }

    /// True when `key` is known speculation: cancellation is on and a
    /// pending witness with an earlier key exists.
    fn beyond_witness(&self, key: &SeqKey) -> bool {
        self.cancel && self.witness.as_ref().is_some_and(|w| key > w)
    }

    /// Mark a freshly popped task in flight, counting a priority inversion
    /// when a smaller key is still executing.
    fn issue(&mut self, key: SeqKey, stats: &mut SimStats) {
        if self.in_flight.iter().next().is_some_and(|min| *min < key) {
            stats.priority_inversions += 1;
        }
        self.in_flight.insert(key);
    }

    /// Retire one finished task: fold a witness into the pending minimum
    /// (purging later-keyed queued tasks when cancellation is on), record
    /// the task's counters, and commit the stop once nothing sequentially
    /// earlier remains queued or in flight.
    fn retire(
        &mut self,
        key: SeqKey,
        nodes: u64,
        prunes: u64,
        witnessed: bool,
        stats: &mut SimStats,
        now: u64,
    ) {
        self.in_flight.remove(&key);
        self.outstanding -= 1;
        if witnessed && self.witness.as_ref().map_or(true, |w| key < *w) {
            self.witness = Some(key.clone());
            if self.cancel {
                let purged = self.pool.purge_after(&key) as u64;
                self.outstanding -= purged;
                stats.cancelled_tasks += purged;
            }
        }
        self.records.push(OrderedTaskRecord { key, nodes, prunes });
        if let Some(w) = self.witness.as_ref() {
            // Speculative tasks (keys after the witness) never block the
            // commit; only earlier-keyed work still queued or in flight does.
            if !self.committed
                && self.in_flight.iter().next().map_or(true, |min| min >= w)
                && self.pool.min_key().map_or(true, |min| min >= *w)
            {
                self.committed = true;
                stats.makespan = now;
            }
        }
        if self.outstanding == 0 && stats.makespan == 0 {
            stats.makespan = now;
        }
    }

    /// Reclaim an in-flight speculative task that observed the pending
    /// witness mid-traversal: its partial counters are recorded (classified
    /// speculative later, since its key is after the witness).  No commit
    /// check: removing a post-witness key can never unblock a commit that
    /// waits only on earlier keys.
    fn cancel_in_flight(&mut self, key: SeqKey, nodes: u64, prunes: u64, stats: &mut SimStats) {
        self.in_flight.remove(&key);
        self.outstanding -= 1;
        stats.cancelled_tasks += 1;
        self.records.push(OrderedTaskRecord { key, nodes, prunes });
    }

    /// Reclaim a queued post-witness straggler at pop time (a child released
    /// by a committed-side parent after the purge): it never ran, so there
    /// is nothing to record.
    fn discard_queued(&mut self, stats: &mut SimStats) {
        self.outstanding -= 1;
        stats.cancelled_tasks += 1;
    }
}

/// The simulated Ordered coordination: a *global* sequence-keyed pool (the
/// whole point of the coordination is that every pop observes the one true
/// sequential frontier, so per-locality pools would break replicability),
/// speculation with in-order commit, and — when
/// [`SimConfig::cancel_speculation`] is on — the same purge/broadcast
/// cancellation as the threaded engine.  Committed node counts are a pure
/// function of the instance and spawn depth: identical across worker counts
/// and equal to the threaded Ordered skeleton's committed counts.
fn simulate_ordered<P, D>(
    problem: &P,
    config: &SimConfig,
    driver: &mut D,
    spawn_depth: usize,
    trace: &mut SimTrace,
) -> SimStats
where
    P: SearchProblem,
    D: SimDriver<P>,
{
    let costs = &config.costs;
    let n_workers = config.workers();

    let mut state: OrderedCommitState<P::Node> =
        OrderedCommitState::new(config.cancel_speculation, Task::new(problem.root(), 0));
    let mut stats = SimStats::default();

    let mut workers: Vec<OrderedSimWorker<'_, P>> = (0..n_workers)
        .map(|_| OrderedSimWorker {
            stack: GenStack::new(),
            key: None,
            nodes: 0,
            prunes: 0,
            work: 0,
        })
        .collect();

    // Event heap as in `simulate`: (time, worker), ties broken by worker
    // index — the simulation stays fully deterministic (no RNG anywhere).
    let mut events: BinaryHeap<Reverse<(u64, usize)>> =
        (0..n_workers).map(|w| Reverse((0, w))).collect();

    while let Some(Reverse((now, w))) = events.pop() {
        if state.committed || state.outstanding == 0 {
            break;
        }
        // Virtual deadline, exactly as in `simulate`: the commit-ordered
        // loop stops at the first event past it, and the post-loop record
        // classification still runs so partial work is reported honestly.
        stats.poll_checks += 1;
        if let Some(d) = config.deadline_ticks.filter(|&d| now >= d) {
            stats.deadline_hit = true;
            // The overshooting event never executes: the run ends at the
            // deadline itself.
            stats.makespan = d;
            break;
        }
        let mut next_time = now;
        let locality = w / config.workers_per_locality;

        // ---- Busy worker: one traversal step of its current task ----------
        if !workers[w].stack.is_empty() {
            let key = workers[w]
                .key
                .clone()
                .expect("busy ordered worker has a key");

            // Cooperative cancellation, polled once per step like the
            // threaded engine: a pending witness with an earlier key makes
            // this task's remaining subtree worthless.
            if state.beyond_witness(&key) {
                let wk = &mut workers[w];
                wk.stack = GenStack::new();
                wk.key = None;
                trace.emit(next_time, w as u32, task_end_event(wk.nodes, wk.prunes, 0));
                trace.emit(
                    next_time,
                    w as u32,
                    TraceEvent::SpeculationCancel { nodes: wk.nodes },
                );
                state.cancel_in_flight(key, wk.nodes, wk.prunes, &mut stats);
                events.push(Reverse((next_time + 1, w)));
                continue;
            }

            driver.set_active_task(Some(&key));
            let mut finished = false;
            let mut found_witness = false;
            match workers[w].stack.next_child() {
                Some((child, depth)) => {
                    next_time += costs.node_cost;
                    workers[w].work += costs.node_cost;
                    workers[w].nodes += 1;
                    match driver.process(problem, &child, locality, next_time) {
                        Action::Expand => workers[w].stack.push(problem, &child, depth),
                        Action::Prune => workers[w].prunes += 1,
                        Action::PruneSiblings => {
                            workers[w].prunes += 1;
                            workers[w].stack.pop();
                            finished = workers[w].stack.is_empty();
                        }
                        Action::ShortCircuit => {
                            // The task stops at its first witness; whether
                            // the *search* stops is the commit's decision.
                            workers[w].stack = GenStack::new();
                            finished = true;
                            found_witness = true;
                        }
                    }
                }
                None => {
                    workers[w].stack.pop();
                    next_time += 1; // backtracking is cheap but not free
                    finished = workers[w].stack.is_empty();
                }
            }
            if finished {
                let wk = &mut workers[w];
                let (nodes, prunes) = (wk.nodes, wk.prunes);
                wk.key = None;
                trace.emit(next_time, w as u32, task_end_event(nodes, prunes, 0));
                state.retire(key, nodes, prunes, found_witness, &mut stats, next_time);
            }
            events.push(Reverse((next_time, w)));
            continue;
        }

        // ---- Idle worker: issue the globally smallest-key task ------------
        loop {
            let Some((key, task)) = state.pool.pop() else {
                next_time += costs.idle_poll;
                break;
            };
            stats.lock_acquisitions += 1;
            // Post-witness stragglers (children released by committed-side
            // parents after the purge) are reclaimed at pop time — each
            // skip still pays the pop it performed, like the threaded pool.
            if state.beyond_witness(&key) {
                state.discard_queued(&mut stats);
                next_time += costs.pop_cost;
                continue;
            }
            state.issue(key.clone(), &mut stats);
            trace.emit(
                now,
                w as u32,
                TraceEvent::TaskStart {
                    depth: task.depth as u32,
                },
            );
            next_time += costs.pop_cost + costs.node_cost;
            let wk = &mut workers[w];
            wk.key = Some(key.clone());
            wk.nodes = 1;
            wk.prunes = 0;
            wk.work += costs.node_cost;
            driver.set_active_task(Some(&key));
            match driver.process(problem, &task.node, locality, next_time) {
                Action::Prune | Action::PruneSiblings => {
                    wk.prunes = 1;
                    wk.key = None;
                    trace.emit(next_time, w as u32, task_end_event(1, 1, 0));
                    state.retire(key, 1, 1, false, &mut stats, next_time);
                }
                Action::ShortCircuit => {
                    wk.key = None;
                    trace.emit(next_time, w as u32, task_end_event(1, 0, 0));
                    state.retire(key, 1, 0, true, &mut stats, next_time);
                }
                Action::Expand => {
                    if task.depth < spawn_depth {
                        // Eager sequence-keyed spawning: every child becomes
                        // a task keyed in heuristic order.
                        let children: Vec<Task<P::Node>> = problem
                            .generator(&task.node)
                            .map(|c| Task::new(c, task.depth + 1))
                            .collect();
                        state.outstanding += children.len() as u64;
                        stats.spawns += children.len() as u64;
                        stats.ordered_spawns += children.len() as u64;
                        if !children.is_empty() {
                            stats.batch_pushes += 1;
                            stats.lock_acquisitions += 1;
                        }
                        next_time += costs.batched_spawn_cost(children.len());
                        for (i, child) in children.into_iter().enumerate() {
                            state.pool.push(key.child(i as u32), child);
                        }
                        wk.key = None;
                        trace.emit(next_time, w as u32, task_end_event(1, 0, 0));
                        state.retire(key, 1, 0, false, &mut stats, next_time);
                    } else {
                        wk.stack.push(problem, &task.node, task.depth);
                    }
                }
            }
            break;
        }
        events.push(Reverse((next_time, w)));
    }

    // Post-commit aborts: in-flight tasks at the stop all carry keys after
    // the witness (the commit waited for everything earlier); their partial
    // work is speculative by classification below.
    for (w, wk) in workers.iter_mut().enumerate() {
        if let Some(key) = wk.key.take() {
            trace.emit(
                stats.makespan,
                w as u32,
                task_end_event(wk.nodes, wk.prunes, 0),
            );
            state.records.push(OrderedTaskRecord {
                key,
                nodes: wk.nodes,
                prunes: wk.prunes,
            });
        }
    }

    // Classify every task record against the final witness: committed work
    // counts, speculative work is surfaced separately — `nodes` is therefore
    // a pure function of the instance, replicable across worker counts.
    for rec in &state.records {
        if state.witness.as_ref().map_or(true, |w| rec.key <= *w) {
            stats.nodes += rec.nodes;
            stats.prunes += rec.prunes;
        } else {
            stats.speculative_nodes += rec.nodes;
        }
    }

    if stats.makespan == 0 {
        stats.makespan = stats.nodes * costs.node_cost / n_workers.max(1) as u64;
    }

    // Mirror the threaded Ordered skeleton's commit-time classification
    // events: one aggregate commit (and discard, when speculation was
    // wasted) from the control plane, emitted only when a witness exists —
    // enumeration and optimisation runs have no speculation to classify.
    if state.witness.is_some() {
        trace.emit(
            stats.makespan,
            CONTROL_WORKER,
            TraceEvent::SpeculationCommit { nodes: stats.nodes },
        );
        if stats.speculative_nodes > 0 {
            trace.emit(
                stats.makespan,
                CONTROL_WORKER,
                TraceEvent::SpeculationDiscard {
                    nodes: stats.speculative_nodes,
                },
            );
        }
    }

    stats.total_work = workers.iter().map(|w| w.work).sum();
    stats
}

/// Workers in `locality` currently advertising a stealable stack — the
/// simulator's per-locality queued-work gauge for the stack-stealing
/// coordination.  The threaded engine keeps the same aggregate in
/// `LocalityGauges` as relaxed counters; here it is computed on demand,
/// which makes it exact rather than an over-approximation.
fn stealable_stacks<P: SearchProblem>(workers: &mut [SimWorker<'_, P>], locality: usize) -> usize {
    workers
        .iter_mut()
        .filter(|v| v.locality == locality)
        .filter_map(|v| v.stack.steal_depth())
        .count()
}

/// Shallowest steal depth advertised by any worker in `locality` — the
/// simulator's frontier gauge.  Depth is the simulator's (and the paper's)
/// proxy for subtree size: a locality whose frontier sits near the root
/// holds heuristically huge unexplored subtrees, one worth a remote
/// transfer window; a locality advertising only deep frames holds scraps
/// that are cheaper to leave alone.  The threaded engine publishes the
/// same signal per worker as the `base_depth` work hint.
fn locality_frontier<P: SearchProblem>(
    workers: &mut [SimWorker<'_, P>],
    locality: usize,
) -> Option<usize> {
    workers
        .iter_mut()
        .filter(|v| v.locality == locality)
        .filter_map(|v| v.stack.steal_depth())
        .min()
}

/// Workers in `locality` with nothing runnable — the idle-worker gauge
/// feeding the starvation test of the work-pushing path.  A worker stalled
/// mid-remote-transfer counts as starved even though its backlog already
/// holds the stolen task: that task is in flight, not feeding anyone, and
/// treating such a locality as fed is what used to blind the push path to
/// exactly the localities that need relief most (a drained locality's
/// workers all stall in parallel solo fetches).
fn idle_workers<P: SearchProblem>(workers: &[SimWorker<'_, P>], locality: usize) -> usize {
    workers
        .iter()
        .filter(|v| {
            v.locality == locality
                && v.stack.is_empty()
                && (v.backlog.is_empty() || v.in_remote_fetch)
        })
        .count()
}

/// Take *one* mailbox entry whose shipment has arrived (`visible_at ≤
/// now`) into `backlog`, returning how many tasks were taken (0 or 1).
/// One task per poll spreads a shipment across the locality's idle
/// pollers instead of letting the first drainer hoard the whole batch and
/// work it off sequentially while its neighbours starve.  Entries are
/// pushed with (near) non-decreasing visibility times, so stopping at the
/// first still-in-flight entry never strands a visible one for long.
fn drain_mailbox<N>(
    mailbox: &mut VecDeque<(u64, Task<N>)>,
    now: u64,
    backlog: &mut Vec<Task<N>>,
) -> usize {
    if mailbox
        .front()
        .is_some_and(|&(visible_at, _)| visible_at <= now)
    {
        if let Some((_, task)) = mailbox.pop_front() {
            backlog.push(task);
            return 1;
        }
    }
    0
}

fn pop_backlog<P: SearchProblem>(worker: &mut SimWorker<'_, P>) -> Option<Task<P::Node>> {
    if worker.backlog.is_empty() {
        None
    } else {
        Some(worker.backlog.remove(0))
    }
}

/// Begin executing a task on a worker: process its root node and either
/// spawn its children (Depth-Bounded above the cutoff) or set up the
/// resumable depth-first traversal.  Returns the virtual time consumed.
#[allow(clippy::too_many_arguments)]
fn start_task<'p, P, D>(
    problem: &'p P,
    driver: &mut D,
    worker: &mut SimWorker<'p, P>,
    pools: &[DepthPool<P::Node>],
    coordination: Coordination,
    costs: &CostModel,
    outstanding: &mut u64,
    stats: &mut SimStats,
    short_circuited: &mut bool,
    task: Task<P::Node>,
    now: u64,
    worker_id: u32,
    trace: &mut SimTrace,
) -> u64
where
    P: SearchProblem,
    D: SimDriver<P>,
{
    trace.emit(
        now,
        worker_id,
        TraceEvent::TaskStart {
            depth: task.depth as u32,
        },
    );
    let mut elapsed = costs.node_cost;
    worker.work += costs.node_cost;
    worker.task_nodes = 1;
    worker.task_prunes = 0;
    worker.task_backtracks = 0;
    stats.nodes += 1;
    match driver.process(problem, &task.node, worker.locality, now + elapsed) {
        Action::Prune | Action::PruneSiblings => {
            stats.prunes += 1;
            worker.task_prunes = 1;
            trace.emit(now + elapsed, worker_id, end_of_task(worker));
            *outstanding -= 1;
            if *outstanding == 0 {
                stats.makespan = now + elapsed;
            }
            return elapsed;
        }
        Action::ShortCircuit => {
            trace.emit(now + elapsed, worker_id, end_of_task(worker));
            stats.makespan = now + elapsed;
            *short_circuited = true;
            return elapsed;
        }
        Action::Expand => {}
    }

    // Eager placement-time spawning: the Depth-Bounded cutoff.  (Ordered —
    // which also spawns eagerly, but into the sequence-keyed pool — has its
    // own loop in `simulate_ordered`.)
    let eager_cutoff = match coordination {
        Coordination::DepthBounded { dcutoff } => Some(dcutoff),
        _ => None,
    };
    if let Some(dcutoff) = eager_cutoff {
        if task.depth < dcutoff {
            // Convert every child into a task on the local pool.
            let children: Vec<Task<P::Node>> = problem
                .generator(&task.node)
                .map(|c| Task::new(c, task.depth + 1))
                .collect();
            *outstanding += children.len() as u64;
            stats.spawns += children.len() as u64;
            if !children.is_empty() {
                stats.batch_pushes += 1;
                stats.lock_acquisitions += 1;
            }
            elapsed += costs.batched_spawn_cost(children.len());
            pools[worker.locality].push_all(children);
            trace.emit(now + elapsed, worker_id, end_of_task(worker));
            *outstanding -= 1;
            if *outstanding == 0 {
                stats.makespan = now + elapsed;
            }
            return elapsed;
        }
    }

    worker.stack.push(problem, &task.node, task.depth);
    worker.backtracks_since_split = 0;
    elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use yewpar::monoid::Sum;
    use yewpar::{Coordination, Skeleton};

    /// Irregular enumeration tree shared by the tests.
    struct Fib {
        depth: usize,
    }

    impl SearchProblem for Fib {
        type Node = (usize, u64);
        type Gen<'a> = std::vec::IntoIter<(usize, u64)>;
        fn root(&self) -> (usize, u64) {
            (0, 3)
        }
        fn generator(&self, node: &(usize, u64)) -> Self::Gen<'_> {
            let (d, s) = *node;
            if d >= self.depth {
                return vec![].into_iter();
            }
            let width = (s % 3 + 1) as usize;
            (0..width)
                .map(|i| {
                    (
                        d + 1,
                        s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64),
                    )
                })
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    impl Enumerate for Fib {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u64)) -> Sum<u64> {
            Sum(1)
        }
    }

    impl Optimise for Fib {
        type Score = u64;
        fn objective(&self, node: &(usize, u64)) -> u64 {
            node.1 % 997
        }
        fn bound(&self, _node: &(usize, u64)) -> Option<u64> {
            Some(997)
        }
    }

    impl Decide for Fib {
        fn target(&self) -> u64 {
            990
        }
    }

    fn sim(coord: Coordination, localities: usize, wpl: usize) -> SimConfig {
        SimConfig::new(coord, localities, wpl)
    }

    /// A left-spine tree: the worker that owns the root descends a deep
    /// spine whose every level exposes a few bushy subtrees as stealable
    /// siblings.  The spine child comes first in generation order, so the
    /// owner always dives deeper while its bottom frames accumulate the
    /// shallow frontier — the shape on which hint-directed thieves all
    /// converge on the one spine holder (the PR 6 strip-mining scenario).
    struct Spine {
        spine_depth: usize,
        bush_count: usize,
        bush_depth: u8,
    }

    impl SearchProblem for Spine {
        /// `(depth, None)` is a spine node; `(depth, Some(b))` a bush node
        /// with `b` binary levels left below it.
        type Node = (usize, Option<u8>);
        type Gen<'a> = std::vec::IntoIter<(usize, Option<u8>)>;
        fn root(&self) -> (usize, Option<u8>) {
            (0, None)
        }
        fn generator(&self, node: &(usize, Option<u8>)) -> Self::Gen<'_> {
            let (d, kind) = *node;
            match kind {
                None if d < self.spine_depth => {
                    // Bushes first, the spine continuation last: one-child
                    // steals ship bushes while the spine stays put, so the
                    // same worker re-exposes a shallow frontier level after
                    // level.
                    let mut children: Vec<(usize, Option<u8>)> = (0..self.bush_count)
                        .map(|_| (d + 1, Some(self.bush_depth)))
                        .collect();
                    children.push((d + 1, None));
                    children.into_iter()
                }
                Some(b) if b > 0 => vec![(d + 1, Some(b - 1)); 2].into_iter(),
                _ => vec![].into_iter(),
            }
        }
    }

    impl Enumerate for Spine {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, Option<u8>)) -> Sum<u64> {
            Sum(1)
        }
    }

    #[test]
    fn virtual_deadline_stops_every_coordination_with_partial_results() {
        let p = Fib { depth: 12 };
        for coord in [
            Coordination::Sequential,
            Coordination::depth_bounded(2),
            Coordination::stack_stealing_chunked(),
            Coordination::budget(30),
            Coordination::ordered(2),
        ] {
            let full = simulate_enumerate(&p, &sim(coord, 2, 3));
            assert!(full.status.is_complete(), "{coord}");
            let mut cfg = sim(coord, 2, 3);
            cfg.deadline_ticks = Some(full.makespan / 4);
            let partial = simulate_enumerate(&p, &cfg);
            assert_eq!(partial.status, SearchStatus::DeadlineExceeded, "{coord}");
            assert!(
                partial.nodes < full.nodes,
                "{coord}: deadline at a quarter of the makespan must cut work \
                 ({} vs {})",
                partial.nodes,
                full.nodes
            );
            assert!(partial.makespan <= full.makespan / 4, "{coord}");
            // Virtual time is deterministic: the truncated run is exactly
            // reproducible.
            let again = simulate_enumerate(&p, &cfg);
            assert_eq!(again.nodes, partial.nodes, "{coord}");
            assert_eq!(again.makespan, partial.makespan, "{coord}");
        }
    }

    #[test]
    fn virtual_deadline_keeps_the_partial_incumbent() {
        let p = Fib { depth: 12 };
        let mut cfg = sim(Coordination::depth_bounded(2), 2, 3);
        let full = simulate_maximise(&p, &cfg);
        cfg.deadline_ticks = Some(full.makespan / 4);
        let partial = simulate_maximise(&p, &cfg);
        assert_eq!(partial.status, SearchStatus::DeadlineExceeded);
        let partial_best = partial.result.map(|(_, s)| s).expect("root was processed");
        let full_best = full
            .result
            .map(|(_, s)| s)
            .expect("complete run has a best");
        assert!(
            partial_best <= full_best,
            "anytime incumbent can only trail"
        );
    }

    #[test]
    fn simulated_enumeration_matches_the_threaded_skeleton() {
        let p = Fib { depth: 10 };
        let reference = Skeleton::new(Coordination::Sequential).enumerate(&p).value;
        for coord in [
            Coordination::Sequential,
            Coordination::depth_bounded(2),
            Coordination::stack_stealing_chunked(),
            Coordination::budget(30),
            Coordination::ordered(2),
        ] {
            let out = simulate_enumerate(&p, &sim(coord, 2, 3));
            assert_eq!(out.result, reference, "{coord}");
            assert_eq!(out.nodes, reference.0);
        }
    }

    #[test]
    fn simulated_optimisation_matches_the_threaded_skeleton() {
        let p = Fib { depth: 9 };
        let reference = Skeleton::new(Coordination::Sequential).maximise(&p);
        for coord in [
            Coordination::depth_bounded(3),
            Coordination::stack_stealing(),
            Coordination::budget(20),
            Coordination::ordered(3),
        ] {
            let out = simulate_maximise(&p, &sim(coord, 3, 2));
            assert_eq!(
                out.result.as_ref().map(|(_, s)| *s),
                Some(*reference.try_score().unwrap()),
                "{coord}"
            );
        }
    }

    #[test]
    fn simulated_decision_finds_a_witness() {
        let p = Fib { depth: 12 };
        let seq = Skeleton::new(Coordination::Sequential).decide(&p);
        let out = simulate_decide(&p, &sim(Coordination::depth_bounded(2), 2, 4));
        assert_eq!(out.result.is_some(), seq.found());
    }

    #[test]
    fn more_workers_reduce_the_makespan_of_a_parallel_friendly_tree() {
        let p = Fib { depth: 11 };
        let one = simulate_enumerate(&p, &sim(Coordination::depth_bounded(3), 1, 1));
        let many = simulate_enumerate(&p, &sim(Coordination::depth_bounded(3), 1, 8));
        assert_eq!(one.result, many.result);
        assert!(
            many.makespan < one.makespan,
            "8 workers ({}) should beat 1 worker ({})",
            many.makespan,
            one.makespan
        );
        let speedup = many.speedup_vs(one.makespan);
        assert!(speedup > 2.0, "expected a real speedup, got {speedup:.2}");
        assert!(many.efficiency() <= 1.0 + 1e-9);
    }

    #[test]
    fn remote_steals_are_more_expensive_than_local_ones() {
        let p = Fib { depth: 11 };
        let single_locality =
            simulate_enumerate(&p, &sim(Coordination::stack_stealing_chunked(), 1, 8));
        let many_localities =
            simulate_enumerate(&p, &sim(Coordination::stack_stealing_chunked(), 8, 1));
        assert_eq!(single_locality.result, many_localities.result);
        assert!(
            many_localities.makespan >= single_locality.makespan,
            "8 localities ({}) should not beat 8 local workers ({})",
            many_localities.makespan,
            single_locality.makespan
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let p = Fib { depth: 10 };
        let cfg = sim(Coordination::budget(25), 2, 3);
        let a = simulate_maximise(&p, &cfg);
        let b = simulate_maximise(&p, &cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.steals, b.steals);
    }

    #[test]
    fn simulated_ordered_decision_counts_are_replicable_across_worker_counts() {
        let p = Fib { depth: 12 };
        let seq = simulate_decide(&p, &sim(Coordination::Sequential, 1, 1));
        assert!(seq.result.is_some());
        for cancel in [true, false] {
            let mut reference = None;
            for (localities, wpl) in [(1, 1), (1, 2), (2, 2), (2, 4)] {
                let mut cfg = sim(Coordination::ordered(3), localities, wpl);
                cfg.cancel_speculation = cancel;
                let out = simulate_decide(&p, &cfg);
                assert_eq!(out.result.is_some(), seq.result.is_some());
                let committed = *reference.get_or_insert(out.nodes);
                assert_eq!(
                    out.nodes,
                    committed,
                    "cancel={cancel} workers={}: committed count diverged",
                    localities * wpl
                );
            }
            // A single ordered worker replays the sequential search exactly
            // (Fib's decision objective prunes at node level only).
            assert_eq!(reference, Some(seq.nodes), "cancel={cancel}");
        }
    }

    #[test]
    fn simulated_ordered_populates_the_ordered_counters() {
        let p = Fib { depth: 10 };
        let out = simulate_enumerate(&p, &sim(Coordination::ordered(2), 2, 3));
        assert!(out.ordered_spawns > 0, "spawn depth 2 must key tasks");
        assert_eq!(
            out.ordered_spawns, out.spawns,
            "every ordered spawn carries a sequence key"
        );
        assert_eq!(
            out.speculative_nodes, 0,
            "enumeration has no witness, hence no speculation"
        );
        assert_eq!(out.cancelled_tasks, 0);

        // A parallel decision run with speculation: cancellation reclaims
        // tasks while the committed count stays put (checked above).
        let p = Fib { depth: 12 };
        let on = simulate_decide(&p, &sim(Coordination::ordered(3), 2, 4));
        let mut off_cfg = sim(Coordination::ordered(3), 2, 4);
        off_cfg.cancel_speculation = false;
        let off = simulate_decide(&p, &off_cfg);
        assert_eq!(off.cancelled_tasks, 0, "the off knob records nothing");
        assert_eq!(on.nodes, off.nodes, "the knob must not move committed work");
        assert!(
            on.speculative_nodes <= off.speculative_nodes,
            "cancellation must not create extra speculative work (on={} off={})",
            on.speculative_nodes,
            off.speculative_nodes
        );
    }

    #[test]
    fn hot_path_counters_are_populated_and_amortised() {
        let p = Fib { depth: 10 };
        let out = simulate_enumerate(&p, &sim(Coordination::depth_bounded(3), 2, 3));
        assert!(out.batch_pushes > 0, "eager spawning must batch");
        assert!(out.lock_acquisitions > 0, "pool ops must be counted");
        assert!(out.poll_checks > 0, "every event checks the deadline");
        assert!(
            out.spawns >= out.batch_pushes,
            "a non-empty batch carries at least one task"
        );
        // The batched pop path must keep pool operations well below one per
        // spawned task plus one per pop — the whole point of batching.
        assert!(
            out.lock_acquisitions < out.spawns + out.nodes,
            "lock ops ({}) should be amortised below task traffic ({} spawns, {} nodes)",
            out.lock_acquisitions,
            out.spawns,
            out.nodes
        );
    }

    #[test]
    fn tracing_is_free_in_virtual_time_and_mirrors_the_counters() {
        let p = Fib { depth: 11 };
        for coord in [
            Coordination::Sequential,
            Coordination::depth_bounded(2),
            Coordination::stack_stealing_chunked(),
            Coordination::budget(30),
            Coordination::ordered(2),
        ] {
            let off = simulate_enumerate(&p, &sim(coord, 2, 3));
            assert!(
                off.trace.is_empty(),
                "{coord}: untraced runs record nothing"
            );
            let mut cfg = sim(coord, 2, 3);
            cfg.trace = true;
            let on = simulate_enumerate(&p, &cfg);
            // Recording must never charge virtual time or perturb the
            // schedule: the traced run is tick-for-tick identical.
            assert_eq!(on.makespan, off.makespan, "{coord}");
            assert_eq!(on.nodes, off.nodes, "{coord}");
            assert_eq!(on.steals, off.steals, "{coord}");
            assert!(!on.trace.is_empty(), "{coord}");
            // The trace is the event-level mirror of the aggregate
            // counters: TaskEnd node deltas sum to `nodes`, one StealHit
            // per counted steal, and every task that started also ended
            // (the run completed).
            let task_nodes: u64 = on
                .trace
                .iter()
                .filter_map(|r| match r.event {
                    TraceEvent::TaskEnd { nodes, .. } => Some(nodes),
                    _ => None,
                })
                .sum();
            assert_eq!(task_nodes, on.nodes, "{coord}");
            let hits = on
                .trace
                .iter()
                .filter(|r| matches!(r.event, TraceEvent::StealHit { .. }))
                .count() as u64;
            assert_eq!(hits, on.steals, "{coord}");
            let starts = on
                .trace
                .iter()
                .filter(|r| matches!(r.event, TraceEvent::TaskStart { .. }))
                .count();
            let ends = on
                .trace
                .iter()
                .filter(|r| matches!(r.event, TraceEvent::TaskEnd { .. }))
                .count();
            assert_eq!(starts, ends, "{coord}");
            // Virtual timestamps never exceed the makespan.
            assert!(on.trace.iter().all(|r| r.ts <= on.makespan), "{coord}");
        }
    }

    #[test]
    fn hint_directed_remote_steals_trip_the_strip_mining_analyzer() {
        use yewpar::trace::analyze::{analyze, AnalyzeConfig, FindingKind};

        // A single wide root frontier: worker 0's bottom frame holds the
        // depth-1 children for most of the run, so it is *always* the
        // shallowest advertised victim — stolen bush subtrees sit at depth
        // ≥ 2 and never out-bid it.  This is the PR 6 shape verbatim: the
        // first busy worker's shallow frontier, strip-mined one expensive
        // remote steal at a time by every other locality.
        let p = Spine {
            spine_depth: 1,
            bush_count: 60,
            bush_depth: 3,
        };
        // One-child (non-chunked) steals mean every shipped subtree costs a
        // full remote round-trip, so thieves keep coming back for more.
        let mut bad = sim(Coordination::stack_stealing(), 8, 1);
        bad.trace = true;
        bad.hint_directed_remote_steals = true;
        let out = simulate_enumerate(&p, &bad);
        let findings = analyze(&out.trace, &AnalyzeConfig::default());
        assert!(
            findings
                .iter()
                .any(|f| f.kind == FindingKind::StealStripMining),
            "hint-directed remote steals must concentrate hits on one victim; \
             findings: {findings:?}"
        );
        // The pathological schedule still computes the right answer — the
        // anomaly is a performance shape, not a correctness bug.
        let reference = simulate_enumerate(&p, &sim(Coordination::Sequential, 1, 1));
        assert_eq!(out.result, reference.result);
    }

    #[test]
    fn sequential_simulation_visits_every_node_exactly_once() {
        let p = Fib { depth: 9 };
        let out = simulate_enumerate(&p, &sim(Coordination::Sequential, 1, 1));
        assert_eq!(out.nodes, out.result.0);
        assert_eq!(out.total_work, out.nodes * CostModel::default().node_cost);
        assert_eq!(out.spawns, 0);
        assert_eq!(out.steals, 0);
    }

    /// The locality layer's equivalence sweep: every routing/pushing knob
    /// combination, across topologies from one fat locality to eight thin
    /// ones, enumerates exactly the sequential node count — steered probes,
    /// back-off naps and mailbox shipments move tasks, never drop or
    /// duplicate them — and stays deterministic run to run.
    #[test]
    fn steal_routing_and_work_pushing_preserve_counts_across_topologies() {
        let p = Fib { depth: 11 };
        let reference = simulate_enumerate(&p, &sim(Coordination::Sequential, 1, 1));
        for coord in [
            Coordination::stack_stealing(),
            Coordination::stack_stealing_chunked(),
        ] {
            for (localities, wpl) in [(1usize, 4usize), (2, 2), (4, 2), (8, 1)] {
                for (routing, pushing) in
                    [(false, false), (true, false), (false, true), (true, true)]
                {
                    let mut cfg = sim(coord, localities, wpl);
                    cfg.steal_routing = routing;
                    cfg.work_pushing = pushing;
                    let out = simulate_enumerate(&p, &cfg);
                    assert_eq!(
                        out.result, reference.result,
                        "{coord} {localities}x{wpl} r={routing} p={pushing} diverged"
                    );
                    let again = simulate_enumerate(&p, &cfg);
                    assert_eq!(
                        out.makespan, again.makespan,
                        "{coord} {localities}x{wpl} r={routing} p={pushing} nondeterministic"
                    );
                }
            }
        }
    }

    /// Ordered replicability survives the locality layer: the committed
    /// node count is a pure function of the instance whatever the worker
    /// count and whatever the routing/pushing knobs say (the Ordered
    /// coordination never takes the mailbox path, and routing must not
    /// perturb its speculation-commit rule).
    #[test]
    fn ordered_replicability_is_unaffected_by_routing_and_pushing() {
        let p = Fib { depth: 10 };
        let mut committed: Option<u64> = None;
        for (localities, wpl) in [(1usize, 1usize), (1, 2), (2, 2), (4, 2)] {
            for (routing, pushing) in [(false, false), (true, true)] {
                let mut cfg = sim(Coordination::ordered(2), localities, wpl);
                cfg.steal_routing = routing;
                cfg.work_pushing = pushing;
                let out = simulate_decide(&p, &cfg);
                let c = committed.get_or_insert(out.nodes);
                assert_eq!(
                    *c, out.nodes,
                    "{localities}x{wpl} r={routing} p={pushing} broke replicability"
                );
            }
        }
    }

    /// Work pushing keeps the task ledger exact on every exit path: a
    /// completed run commits every pushed task (the engine's quiescence
    /// debug-assert backs this), and a deadline that lands while shipments
    /// are in flight still exits cleanly with partial results.
    #[test]
    fn pushed_tasks_are_accounted_on_completed_and_deadline_exits() {
        let p = Fib { depth: 12 };
        let reference = simulate_enumerate(&p, &sim(Coordination::Sequential, 1, 1));
        let cfg = sim(Coordination::stack_stealing(), 4, 2);
        let full = simulate_enumerate(&p, &cfg);
        assert_eq!(full.result, reference.result);
        assert!(full.status.is_complete());
        // Cut the run at several points around the push-heavy midgame so
        // some deadline lands with a shipment still in a mailbox.
        for quarter in 1..4 {
            let mut cut = cfg.clone();
            cut.deadline_ticks = Some(full.makespan * quarter / 4);
            let partial = simulate_enumerate(&p, &cut);
            assert_eq!(partial.status, SearchStatus::DeadlineExceeded);
            assert!(partial.nodes <= full.nodes);
        }
    }
}
