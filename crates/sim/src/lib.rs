//! Discrete-event simulation of distributed-memory skeleton execution.
//!
//! The paper evaluates YewPar on a Beowulf cluster (up to 17 localities ×
//! 15 workers, Figures 4 and Table 2) running on the HPX distributed runtime.
//! This crate is the stand-in substrate for that hardware: it executes the
//! *same* search (same lazy node generators, same coordination policies, same
//! knowledge-sharing behaviour) but on simulated workers advancing a virtual
//! clock, so deterministic scaling curves can be produced on a single
//! physical core.
//!
//! What is modelled:
//!
//! * **Localities and workers** — `localities × workers_per_locality`
//!   simulated workers; each locality owns an order-preserving workpool
//!   (Depth-Bounded, Budget) or its workers are stolen from directly
//!   (Stack-Stealing).
//! * **Costs** — per-node expansion cost, task spawn cost, local and remote
//!   steal latencies, and a bound-broadcast latency after which other
//!   localities observe an improved incumbent (stale bounds cost pruning
//!   opportunity, exactly as in the paper's knowledge-management design).
//! * **Work distribution policies** — the same spawn rules as the threaded
//!   skeletons: depth cutoff, backtrack budget, on-demand lowest-depth
//!   splitting.
//!
//! What is *not* modelled: message contention, memory hierarchy effects and
//! OS noise.  The simulator is therefore suitable for reproducing the shape
//! of the paper's scaling results (which skeleton wins where, how speedup
//! degrades with bad parameters), not absolute runtimes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod multiplex;

pub use engine::{
    simulate_decide, simulate_enumerate, simulate_maximise, CostModel, SimConfig, SimOutcome,
};
pub use multiplex::{simulate_multiplexed, simulate_multiplexed_elastic, ElasticSchedule, SimJob};
