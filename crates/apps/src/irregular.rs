//! The synthetic *Irregular* tree (enumeration search).
//!
//! A deterministic, parameter-light irregular tree used across the
//! workspace as the canonical quick workload: each node carries an LCG
//! state, its fan-out is `state % 4 + 1`, and children derive their states
//! from the parent's.  Subtree sizes vary wildly between siblings, which is
//! exactly the load imbalance the parallel coordinations and the sharded
//! workpool are designed to absorb.  The core engine's unit tests, the
//! engine-equivalence integration tests and the `table2` benchmark baseline
//! all use this family, so a recorded `BENCH_0.json` is comparable across
//! machines and PRs.

use yewpar::monoid::Sum;
use yewpar::{Decide, Enumerate, Optimise, SearchProblem};

/// The Irregular enumeration problem.
#[derive(Debug, Clone)]
pub struct Irregular {
    depth: usize,
    seed: u64,
}

impl Irregular {
    /// An irregular tree cut off at `depth`, derived from `seed`.
    pub fn new(depth: usize, seed: u64) -> Self {
        Irregular {
            depth,
            seed: seed | 1,
        }
    }

    /// The depth cutoff.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl SearchProblem for Irregular {
    /// A node: its depth and its LCG state.
    type Node = (usize, u64);
    type Gen<'a> = std::vec::IntoIter<(usize, u64)>;

    fn root(&self) -> (usize, u64) {
        (0, self.seed)
    }

    fn generator(&self, node: &(usize, u64)) -> Self::Gen<'_> {
        let (depth, state) = *node;
        if depth >= self.depth {
            return vec![].into_iter();
        }
        let fanout = (state % 4) as usize + 1;
        (0..fanout)
            .map(|i| {
                (
                    depth + 1,
                    state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i as u64),
                )
            })
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn name(&self) -> &str {
        "irregular"
    }
}

impl Enumerate for Irregular {
    type Value = Sum<u64>;

    fn value(&self, _node: &(usize, u64)) -> Sum<u64> {
        Sum(1)
    }
}

/// The canonical decision objective over the Irregular tree (the same one
/// the core's replicability tests use): a node's score is its LCG state mod
/// 1000, the bound is the trivial constant 1000 — so a decision search never
/// prunes (node-level pruning only) and its committed expansion count equals
/// the Sequential skeleton's, which makes this family the quick replicable
/// decision workload for `table2` and the Ordered cancellation A/B sweeps.
impl Optimise for Irregular {
    type Score = u64;

    fn objective(&self, node: &(usize, u64)) -> u64 {
        node.1 % 1000
    }

    fn bound(&self, _node: &(usize, u64)) -> Option<u64> {
        Some(1000)
    }
}

impl Decide for Irregular {
    fn target(&self) -> u64 {
        990
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yewpar::node::subtree_size;
    use yewpar::{Coordination, Skeleton};

    #[test]
    fn deterministic_in_seed_and_depth() {
        let a = Irregular::new(8, 42);
        let b = Irregular::new(8, 42);
        let c = Irregular::new(8, 101);
        assert_eq!(subtree_size(&a, &a.root()), subtree_size(&b, &b.root()));
        // Different seeds give different trees (with overwhelming likelihood
        // for this LCG; pinned here as a regression guard).
        assert_ne!(subtree_size(&a, &a.root()), subtree_size(&c, &c.root()));
    }

    #[test]
    fn fanout_varies_between_one_and_four() {
        let p = Irregular::new(6, 1);
        let mut widths = std::collections::BTreeSet::new();
        let mut frontier = vec![p.root()];
        while let Some(n) = frontier.pop() {
            let children: Vec<_> = p.generator(&n).collect();
            if n.0 < p.depth() {
                widths.insert(children.len());
                assert!((1..=4).contains(&children.len()));
            } else {
                assert!(children.is_empty());
            }
            frontier.extend(children);
        }
        assert!(widths.len() > 1, "tree is not irregular: widths {widths:?}");
    }

    #[test]
    fn decision_objective_is_replicable_under_ordered() {
        let p = Irregular::new(9, 1);
        let seq = Skeleton::new(Coordination::Sequential).decide(&p);
        assert!(seq.found(), "target 990 exists in this tree");
        for workers in [1usize, 4] {
            let out = Skeleton::new(Coordination::ordered(3))
                .workers(workers)
                .decide(&p);
            assert_eq!(out.found(), seq.found());
            assert_eq!(
                out.metrics.nodes(),
                seq.metrics.nodes(),
                "node-level pruning only, so Ordered must replay Sequential"
            );
        }
    }

    #[test]
    fn skeleton_count_matches_reference_traversal() {
        let p = Irregular::new(8, 7);
        let expected = subtree_size(&p, &p.root());
        let out = Skeleton::new(Coordination::depth_bounded(2))
            .workers(3)
            .enumerate(&p);
        assert_eq!(out.value.0, expected);
    }
}
