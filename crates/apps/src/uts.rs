//! Unbalanced Tree Search (enumeration search).
//!
//! UTS (Olivier et al.) is the standard benchmark for dynamic load balancing:
//! it counts the nodes of a synthetic, highly irregular tree whose shape is
//! determined entirely by a cryptographic-style hash of each node's path from
//! the root.  This implementation uses a SplitMix64 hash instead of SHA-1
//! (the substitution is documented in DESIGN.md); like the original it is
//! fully deterministic in the root seed, supports the *geometric* and
//! *binomial* tree shapes, and produces trees whose subtree sizes vary by
//! orders of magnitude — exactly the irregularity that stresses the parallel
//! coordinations.

use yewpar::monoid::{Pair, Sum};
use yewpar::{Enumerate, SearchProblem};

/// Tree-shape variants of UTS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UtsShape {
    /// Geometric trees: the expected branching factor is `b0` at the root and
    /// decays linearly to zero at `max_depth` (bounded-depth variant).
    Geometric {
        /// Expected branching factor at the root.
        b0: f64,
        /// Depth at which nodes stop having children.
        max_depth: usize,
    },
    /// Binomial trees: the root has exactly `b0` children; every other node
    /// has `m` children with probability `q`, otherwise none.  Expected size
    /// is finite iff `q * m < 1`.
    Binomial {
        /// Number of children of the root.
        b0: usize,
        /// Probability that a non-root node has children.
        q: f64,
        /// Number of children a branching non-root node gets.
        m: usize,
        /// Hard depth cap (keeps worst-case runs bounded).
        max_depth: usize,
    },
}

/// The UTS enumeration problem.
#[derive(Debug, Clone)]
pub struct Uts {
    shape: UtsShape,
    seed: u64,
}

/// A UTS node: its depth and the hash state that determines its subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtsNode {
    /// Depth of the node (root = 0).
    pub depth: u32,
    /// Deterministic hash state.
    pub state: u64,
}

/// SplitMix64: the stand-in for the SHA-1 node hash of the original UTS.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Map a state to a uniform float in `[0, 1)`.
fn uniform01(state: u64) -> f64 {
    (state >> 11) as f64 / (1u64 << 53) as f64
}

impl Uts {
    /// Build a UTS instance.
    pub fn new(shape: UtsShape, seed: u64) -> Self {
        Uts { shape, seed }
    }

    /// A small geometric preset (tens of thousands of nodes).
    pub fn geometric_small(seed: u64) -> Self {
        Uts::new(
            UtsShape::Geometric {
                b0: 4.0,
                max_depth: 9,
            },
            seed,
        )
    }

    /// A small binomial preset (highly irregular, a few thousand nodes in
    /// expectation).
    pub fn binomial_small(seed: u64) -> Self {
        Uts::new(
            UtsShape::Binomial {
                b0: 200,
                q: 0.24,
                m: 4,
                max_depth: 1000,
            },
            seed,
        )
    }

    /// Number of children of a node (deterministic in the node state).
    pub fn num_children(&self, node: &UtsNode) -> usize {
        match self.shape {
            UtsShape::Geometric { b0, max_depth } => {
                if node.depth as usize >= max_depth {
                    return 0;
                }
                // Expected branching decays linearly with depth; the actual
                // count is drawn from a geometric distribution via the node
                // hash, capped to keep single nodes from dominating.
                let expected = b0 * (1.0 - node.depth as f64 / max_depth as f64);
                if expected <= 0.0 {
                    return 0;
                }
                let u = uniform01(node.state);
                let p = expected / (1.0 + expected);
                // Inverse-transform sample of a geometric distribution with
                // success probability 1 - p (mean = expected).
                let k = (1.0 - u).ln() / p.ln();
                (k.floor() as usize).min(4 * b0.ceil() as usize)
            }
            UtsShape::Binomial {
                b0,
                q,
                m,
                max_depth,
            } => {
                if node.depth == 0 {
                    b0
                } else if (node.depth as usize) < max_depth && uniform01(node.state) < q {
                    m
                } else {
                    0
                }
            }
        }
    }
}

/// Lazy node generator: child states are derived by hashing the parent state
/// with the child index.
pub struct UtsGen {
    parent: UtsNode,
    count: usize,
    next: usize,
}

impl Iterator for UtsGen {
    type Item = UtsNode;

    fn next(&mut self) -> Option<UtsNode> {
        if self.next >= self.count {
            return None;
        }
        let i = self.next as u64;
        self.next += 1;
        Some(UtsNode {
            depth: self.parent.depth + 1,
            state: splitmix64(self.parent.state ^ (i + 1).wrapping_mul(0xA24BAED4963EE407)),
        })
    }
}

impl SearchProblem for Uts {
    type Node = UtsNode;
    type Gen<'a> = UtsGen;

    fn root(&self) -> UtsNode {
        UtsNode {
            depth: 0,
            state: splitmix64(self.seed),
        }
    }

    fn generator(&self, node: &UtsNode) -> UtsGen {
        UtsGen {
            parent: *node,
            count: self.num_children(node),
            next: 0,
        }
    }

    fn name(&self) -> &str {
        "uts"
    }
}

impl Enumerate for Uts {
    /// Counts nodes and tracks the deepest level in a single fold.
    type Value = Pair<Sum<u64>, yewpar::monoid::Max<u64>>;

    fn value(&self, node: &UtsNode) -> Self::Value {
        Pair(Sum(1), yewpar::monoid::Max(node.depth as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yewpar::{Coordination, Skeleton};

    #[test]
    fn splitmix_is_deterministic_and_spreads_bits() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        let u = uniform01(splitmix64(7));
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn tree_is_deterministic_in_the_seed() {
        let a = Skeleton::new(Coordination::Sequential).enumerate(&Uts::geometric_small(1));
        let b = Skeleton::new(Coordination::Sequential).enumerate(&Uts::geometric_small(1));
        let c = Skeleton::new(Coordination::Sequential).enumerate(&Uts::geometric_small(2));
        assert_eq!(a.value, b.value);
        assert_ne!(
            a.value.0, c.value.0,
            "different seeds should give different trees"
        );
    }

    #[test]
    fn geometric_tree_respects_the_depth_cap() {
        let p = Uts::new(
            UtsShape::Geometric {
                b0: 3.0,
                max_depth: 6,
            },
            11,
        );
        let out = Skeleton::new(Coordination::Sequential).enumerate(&p);
        assert!(
            out.value.1 .0 <= 6,
            "max depth {} exceeds cap",
            out.value.1 .0
        );
        assert!(out.value.0 .0 > 1);
    }

    #[test]
    fn binomial_root_has_exactly_b0_children() {
        let p = Uts::binomial_small(5);
        let root = p.root();
        assert_eq!(p.num_children(&root), 200);
        assert_eq!(p.generator(&root).count(), 200);
    }

    #[test]
    fn subtree_sizes_are_irregular() {
        let p = Uts::binomial_small(3);
        let root = p.root();
        let sizes: Vec<u64> = p
            .generator(&root)
            .map(|c| yewpar::node::subtree_size(&p, &c))
            .collect();
        assert!(sizes.len() > 1);
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(
            max > &(min * 3),
            "expected irregular subtrees, got min={min} max={max}"
        );
    }

    #[test]
    fn parallel_skeletons_count_the_same_tree() {
        let p = Uts::binomial_small(9);
        let expected = Skeleton::new(Coordination::Sequential).enumerate(&p).value;
        for coord in [
            Coordination::depth_bounded(2),
            Coordination::stack_stealing_chunked(),
            Coordination::budget(100),
        ] {
            let out = Skeleton::new(coord).workers(3).enumerate(&p);
            assert_eq!(out.value, expected, "{coord}");
        }
    }
}
