//! Subgraph Isomorphism Problem (decision search).
//!
//! Decide whether the pattern graph has a (non-induced) embedding into the
//! target graph.  The search assigns pattern vertices one at a time in a
//! static degree-descending variable order; children of a node are the
//! consistent target vertices for the next pattern vertex (adjacent to the
//! images of all previously assigned pattern neighbours and not yet used),
//! tried in target-degree-descending order.  The search short-circuits as
//! soon as every pattern vertex is assigned.

use yewpar::bitset::BitSet;
use yewpar::{Decide, Optimise, SearchProblem};
use yewpar_instances::SipInstance;

/// A partial assignment of pattern vertices to target vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SipNode {
    /// `mapping[i]` is the target vertex assigned to the i-th pattern vertex
    /// *in variable order*.
    pub mapping: Vec<u16>,
    /// Target vertices already used.
    pub used: BitSet,
}

/// The SIP decision problem.
#[derive(Debug, Clone)]
pub struct Sip {
    instance: SipInstance,
    /// Pattern vertices in branching (variable) order: degree descending.
    var_order: Vec<usize>,
    /// Target vertices in value order: degree descending.
    val_order: Vec<usize>,
}

impl Sip {
    /// Build the problem for a pattern/target pair.
    pub fn new(instance: SipInstance) -> Self {
        let var_order = instance.pattern.degree_order();
        let val_order = instance.target.degree_order();
        Sip {
            instance,
            var_order,
            val_order,
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &SipInstance {
        &self.instance
    }

    /// Convert a complete node into a pattern-vertex-indexed mapping and
    /// check it with the instance's embedding checker.
    pub fn verify(&self, node: &SipNode) -> bool {
        if node.mapping.len() != self.instance.pattern.order() {
            return false;
        }
        let mut mapping = vec![0usize; self.instance.pattern.order()];
        for (i, &t) in node.mapping.iter().enumerate() {
            mapping[self.var_order[i]] = t as usize;
        }
        self.instance.is_embedding(&mapping)
    }

    /// Is `target_v` a consistent assignment for the next pattern vertex?
    fn consistent(&self, node: &SipNode, target_v: usize) -> bool {
        if node.used.contains(target_v) {
            return false;
        }
        let pattern_v = self.var_order[node.mapping.len()];
        for (i, &assigned_target) in node.mapping.iter().enumerate() {
            let earlier_pattern = self.var_order[i];
            if self.instance.pattern.has_edge(pattern_v, earlier_pattern)
                && !self
                    .instance
                    .target
                    .has_edge(target_v, assigned_target as usize)
            {
                return false;
            }
        }
        true
    }
}

/// Lazy node generator: consistent target vertices for the next pattern
/// vertex, highest target degree first.
pub struct SipGen<'a> {
    problem: &'a Sip,
    parent: SipNode,
    /// Index into the problem's value order.
    next_val: usize,
}

impl Iterator for SipGen<'_> {
    type Item = SipNode;

    fn next(&mut self) -> Option<SipNode> {
        if self.parent.mapping.len() >= self.problem.instance.pattern.order() {
            return None;
        }
        while self.next_val < self.problem.val_order.len() {
            let target_v = self.problem.val_order[self.next_val];
            self.next_val += 1;
            if self.problem.consistent(&self.parent, target_v) {
                let mut mapping = self.parent.mapping.clone();
                mapping.push(target_v as u16);
                let mut used = self.parent.used.clone();
                used.insert(target_v);
                return Some(SipNode { mapping, used });
            }
        }
        None
    }
}

impl SearchProblem for Sip {
    type Node = SipNode;
    type Gen<'a> = SipGen<'a>;

    fn root(&self) -> SipNode {
        SipNode {
            mapping: Vec::new(),
            used: BitSet::new(self.instance.target.order()),
        }
    }

    fn generator<'a>(&'a self, node: &SipNode) -> SipGen<'a> {
        SipGen {
            problem: self,
            parent: node.clone(),
            next_val: 0,
        }
    }

    fn name(&self) -> &str {
        "sip"
    }
}

impl Optimise for Sip {
    type Score = u32;

    fn objective(&self, node: &SipNode) -> u32 {
        node.mapping.len() as u32
    }
}

impl Decide for Sip {
    fn target(&self) -> u32 {
        self.instance.pattern.order() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yewpar::{Coordination, Skeleton};
    use yewpar_instances::graph::{gnp, Graph};

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    fn cycle_graph(n: usize) -> Graph {
        let mut g = path_graph(n);
        g.add_edge(n - 1, 0);
        g
    }

    #[test]
    fn path_embeds_in_cycle_but_not_vice_versa() {
        let yes = Sip::new(SipInstance {
            pattern: path_graph(4),
            target: cycle_graph(6),
        });
        let out = Skeleton::new(Coordination::Sequential).decide(&yes);
        assert!(out.found());
        assert!(yes.verify(out.witness.as_ref().unwrap()));

        let no = Sip::new(SipInstance {
            pattern: cycle_graph(5), // an odd cycle does not embed in a path
            target: path_graph(8),
        });
        let out = Skeleton::new(Coordination::Sequential).decide(&no);
        assert!(!out.found());
    }

    #[test]
    fn guaranteed_embedding_instances_are_satisfiable() {
        for seed in 0..4 {
            let inst = SipInstance::with_embedding(24, 7, 0.4, seed);
            let p = Sip::new(inst);
            let out = Skeleton::new(Coordination::Sequential).decide(&p);
            assert!(out.found(), "seed {seed}");
            assert!(p.verify(out.witness.as_ref().unwrap()));
        }
    }

    #[test]
    fn dense_pattern_in_sparse_target_is_unsatisfiable() {
        let inst = SipInstance {
            pattern: gnp(6, 1.0, 1), // a 6-clique
            target: gnp(20, 0.2, 2),
        };
        let p = Sip::new(inst);
        let out = Skeleton::new(Coordination::Sequential).decide(&p);
        assert!(!out.found());
    }

    #[test]
    fn all_skeletons_agree_on_satisfiability() {
        let sat = SipInstance::with_embedding(26, 8, 0.35, 40);
        let unsat = SipInstance {
            pattern: gnp(7, 0.95, 3),
            target: gnp(22, 0.25, 4),
        };
        for (inst, expected) in [(sat, true), (unsat, false)] {
            let p = Sip::new(inst);
            for coord in [
                Coordination::Sequential,
                Coordination::depth_bounded(2),
                Coordination::stack_stealing_chunked(),
                Coordination::budget(50),
            ] {
                let out = Skeleton::new(coord).workers(3).decide(&p);
                assert_eq!(out.found(), expected, "{coord}");
                if let Some(w) = &out.witness {
                    assert!(p.verify(w));
                }
            }
        }
    }

    #[test]
    fn single_vertex_pattern_always_embeds_in_nonempty_target() {
        let p = Sip::new(SipInstance {
            pattern: Graph::new(1),
            target: gnp(5, 0.5, 9),
        });
        let out = Skeleton::new(Coordination::Sequential).decide(&p);
        assert!(out.found());
    }
}
