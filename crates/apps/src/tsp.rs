//! Travelling Salesperson (optimisation search, minimisation).
//!
//! Depth-first branch and bound over partial tours anchored at city 0.
//! Children extend the tour with an unvisited city, nearest city first (the
//! search-order heuristic); the bound is the partial tour length plus, for
//! every city that still needs an incoming edge, the cheapest edge incident
//! to it.  Minimisation is expressed through [`MinimiseScore`] so the generic
//! maximising skeletons minimise the tour length.

use yewpar::objective::MinimiseScore;
use yewpar::{Optimise, SearchProblem};
use yewpar_instances::TspInstance;

/// A partial tour starting (and implicitly ending) at city 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TourNode {
    /// Cities visited so far, in order; always starts with 0.
    pub path: Vec<u16>,
    /// Bitmask of visited cities.
    pub visited: u64,
    /// Length of the path so far (no return edge).
    pub cost: u64,
}

impl TourNode {
    /// The city the tour currently ends at.
    pub fn current(&self) -> usize {
        *self
            .path
            .last()
            .expect("path always contains the start city") as usize
    }

    /// True once every city has been visited.
    pub fn is_complete(&self, cities: usize) -> bool {
        self.path.len() == cities
    }
}

/// The TSP search problem.
#[derive(Debug, Clone)]
pub struct Tsp {
    instance: TspInstance,
    /// Cheapest incident edge per city (for the lower bound).
    min_edge: Vec<u64>,
}

impl Tsp {
    /// Build the problem for an instance (at most 64 cities, for the bitmask).
    pub fn new(instance: TspInstance) -> Self {
        assert!(
            instance.cities() >= 2 && instance.cities() <= 64,
            "tsp node representation supports 2..=64 cities"
        );
        let min_edge = (0..instance.cities())
            .map(|i| instance.min_edge(i) as u64)
            .collect();
        Tsp { instance, min_edge }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &TspInstance {
        &self.instance
    }

    /// Full tour length of a complete node (including the return edge).
    pub fn tour_cost(&self, node: &TourNode) -> u64 {
        debug_assert!(node.is_complete(self.instance.cities()));
        node.cost + self.instance.distance(node.current(), 0) as u64
    }

    /// Verify that a complete node is a valid tour with consistent cost.
    pub fn verify(&self, node: &TourNode) -> bool {
        let n = self.instance.cities();
        if node.path.len() != n || node.path[0] != 0 {
            return false;
        }
        let mut seen = vec![false; n];
        for &c in &node.path {
            if seen[c as usize] {
                return false;
            }
            seen[c as usize] = true;
        }
        let path: Vec<usize> = node.path.iter().map(|&c| c as usize).collect();
        self.instance.tour_length(&path) == self.tour_cost(node)
    }

    /// Admissible lower bound on the best complete tour below `node`.
    fn lower_bound(&self, node: &TourNode) -> u64 {
        let n = self.instance.cities();
        if node.is_complete(n) {
            return self.tour_cost(node);
        }
        // Every unvisited city, plus the start city (which still needs its
        // closing incoming edge), must be entered by one remaining edge.
        let mut bound = node.cost + self.min_edge[0];
        for city in 0..n {
            if node.visited & (1 << city) == 0 {
                bound += self.min_edge[city];
            }
        }
        bound
    }
}

/// Lazy node generator: unvisited cities in nearest-first order.
pub struct TourGen<'a> {
    problem: &'a Tsp,
    parent: TourNode,
    /// Unvisited cities sorted by distance from the current city (nearest
    /// first), consumed front to back.
    order: std::vec::IntoIter<u16>,
}

impl Iterator for TourGen<'_> {
    type Item = TourNode;

    fn next(&mut self) -> Option<TourNode> {
        let next_city = self.order.next()?;
        let mut path = self.parent.path.clone();
        path.push(next_city);
        Some(TourNode {
            cost: self.parent.cost
                + self
                    .problem
                    .instance
                    .distance(self.parent.current(), next_city as usize) as u64,
            visited: self.parent.visited | (1 << next_city),
            path,
        })
    }
}

impl SearchProblem for Tsp {
    type Node = TourNode;
    type Gen<'a> = TourGen<'a>;

    fn root(&self) -> TourNode {
        TourNode {
            path: vec![0],
            visited: 1,
            cost: 0,
        }
    }

    fn generator<'a>(&'a self, node: &TourNode) -> TourGen<'a> {
        let n = self.instance.cities();
        let current = node.current();
        let mut order: Vec<u16> = (0..n as u16)
            .filter(|&c| node.visited & (1 << c) == 0)
            .collect();
        order.sort_by_key(|&c| self.instance.distance(current, c as usize));
        TourGen {
            problem: self,
            parent: node.clone(),
            order: order.into_iter(),
        }
    }

    fn name(&self) -> &str {
        "tsp"
    }
}

impl Optimise for Tsp {
    type Score = MinimiseScore<u64>;

    fn objective(&self, node: &TourNode) -> MinimiseScore<u64> {
        if node.is_complete(self.instance.cities()) {
            MinimiseScore(self.tour_cost(node))
        } else {
            // Incomplete tours are not solutions: give them the worst score.
            MinimiseScore(u64::MAX)
        }
    }

    fn bound(&self, node: &TourNode) -> Option<MinimiseScore<u64>> {
        Some(MinimiseScore(self.lower_bound(node)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yewpar::{Coordination, Skeleton};

    fn square() -> TspInstance {
        TspInstance::from_matrix(vec![
            vec![0, 10, 14, 10],
            vec![10, 0, 10, 14],
            vec![14, 10, 0, 10],
            vec![10, 14, 10, 0],
        ])
    }

    #[test]
    fn square_optimum_is_the_perimeter() {
        let p = Tsp::new(square());
        let out = Skeleton::new(Coordination::Sequential).maximise(&p);
        assert_eq!(out.try_score().unwrap().0, 40);
        assert!(p.verify(out.try_node().unwrap()));
    }

    #[test]
    fn matches_held_karp_on_random_instances() {
        for seed in 0..4 {
            let inst = TspInstance::random_euclidean(9, 200.0, seed);
            let expected = inst.optimum_by_held_karp();
            let p = Tsp::new(inst);
            let out = Skeleton::new(Coordination::Sequential).maximise(&p);
            assert_eq!(out.try_score().unwrap().0, expected, "seed {seed}");
            assert!(p.verify(out.try_node().unwrap()));
        }
    }

    #[test]
    fn all_skeletons_agree_on_tour_length() {
        let inst = TspInstance::random_euclidean(10, 300.0, 77);
        let expected = inst.optimum_by_held_karp();
        let p = Tsp::new(inst);
        for coord in [
            Coordination::Sequential,
            Coordination::depth_bounded(2),
            Coordination::stack_stealing(),
            Coordination::budget(100),
        ] {
            let out = Skeleton::new(coord).workers(3).maximise(&p);
            assert_eq!(out.try_score().unwrap().0, expected, "{coord}");
            assert!(p.verify(out.try_node().unwrap()));
        }
    }

    #[test]
    fn pruning_is_effective_compared_to_exhaustive_enumeration() {
        let inst = TspInstance::random_euclidean(10, 100.0, 5);
        let p = Tsp::new(inst);
        let out = Skeleton::new(Coordination::Sequential).maximise(&p);
        // 9! = 362880 leaf permutations; pruning must cut the tree well below
        // the full enumeration size.
        assert!(
            out.metrics.nodes() < 200_000,
            "expected substantial pruning, explored {} nodes",
            out.metrics.nodes()
        );
        assert!(out.metrics.totals.prunes > 0);
    }

    #[test]
    fn lower_bound_is_admissible() {
        let inst = TspInstance::random_euclidean(7, 100.0, 13);
        let p = Tsp::new(inst);

        fn best_cost(p: &Tsp, node: &TourNode) -> u64 {
            let mut best = u64::MAX;
            if node.is_complete(p.instance().cities()) {
                best = p.tour_cost(node);
            }
            for child in p.generator(node) {
                best = best.min(best_cost(p, &child));
            }
            if best != u64::MAX {
                assert!(
                    p.lower_bound(node) <= best,
                    "lower bound {} exceeds best completion {}",
                    p.lower_bound(node),
                    best
                );
            }
            best
        }

        let best = best_cost(&p, &p.root());
        assert_eq!(best, p.instance().optimum_by_held_karp());
    }

    #[test]
    fn two_city_instance() {
        let inst = TspInstance::from_matrix(vec![vec![0, 5], vec![5, 0]]);
        let p = Tsp::new(inst);
        let out = Skeleton::new(Coordination::Sequential).maximise(&p);
        assert_eq!(out.try_score().unwrap().0, 10);
    }
}
