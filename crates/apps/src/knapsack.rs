//! 0/1 Knapsack (optimisation search).
//!
//! Branch and bound over *inclusion* decisions: a search-tree node is a
//! feasible subset of items; its children extend the subset with one more
//! item of higher index (in profit-density order), so every feasible subset
//! appears exactly once in the tree.  The bound is the classic Dantzig
//! fractional relaxation: fill the remaining capacity greedily by density,
//! taking a fraction of the first item that does not fit.

use yewpar::{Optimise, SearchProblem};
use yewpar_instances::KnapsackInstance;

/// A knapsack search-tree node: a feasible partial selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnapsackNode {
    /// Bitmask over *density-ordered* item positions chosen so far.
    pub chosen: u64,
    /// Total profit of the selection.
    pub profit: u64,
    /// Total weight of the selection.
    pub weight: u64,
    /// Next density-ordered position that may be added (children use
    /// positions `pos..n`).
    pub pos: usize,
}

/// The 0/1 knapsack search problem.
#[derive(Debug, Clone)]
pub struct Knapsack {
    instance: KnapsackInstance,
    /// Item indices in non-increasing profit-density order.
    order: Vec<usize>,
}

impl Knapsack {
    /// Build the problem; items are branched on in profit-density order.
    pub fn new(instance: KnapsackInstance) -> Self {
        assert!(
            instance.items() <= 64,
            "the bitmask node representation supports at most 64 items"
        );
        let order = instance.density_order();
        Knapsack { instance, order }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &KnapsackInstance {
        &self.instance
    }

    /// The original item indices selected by a node.
    pub fn selected_items(&self, node: &KnapsackNode) -> Vec<usize> {
        (0..self.instance.items())
            .filter(|i| node.chosen & (1 << i) != 0)
            .map(|i| self.order[i])
            .collect()
    }

    /// Verify that a node is a feasible selection and its cached totals are
    /// consistent with the instance.
    pub fn verify(&self, node: &KnapsackNode) -> bool {
        let items = self.selected_items(node);
        let (profit, weight) = self.instance.evaluate(&items);
        profit == node.profit && weight == node.weight && weight <= self.instance.capacity
    }

    /// Dantzig fractional upper bound for a node.
    fn fractional_bound(&self, node: &KnapsackNode) -> u64 {
        let mut bound = node.profit;
        let mut room = self.instance.capacity - node.weight;
        for pos in node.pos..self.order.len() {
            let item = self.order[pos];
            let w = self.instance.weights[item];
            let p = self.instance.profits[item];
            if w <= room {
                room -= w;
                bound += p;
            } else {
                // Fractional part, rounded up (keeps the bound admissible).
                bound += (p * room).div_ceil(w.max(1));
                break;
            }
        }
        bound
    }
}

/// Lazy node generator: children add one item at a position `>= pos`.
pub struct KnapsackGen<'a> {
    problem: &'a Knapsack,
    parent: KnapsackNode,
    next_pos: usize,
}

impl Iterator for KnapsackGen<'_> {
    type Item = KnapsackNode;

    fn next(&mut self) -> Option<KnapsackNode> {
        while self.next_pos < self.problem.order.len() {
            let pos = self.next_pos;
            self.next_pos += 1;
            let item = self.problem.order[pos];
            let weight = self.parent.weight + self.problem.instance.weights[item];
            if weight <= self.problem.instance.capacity {
                return Some(KnapsackNode {
                    chosen: self.parent.chosen | (1 << pos),
                    profit: self.parent.profit + self.problem.instance.profits[item],
                    weight,
                    pos: pos + 1,
                });
            }
        }
        None
    }
}

impl SearchProblem for Knapsack {
    type Node = KnapsackNode;
    type Gen<'a> = KnapsackGen<'a>;

    fn root(&self) -> KnapsackNode {
        KnapsackNode {
            chosen: 0,
            profit: 0,
            weight: 0,
            pos: 0,
        }
    }

    fn generator<'a>(&'a self, node: &KnapsackNode) -> KnapsackGen<'a> {
        KnapsackGen {
            problem: self,
            parent: node.clone(),
            next_pos: node.pos,
        }
    }

    fn name(&self) -> &str {
        "knapsack"
    }
}

impl Optimise for Knapsack {
    type Score = u64;

    fn objective(&self, node: &KnapsackNode) -> u64 {
        node.profit
    }

    fn bound(&self, node: &KnapsackNode) -> Option<u64> {
        Some(self.fractional_bound(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yewpar::{Coordination, Skeleton};
    use yewpar_instances::knapsack::KnapsackClass;

    fn textbook() -> KnapsackInstance {
        KnapsackInstance {
            profits: vec![60, 100, 120],
            weights: vec![10, 20, 30],
            capacity: 50,
        }
    }

    #[test]
    fn textbook_optimum() {
        let p = Knapsack::new(textbook());
        let out = Skeleton::new(Coordination::Sequential).maximise(&p);
        assert_eq!(*out.try_score().unwrap(), 220);
        assert!(p.verify(out.try_node().unwrap()));
        let mut items = p.selected_items(out.try_node().unwrap());
        items.sort();
        assert_eq!(items, vec![1, 2]);
    }

    #[test]
    fn matches_dynamic_programming_on_generated_instances() {
        for (class, seed) in [
            (KnapsackClass::Uncorrelated, 1u64),
            (KnapsackClass::WeaklyCorrelated, 2),
            (KnapsackClass::StronglyCorrelated, 3),
        ] {
            let inst = KnapsackInstance::generate(class, 18, 50, seed);
            let expected = inst.optimum_by_dp();
            let p = Knapsack::new(inst);
            let out = Skeleton::new(Coordination::Sequential).maximise(&p);
            assert_eq!(*out.try_score().unwrap(), expected, "class {class:?}");
            assert!(p.verify(out.try_node().unwrap()));
        }
    }

    #[test]
    fn all_skeletons_agree() {
        let inst = KnapsackInstance::generate(KnapsackClass::WeaklyCorrelated, 20, 60, 9);
        let expected = inst.optimum_by_dp();
        let p = Knapsack::new(inst);
        for coord in [
            Coordination::Sequential,
            Coordination::depth_bounded(3),
            Coordination::stack_stealing_chunked(),
            Coordination::budget(100),
        ] {
            let out = Skeleton::new(coord).workers(3).maximise(&p);
            assert_eq!(*out.try_score().unwrap(), expected, "{coord}");
        }
    }

    #[test]
    fn zero_capacity_means_empty_selection() {
        let inst = KnapsackInstance {
            profits: vec![5, 6],
            weights: vec![3, 4],
            capacity: 1,
        };
        let p = Knapsack::new(inst);
        let out = Skeleton::new(Coordination::Sequential).maximise(&p);
        assert_eq!(*out.try_score().unwrap(), 0);
        assert_eq!(out.try_node().unwrap().chosen, 0);
    }

    #[test]
    fn fractional_bound_is_admissible() {
        let inst = KnapsackInstance::generate(KnapsackClass::StronglyCorrelated, 14, 40, 5);
        let p = Knapsack::new(inst);

        fn best_in_subtree(p: &Knapsack, node: &KnapsackNode) -> u64 {
            let mut best = p.objective(node);
            for child in p.generator(node) {
                best = best.max(best_in_subtree(p, &child));
            }
            assert!(
                p.bound(node).unwrap() >= best,
                "bound {} below descendant profit {}",
                p.bound(node).unwrap(),
                best
            );
            best
        }

        let best = best_in_subtree(&p, &p.root());
        assert_eq!(best, p.instance().optimum_by_dp());
    }

    #[test]
    #[should_panic(expected = "at most 64 items")]
    fn more_than_64_items_is_rejected() {
        let inst = KnapsackInstance {
            profits: vec![1; 65],
            weights: vec![1; 65],
            capacity: 10,
        };
        let _ = Knapsack::new(inst);
    }
}
