//! The seven exact combinatorial search applications evaluated in the YewPar
//! paper (Section 5.1), each expressed as a Lazy Node Generator plus
//! objective/bound functions over the `yewpar` skeleton API:
//!
//! | Application | Search type | Module |
//! |---|---|---|
//! | Unbalanced Tree Search (UTS) | enumeration | [`uts`] |
//! | Numerical Semigroups (NS) | enumeration | [`semigroups`] |
//! | Maximum Clique | optimisation | [`maxclique`] |
//! | 0/1 Knapsack | optimisation | [`knapsack`] |
//! | Travelling Salesperson (TSP) | optimisation | [`tsp`] |
//! | Subgraph Isomorphism (SIP) | decision | [`sip`] |
//! | k-Clique | decision | [`kclique`] |
//!
//! In addition, [`irregular`] provides the synthetic *Irregular* tree used
//! as the canonical quick benchmark workload across the workspace.
//!
//! [`maxclique::baseline`] additionally provides the *hand-written*
//! specialised solvers (sequential and statically-split parallel) used as the
//! comparison point of the paper's Table 1 overhead experiment.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod irregular;
pub mod kclique;
pub mod knapsack;
pub mod maxclique;
pub mod semigroups;
pub mod sip;
pub mod tsp;
pub mod uts;
