//! Hand-written Maximum Clique solvers (the Table 1 comparison point).
//!
//! The paper compares YewPar against a search-specific C++ implementation
//! (sequential) and an OpenMP version that creates one task per depth-1 node
//! (parallel).  These are the equivalent hand-written Rust solvers: they use
//! the same branching rule and greedy-colouring bound as the skeleton-based
//! [`super::MaxClique`] application, but are specialised — recursion instead
//! of a generator stack, in-place candidate updates, no generic driver, no
//! metrics — so the difference in runtime against the skeleton measures the
//! *cost of generality* of the framework.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use yewpar::bitset::BitSet;
use yewpar_instances::Graph;

use super::greedy_colour;

/// Result of a hand-written clique search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueResult {
    /// Members of the best clique found.
    pub clique: Vec<usize>,
    /// Its size.
    pub size: u32,
    /// Number of search-tree nodes expanded.
    pub nodes: u64,
}

/// Specialised sequential branch-and-bound Maximum Clique solver.
pub fn sequential_max_clique(graph: &Graph) -> CliqueResult {
    let mut best = Vec::new();
    let mut best_size = 0u32;
    let mut nodes = 0u64;
    let mut current = Vec::new();
    let candidates = BitSet::full(graph.order());
    expand(
        graph,
        &mut current,
        &candidates,
        &mut best,
        &mut best_size,
        &mut nodes,
    );
    CliqueResult {
        clique: best,
        size: best_size,
        nodes,
    }
}

fn expand(
    graph: &Graph,
    current: &mut Vec<usize>,
    candidates: &BitSet,
    best: &mut Vec<usize>,
    best_size: &mut u32,
    nodes: &mut u64,
) {
    *nodes += 1;
    if current.len() as u32 > *best_size {
        *best_size = current.len() as u32;
        *best = current.clone();
    }
    if candidates.is_empty() {
        return;
    }
    let (order, colours) = greedy_colour(graph, candidates);
    let mut remaining = candidates.clone();
    for k in (0..order.len()).rev() {
        // Colour-bound cut: everything from position k downwards can add at
        // most colours[k] vertices.
        if current.len() as u32 + colours[k] <= *best_size {
            return;
        }
        let v = order[k] as usize;
        remaining.remove(v);
        let mut next = remaining.clone();
        next.intersect_with(graph.neighbours(v));
        current.push(v);
        expand(graph, current, &next, best, best_size, nodes);
        current.pop();
    }
}

/// Specialised parallel solver that statically splits the search at depth 1 —
/// one task per root branch, executed by a small thread pool — mirroring the
/// OpenMP `task`-per-depth-1-node comparison implementation in the paper.
pub fn parallel_max_clique_depth1(graph: &Graph, workers: usize) -> CliqueResult {
    let workers = workers.max(1);
    let all = BitSet::full(graph.order());
    let (order, _colours) = greedy_colour(graph, &all);

    // Build the depth-1 branches exactly as the sequential solver would
    // (reverse colouring order, shrinking candidate sets).
    let mut branches = Vec::new();
    let mut remaining = all;
    for k in (0..order.len()).rev() {
        let v = order[k] as usize;
        remaining.remove(v);
        let mut cands = remaining.clone();
        cands.intersect_with(graph.neighbours(v));
        branches.push((v, cands));
    }

    let best_size = AtomicU32::new(0);
    let best_clique: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let total_nodes = AtomicU32::new(0);
    let next_branch = AtomicU32::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut nodes = 0u64;
                loop {
                    // ordering: work-distribution ticket — only the RMW's
                    // atomicity matters; branches[] is read-only shared data.
                    let idx = next_branch.fetch_add(1, Ordering::Relaxed) as usize;
                    if idx >= branches.len() {
                        break;
                    }
                    let (v, cands) = &branches[idx];
                    let mut current = vec![*v];
                    par_expand(
                        graph,
                        &mut current,
                        cands,
                        &best_size,
                        &best_clique,
                        &mut nodes,
                    );
                }
                // ordering: node tally, read only after the scope joins.
                total_nodes.fetch_add(nodes as u32, Ordering::Relaxed);
            });
        }
    });

    let clique = best_clique.into_inner().unwrap();
    CliqueResult {
        size: clique.len() as u32,
        clique,
        // ordering: every contributing thread joined at scope exit above.
        nodes: total_nodes.load(Ordering::Relaxed) as u64,
    }
}

fn par_expand(
    graph: &Graph,
    current: &mut Vec<usize>,
    candidates: &BitSet,
    best_size: &AtomicU32,
    best_clique: &Mutex<Vec<usize>>,
    nodes: &mut u64,
) {
    *nodes += 1;
    let size = current.len() as u32;
    // ordering: incumbent bound — a stale read only weakens pruning or takes
    // the lock needlessly; the clique itself travels under the mutex and the
    // improvement is re-validated against the locked state.
    if size > best_size.load(Ordering::Relaxed) {
        let mut guard = best_clique.lock().unwrap();
        // Re-check under the lock: another worker may have improved first.
        if size > guard.len() as u32 {
            *guard = current.clone();
            // ordering: bound mirror updated under the lock; unlocked
            // readers may lag, which is sound for branch-and-bound.
            best_size.store(size, Ordering::Relaxed);
        }
    }
    if candidates.is_empty() {
        return;
    }
    let (order, colours) = greedy_colour(graph, candidates);
    let mut remaining = candidates.clone();
    for k in (0..order.len()).rev() {
        // ordering: pruning against a possibly-stale bound is sound — it
        // can only fail to prune, never cut a live branch.
        if current.len() as u32 + colours[k] <= best_size.load(Ordering::Relaxed) {
            return;
        }
        let v = order[k] as usize;
        remaining.remove(v);
        let mut next = remaining.clone();
        next.intersect_with(graph.neighbours(v));
        current.push(v);
        par_expand(graph, current, &next, best_size, best_clique, nodes);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxclique::MaxClique;
    use yewpar::{Coordination, Skeleton};
    use yewpar_instances::graph;

    #[test]
    fn sequential_baseline_matches_skeleton_on_random_graphs() {
        for seed in 0..5 {
            let g = graph::gnp(35, 0.5, seed);
            let base = sequential_max_clique(&g);
            let skel = Skeleton::new(Coordination::Sequential).maximise(&MaxClique::new(g.clone()));
            assert_eq!(base.size, *skel.try_score().unwrap(), "seed {seed}");
            assert!(g.is_clique(&base.clique));
        }
    }

    #[test]
    fn parallel_baseline_matches_sequential_baseline() {
        for seed in 10..14 {
            let g = graph::planted_clique(40, 0.4, 10, seed);
            let seq = sequential_max_clique(&g);
            let par = parallel_max_clique_depth1(&g, 3);
            assert_eq!(seq.size, par.size, "seed {seed}");
            assert!(g.is_clique(&par.clique));
        }
    }

    #[test]
    fn baseline_handles_trivial_graphs() {
        let empty = Graph::new(4);
        assert_eq!(sequential_max_clique(&empty).size, 1);
        assert_eq!(parallel_max_clique_depth1(&empty, 2).size, 1);
        let mut pair = Graph::new(2);
        pair.add_edge(0, 1);
        assert_eq!(sequential_max_clique(&pair).size, 2);
        assert_eq!(sequential_max_clique(&pair).clique.len(), 2);
    }

    #[test]
    fn baseline_explores_fewer_or_equal_nodes_than_unpruned_search() {
        // Sanity: node counts are recorded and bounded by total subsets.
        let g = graph::gnp(20, 0.5, 3);
        let res = sequential_max_clique(&g);
        assert!(res.nodes > 0);
        assert!(res.nodes < 1 << 20);
    }
}
