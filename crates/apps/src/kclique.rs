//! k-Clique (decision search): does the graph contain a clique of `k`
//! vertices?
//!
//! The decision variant of Maximum Clique used for the paper's Figure 4
//! scaling experiment.  It reuses the Maximum Clique Lazy Node Generator
//! unchanged — only the search type differs (the point of the skeleton
//! decomposition): the objective order is cut off at `k` and the search
//! short-circuits as soon as a clique of `k` vertices is witnessed.

use yewpar::{Decide, Optimise, PruneLevel, SearchProblem};
use yewpar_instances::Graph;

use crate::maxclique::{CliqueGen, CliqueNode, MaxClique};

/// The k-Clique decision problem.
#[derive(Debug, Clone)]
pub struct KClique {
    inner: MaxClique,
    k: u32,
}

impl KClique {
    /// Decide whether `graph` contains a clique of `k` vertices.
    pub fn new(graph: Graph, k: u32) -> Self {
        KClique {
            inner: MaxClique::new(graph),
            k,
        }
    }

    /// The decision bound `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.inner.graph()
    }

    /// Verify a witness clique.
    pub fn verify(&self, node: &CliqueNode) -> bool {
        node.size >= self.k && self.inner.verify(node)
    }
}

impl SearchProblem for KClique {
    type Node = CliqueNode;
    type Gen<'a> = CliqueGen<'a>;

    fn root(&self) -> CliqueNode {
        self.inner.root()
    }

    fn generator<'a>(&'a self, node: &CliqueNode) -> CliqueGen<'a> {
        self.inner.generator(node)
    }

    fn name(&self) -> &str {
        "kclique"
    }
}

impl Optimise for KClique {
    type Score = u32;

    fn objective(&self, node: &CliqueNode) -> u32 {
        // The paper's bounded order: clique sizes cut off at k.
        node.size.min(self.k)
    }

    fn bound(&self, node: &CliqueNode) -> Option<u32> {
        Some((node.size + node.bound).min(self.k))
    }

    fn prune_level(&self) -> PruneLevel {
        // Same argument as MaxClique: sibling bounds are non-increasing.
        PruneLevel::Siblings
    }
}

impl Decide for KClique {
    fn target(&self) -> u32 {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yewpar::{Coordination, Skeleton};
    use yewpar_instances::graph;

    #[test]
    fn planted_clique_yes_instance() {
        let g = graph::planted_clique(50, 0.3, 11, 21);
        let p = KClique::new(g, 11);
        let out = Skeleton::new(Coordination::Sequential).decide(&p);
        assert!(out.found(), "the planted 11-clique must be found");
        assert!(p.verify(out.witness.as_ref().unwrap()));
    }

    #[test]
    fn k_larger_than_clique_number_is_a_no_instance() {
        // A triangle-free-ish sparse graph cannot contain a 6-clique.
        let g = graph::gnp(30, 0.15, 5);
        let p = KClique::new(g, 6);
        let out = Skeleton::new(Coordination::Sequential).decide(&p);
        assert!(!out.found());
    }

    #[test]
    fn decision_agrees_across_all_skeletons() {
        let g = graph::planted_clique(45, 0.4, 10, 33);
        for k in [9, 10, 14] {
            let p = KClique::new(g.clone(), k);
            let seq = Skeleton::new(Coordination::Sequential).decide(&p).found();
            for coord in [
                Coordination::depth_bounded(2),
                Coordination::stack_stealing(),
                Coordination::budget(200),
            ] {
                let out = Skeleton::new(coord).workers(3).decide(&p);
                assert_eq!(out.found(), seq, "k={k}, {coord} disagrees with sequential");
                if let Some(w) = &out.witness {
                    assert!(p.verify(w));
                }
            }
        }
    }

    #[test]
    fn yes_instances_short_circuit_early() {
        let g = graph::planted_clique(60, 0.5, 14, 55);
        let p = KClique::new(g.clone(), 8);
        let yes = Skeleton::new(Coordination::Sequential).decide(&p);
        assert!(yes.found());
        // Deciding a small k must explore far fewer nodes than running the
        // full branch-and-bound optimisation (which has to prove optimality).
        let full =
            Skeleton::new(Coordination::Sequential).maximise(&crate::maxclique::MaxClique::new(g));
        assert!(
            yes.metrics.nodes() < full.metrics.nodes(),
            "decision should explore fewer nodes ({} vs {})",
            yes.metrics.nodes(),
            full.metrics.nodes()
        );
    }

    #[test]
    fn k_one_is_trivially_satisfied_by_any_nonempty_graph() {
        let p = KClique::new(Graph::new(3), 1);
        let out = Skeleton::new(Coordination::Sequential).decide(&p);
        assert!(out.found());
    }
}
