//! Numerical Semigroups (enumeration search).
//!
//! Counts the numerical semigroups of each genus up to a target genus by
//! exploring the semigroup tree (Fromentin & Hivert): the root is the full
//! semigroup ℕ (genus 0) and the children of a semigroup `S` are the
//! semigroups `S \ {g}` for every minimal generator `g` of `S` larger than
//! its Frobenius number.  Every numerical semigroup of genus `g` appears at
//! depth `g` exactly once, so counting nodes per depth counts semigroups per
//! genus.
//!
//! A semigroup is represented by a 64-bit membership mask of the elements
//! `0..=2·genus_max + 1` (sufficient because the Frobenius number of a genus
//! `g` semigroup is at most `2g − 1` and every minimal generator beyond the
//! Frobenius number is at most `2g + 1`), which keeps nodes `Copy`-cheap.

use yewpar::monoid::DepthHistogram;
use yewpar::{Enumerate, SearchProblem};

/// Known values of the number of numerical semigroups per genus
/// (OEIS A007323), used by tests and the benchmark harness.
pub const SEMIGROUPS_PER_GENUS: [u64; 16] = [
    1, 1, 2, 4, 7, 12, 23, 39, 67, 118, 204, 343, 592, 1001, 1693, 2857,
];

/// The numerical-semigroup counting problem up to a target genus.
#[derive(Debug, Clone)]
pub struct Semigroups {
    genus_max: u32,
    limit: u32,
}

/// A numerical semigroup of genus ≤ `genus_max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemigroupNode {
    /// Membership mask of the elements `0..limit` (elements ≥ limit are all
    /// members, by cofiniteness).
    pub members: u64,
    /// The Frobenius number (largest gap); -1 for ℕ itself.
    pub frobenius: i32,
    /// The genus (number of gaps) — also the node's depth in the tree.
    pub genus: u32,
}

impl Semigroups {
    /// Count semigroups of every genus up to `genus_max` (≤ 30, limited by
    /// the 64-bit membership mask).
    pub fn new(genus_max: u32) -> Self {
        assert!(
            genus_max <= 30,
            "the u64 membership mask supports genus at most 30"
        );
        Semigroups {
            genus_max,
            limit: 2 * genus_max + 2,
        }
    }

    /// The target genus.
    pub fn genus_max(&self) -> u32 {
        self.genus_max
    }

    /// Is `x` an element of the semigroup?  (Everything ≥ limit is.)
    fn contains(&self, node: &SemigroupNode, x: u32) -> bool {
        x >= self.limit || node.members & (1 << x) != 0
    }

    /// Is `x` a minimal generator of the semigroup?  (`x` is a member and is
    /// not the sum of two smaller positive members.)
    fn is_minimal_generator(&self, node: &SemigroupNode, x: u32) -> bool {
        if x == 0 || !self.contains(node, x) {
            return false;
        }
        for a in 1..x {
            if self.contains(node, a) && self.contains(node, x - a) {
                return false;
            }
        }
        true
    }

    /// The minimal generators of `node` that are larger than its Frobenius
    /// number (the children-defining set).  For genus `genus_max` nodes this
    /// is empty (the tree is cut off at the target genus).
    pub fn effective_generators(&self, node: &SemigroupNode) -> Vec<u32> {
        if node.genus >= self.genus_max {
            return Vec::new();
        }
        let lo = (node.frobenius + 1).max(1) as u32;
        (lo..self.limit)
            .filter(|&x| self.is_minimal_generator(node, x))
            .collect()
    }
}

/// Lazy node generator: remove one effective generator per child.
pub struct SemigroupGen {
    parent: SemigroupNode,
    generators: std::vec::IntoIter<u32>,
}

impl Iterator for SemigroupGen {
    type Item = SemigroupNode;

    fn next(&mut self) -> Option<SemigroupNode> {
        let g = self.generators.next()?;
        Some(SemigroupNode {
            members: self.parent.members & !(1 << g),
            frobenius: g as i32,
            genus: self.parent.genus + 1,
        })
    }
}

impl SearchProblem for Semigroups {
    type Node = SemigroupNode;
    type Gen<'a> = SemigroupGen;

    fn root(&self) -> SemigroupNode {
        SemigroupNode {
            members: if self.limit >= 64 {
                u64::MAX
            } else {
                (1u64 << self.limit) - 1
            },
            frobenius: -1,
            genus: 0,
        }
    }

    fn generator(&self, node: &SemigroupNode) -> SemigroupGen {
        SemigroupGen {
            parent: *node,
            generators: self.effective_generators(node).into_iter(),
        }
    }

    fn name(&self) -> &str {
        "numerical-semigroups"
    }
}

impl Enumerate for Semigroups {
    type Value = DepthHistogram;

    fn value(&self, node: &SemigroupNode) -> DepthHistogram {
        DepthHistogram::singleton(node.genus as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yewpar::{Coordination, Skeleton};

    #[test]
    fn root_is_the_natural_numbers() {
        let p = Semigroups::new(5);
        let root = p.root();
        assert_eq!(root.genus, 0);
        assert_eq!(root.frobenius, -1);
        assert!(p.contains(&root, 1) && p.contains(&root, 7));
        // The only minimal generator of ℕ is 1.
        assert_eq!(p.effective_generators(&root), vec![1]);
    }

    #[test]
    fn genus_one_semigroup_has_two_children() {
        let p = Semigroups::new(5);
        let root = p.root();
        let child = p.generator(&root).next().unwrap();
        assert_eq!(child.genus, 1);
        assert_eq!(child.frobenius, 1);
        assert!(!p.contains(&child, 1));
        // <2, 3> minus {1}: minimal generators above Frobenius 1 are 2 and 3.
        assert_eq!(p.effective_generators(&child), vec![2, 3]);
    }

    #[test]
    fn counts_match_oeis_a007323_up_to_genus_12() {
        let genus = 12;
        let p = Semigroups::new(genus);
        let out = Skeleton::new(Coordination::Sequential).enumerate(&p);
        for (g, &expected) in SEMIGROUPS_PER_GENUS
            .iter()
            .enumerate()
            .take(genus as usize + 1)
        {
            assert_eq!(out.value.count_at(g), expected, "wrong count at genus {g}");
        }
    }

    #[test]
    fn parallel_skeletons_agree_on_the_histogram() {
        let p = Semigroups::new(10);
        let expected = Skeleton::new(Coordination::Sequential).enumerate(&p).value;
        for coord in [
            Coordination::depth_bounded(3),
            Coordination::stack_stealing(),
            Coordination::budget(50),
        ] {
            let out = Skeleton::new(coord).workers(3).enumerate(&p);
            assert_eq!(out.value, expected, "{coord}");
        }
    }

    #[test]
    fn tree_is_narrow_near_the_root() {
        // The paper notes NS "initially has a narrow tree" (Section 5.5):
        // the root has a single child.
        let p = Semigroups::new(8);
        assert_eq!(p.generator(&p.root()).count(), 1);
    }

    #[test]
    #[should_panic(expected = "genus at most 30")]
    fn genus_beyond_mask_capacity_is_rejected() {
        let _ = Semigroups::new(31);
    }
}
