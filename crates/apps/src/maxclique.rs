//! Maximum Clique (optimisation search).
//!
//! This follows the state-of-the-art bitset branch-and-bound algorithm the
//! paper builds its Lazy Node Generator example around (Listing 1, after
//! McCreesh & Prosser's MCSa1): search-tree nodes carry the current clique, a
//! candidate set and a greedy-colouring bound; candidates are branched on in
//! reverse colouring order (highest colour class first), and a subtree is
//! pruned when `|clique| + colours(candidates)` cannot beat the incumbent.

use yewpar::bitset::BitSet;
use yewpar::{Optimise, PruneLevel, SearchProblem};
use yewpar_instances::Graph;

pub mod baseline;

/// A Maximum Clique search-tree node (the paper's `Node` struct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueNode {
    /// The vertices of the current clique.
    pub clique: BitSet,
    /// `clique.count()`, cached.
    pub size: u32,
    /// Vertices adjacent to every member of the clique (candidate extensions).
    pub candidates: BitSet,
    /// Greedy-colouring upper bound on how many candidates can still be added.
    pub bound: u32,
}

/// The Maximum Clique search problem over a graph.
#[derive(Debug, Clone)]
pub struct MaxClique {
    graph: Graph,
}

impl MaxClique {
    /// Build the problem for a graph (the graph is owned so nodes can be
    /// moved freely between worker threads).
    pub fn new(graph: Graph) -> Self {
        MaxClique { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Verify that a node's clique really is a clique of the graph.
    pub fn verify(&self, node: &CliqueNode) -> bool {
        let members = node.clique.to_vec();
        members.len() == node.size as usize && self.graph.is_clique(&members)
    }
}

/// Greedy colouring of the subgraph induced by `candidates`.
///
/// Returns `(order, colours)`: `order` lists the candidate vertices grouped
/// by colour class (class 1 first) and `colours[i]` is the number of colour
/// classes used for `order[0..=i]` — an upper bound on the clique size within
/// `{order[0], …, order[i]}`.  Branching iterates `order` in reverse, so the
/// last (highest-colour) vertex is tried first.
pub fn greedy_colour(graph: &Graph, candidates: &BitSet) -> (Vec<u32>, Vec<u32>) {
    let mut order = Vec::with_capacity(candidates.count());
    let mut colours = Vec::with_capacity(candidates.count());
    let mut uncoloured = candidates.clone();
    let mut colour = 0u32;
    while !uncoloured.is_empty() {
        colour += 1;
        let mut colourable = uncoloured.clone();
        while let Some(v) = colourable.pop_first() {
            uncoloured.remove(v);
            // No neighbour of v may share v's colour class.
            colourable.difference_with(graph.neighbours(v));
            order.push(v as u32);
            colours.push(colour);
        }
    }
    (order, colours)
}

/// The lazy node generator for Maximum Clique (the paper's `Gen` struct).
pub struct CliqueGen<'a> {
    problem: &'a MaxClique,
    parent_clique: BitSet,
    parent_size: u32,
    remaining: BitSet,
    order: Vec<u32>,
    colours: Vec<u32>,
    /// Index one past the next candidate to branch on (walks downwards).
    k: usize,
}

impl Iterator for CliqueGen<'_> {
    type Item = CliqueNode;

    fn next(&mut self) -> Option<CliqueNode> {
        if self.k == 0 {
            return None;
        }
        self.k -= 1;
        let v = self.order[self.k] as usize;
        self.remaining.remove(v);
        let mut clique = self.parent_clique.clone();
        clique.insert(v);
        let mut candidates = self.remaining.clone();
        candidates.intersect_with(self.problem.graph.neighbours(v));
        Some(CliqueNode {
            clique,
            size: self.parent_size + 1,
            candidates,
            // At most `colours[k] - 1` candidates can still be added: a clique
            // extending this child lives inside `{order[0..=k]}`, its members
            // have pairwise distinct colours, and v's own colour class is
            // excluded from the candidates — the classic MCSa1 bound, chosen
            // so the skeleton prunes exactly like the hand-written baseline.
            bound: self.colours[self.k] - 1,
        })
    }
}

impl SearchProblem for MaxClique {
    type Node = CliqueNode;
    type Gen<'a> = CliqueGen<'a>;

    fn root(&self) -> CliqueNode {
        let candidates = BitSet::full(self.graph.order());
        let (_, colours) = greedy_colour(&self.graph, &candidates);
        CliqueNode {
            clique: BitSet::new(self.graph.order()),
            size: 0,
            bound: colours.last().copied().unwrap_or(0),
            candidates,
        }
    }

    fn generator<'a>(&'a self, node: &CliqueNode) -> CliqueGen<'a> {
        let (order, colours) = greedy_colour(&self.graph, &node.candidates);
        let k = order.len();
        CliqueGen {
            problem: self,
            parent_clique: node.clique.clone(),
            parent_size: node.size,
            remaining: node.candidates.clone(),
            order,
            colours,
            k,
        }
    }

    fn name(&self) -> &str {
        "maxclique"
    }
}

impl Optimise for MaxClique {
    type Score = u32;

    fn objective(&self, node: &CliqueNode) -> u32 {
        node.size
    }

    fn bound(&self, node: &CliqueNode) -> Option<u32> {
        Some(node.size + node.bound)
    }

    fn prune_level(&self) -> PruneLevel {
        // The generator branches in reverse colouring order, so sibling
        // bounds are non-increasing: a failed bound also disposes of every
        // later sibling (the behaviour of the hand-written MCSa1 loop).
        PruneLevel::Siblings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yewpar::{Coordination, Skeleton};
    use yewpar_instances::graph;

    /// The 8-vertex graph of the paper's Figure 1 (vertices a..h = 0..7).
    pub(crate) fn figure1_graph() -> Graph {
        let mut g = Graph::new(8);
        // Maximum clique {a, d, f, g} = {0, 3, 5, 6}.
        let edges = [
            (0, 1), // a-b
            (0, 2), // a-c
            (0, 3), // a-d
            (0, 5), // a-f
            (0, 6), // a-g
            (0, 7), // a-h
            (1, 2), // b-c
            (1, 6), // b-g
            (2, 4), // c-e
            (3, 5), // d-f
            (3, 6), // d-g
            (4, 7), // e-h
            (5, 6), // f-g
            (5, 3), // f-d (dup, ignored)
        ];
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn greedy_colouring_is_a_proper_colouring() {
        let g = graph::gnp(30, 0.5, 42);
        let cands = BitSet::full(30);
        let (order, colours) = greedy_colour(&g, &cands);
        assert_eq!(order.len(), 30);
        // Vertices with the same colour must be pairwise non-adjacent.
        for i in 0..order.len() {
            for j in (i + 1)..order.len() {
                if colours[i] == colours[j] {
                    assert!(!g.has_edge(order[i] as usize, order[j] as usize));
                }
            }
        }
        // colours is non-decreasing.
        assert!(colours.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn figure1_maximum_clique_is_four() {
        let p = MaxClique::new(figure1_graph());
        let out = Skeleton::new(Coordination::Sequential).maximise(&p);
        assert_eq!(*out.try_score().unwrap(), 4);
        assert!(p.verify(out.try_node().unwrap()));
        // The unique maximum clique of Fig. 1 is {a, d, f, g}.
        assert_eq!(out.try_node().unwrap().clique.to_vec(), vec![0, 3, 5, 6]);
    }

    #[test]
    fn planted_clique_is_recovered() {
        let g = graph::planted_clique(45, 0.35, 12, 7);
        let p = MaxClique::new(g);
        let out = Skeleton::new(Coordination::Sequential).maximise(&p);
        assert!(
            *out.try_score().unwrap() >= 12,
            "planted clique of size 12 must be found, got {}",
            out.try_score().unwrap()
        );
        assert!(p.verify(out.try_node().unwrap()));
    }

    #[test]
    fn all_skeletons_agree_on_clique_number() {
        let g = graph::gnp(40, 0.6, 13);
        let p = MaxClique::new(g);
        let expected = *Skeleton::new(Coordination::Sequential)
            .maximise(&p)
            .try_score()
            .unwrap();
        for coord in [
            Coordination::depth_bounded(2),
            Coordination::stack_stealing_chunked(),
            Coordination::budget(500),
        ] {
            let out = Skeleton::new(coord).workers(3).maximise(&p);
            assert_eq!(
                *out.try_score().unwrap(),
                expected,
                "{coord} disagrees with sequential"
            );
            assert!(p.verify(out.try_node().unwrap()));
        }
    }

    #[test]
    fn pruning_reduces_explored_nodes() {
        let g = graph::gnp(35, 0.7, 21);
        let p = MaxClique::new(g);
        let out = Skeleton::new(Coordination::Sequential).maximise(&p);
        assert!(
            out.metrics.totals.prunes > 0,
            "dense graphs must trigger colour-bound pruning"
        );
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let p = MaxClique::new(Graph::new(1));
        let out = Skeleton::new(Coordination::Sequential).maximise(&p);
        assert_eq!(*out.try_score().unwrap(), 1);
        let p = MaxClique::new(Graph::new(3)); // edgeless: max clique is a single vertex
        let out = Skeleton::new(Coordination::Sequential).maximise(&p);
        assert_eq!(*out.try_score().unwrap(), 1);
    }

    /// Admissibility of the bound function (the pruning relation's condition
    /// 1 in §3.5): no descendant may beat its ancestor's bound.
    #[test]
    fn colour_bound_is_admissible() {
        let g = graph::gnp(25, 0.5, 99);
        let p = MaxClique::new(g);

        fn check(p: &MaxClique, node: &CliqueNode, best_below: &mut u32) -> u32 {
            // Returns the best objective in the subtree rooted at node.
            let mut best = p.objective(node);
            for child in p.generator(node) {
                best = best.max(check(p, &child, best_below));
            }
            assert!(
                p.bound(node).unwrap() >= best,
                "bound {} < best descendant {}",
                p.bound(node).unwrap(),
                best
            );
            *best_below = (*best_below).max(best);
            best
        }

        let mut best = 0;
        check(&p, &p.root(), &mut best);
        assert!(best >= 2);
    }
}
