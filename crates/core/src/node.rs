//! The Lazy Node Generator API (paper Section 4.1).
//!
//! The paper's `NodeGenerator<SearchSpace, Node>` interface exposes
//! `hasNext()` / `next()` over the children of a parent node, materialising
//! children lazily and in heuristic order.  The natural Rust rendering of
//! that interface is an [`Iterator`] whose items are search-tree nodes; the
//! [`SearchProblem`] trait bundles the search space, the root node and the
//! construction of a child iterator (the lazy node generator) for any node.

/// A search problem: a search space plus a lazy node generator.
///
/// Implementations describe *only* the shape of the search tree — which node
/// is the root and, for any node, an iterator over its children **in
/// heuristic order**.  They say nothing about how or when the tree is
/// traversed; that is the job of the search skeletons
/// ([`crate::Skeleton`]), mirroring the separation in the paper between Lazy
/// Node Generators and search coordinations.
///
/// Children must be yielded lazily: a generator should perform per-child
/// work inside `Iterator::next`, not up-front in [`generator`](Self::generator),
/// so that pruning a subtree avoids materialising the pruned children
/// (paper §4.1, advantages (1) and (2)).
pub trait SearchProblem: Send + Sync {
    /// A node of the search tree.  Nodes are owned values that are cheap to
    /// clone and can be moved between worker threads (they are what gets
    /// spawned into tasks and stolen between workers, and the incumbent of an
    /// optimisation search is shared by reference between workers).
    type Node: Clone + Send + Sync + 'static;

    /// The lazy node generator: an iterator over the children of a node, in
    /// the order in which they are to be traversed.
    type Gen<'a>: Iterator<Item = Self::Node> + 'a
    where
        Self: 'a;

    /// The root node of the search tree (the paper's `ϵ`).
    fn root(&self) -> Self::Node;

    /// Construct the lazy node generator for `node`.
    fn generator<'a>(&'a self, node: &Self::Node) -> Self::Gen<'a>;

    /// Optional human-readable name used by benchmark harnesses and metrics.
    fn name(&self) -> &str {
        "unnamed-search"
    }
}

/// Blanket implementation so `&P` can be passed wherever a problem is
/// expected (useful when sharing one problem across scoped worker threads).
impl<P: SearchProblem> SearchProblem for &P {
    type Node = P::Node;
    type Gen<'a>
        = P::Gen<'a>
    where
        Self: 'a;

    fn root(&self) -> Self::Node {
        (**self).root()
    }

    fn generator<'a>(&'a self, node: &Self::Node) -> Self::Gen<'a> {
        (**self).generator(node)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Count the nodes of the subtree rooted at `node` by exhaustive traversal.
///
/// This is a reference traversal used by tests and by instance
/// characterisation tools; it is intentionally simple (recursive, no
/// pruning, no parallelism).
pub fn subtree_size<P: SearchProblem>(problem: &P, node: &P::Node) -> u64 {
    let mut count = 1;
    for child in problem.generator(node) {
        count += subtree_size(problem, &child);
    }
    count
}

/// Compute the maximum depth of the subtree rooted at `node` (the root has
/// depth 0).
pub fn subtree_depth<P: SearchProblem>(problem: &P, node: &P::Node) -> usize {
    problem
        .generator(node)
        .map(|c| 1 + subtree_depth(problem, &c))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny fixed tree used across the core unit tests: nodes are small
    /// integers, the tree is
    ///
    /// ```text
    ///          0
    ///        / | \
    ///       1  2  3
    ///      / \     \
    ///     4   5     6
    /// ```
    pub(crate) struct TinyTree;

    impl SearchProblem for TinyTree {
        type Node = u32;
        type Gen<'a> = std::vec::IntoIter<u32>;

        fn root(&self) -> u32 {
            0
        }

        fn generator(&self, node: &u32) -> Self::Gen<'_> {
            match node {
                0 => vec![1, 2, 3],
                1 => vec![4, 5],
                3 => vec![6],
                _ => vec![],
            }
            .into_iter()
        }

        fn name(&self) -> &str {
            "tiny-tree"
        }
    }

    #[test]
    fn subtree_size_counts_all_nodes() {
        assert_eq!(subtree_size(&TinyTree, &0), 7);
        assert_eq!(subtree_size(&TinyTree, &1), 3);
        assert_eq!(subtree_size(&TinyTree, &4), 1);
    }

    #[test]
    fn subtree_depth_matches_structure() {
        assert_eq!(subtree_depth(&TinyTree, &0), 2);
        assert_eq!(subtree_depth(&TinyTree, &3), 1);
        assert_eq!(subtree_depth(&TinyTree, &6), 0);
    }

    #[test]
    fn reference_problem_delegates() {
        let t = TinyTree;
        let r = &t;
        assert_eq!(r.root(), 0);
        assert_eq!(r.name(), "tiny-tree");
        assert_eq!(subtree_size(&r, &0), 7);
    }
}
