//! Anytime-search lifecycle primitives: cancellation tokens, deadlines,
//! statuses and progress streaming.
//!
//! The paper's skeletons are one-shot batch calls, but real exact-search
//! deployments are *anytime*: branch-and-bound solvers routinely run under a
//! wall-clock limit and must surface the best incumbent found so far, and a
//! long-running service must be able to abort a search a user no longer
//! wants.  This module holds the pieces that make every coordination
//! interruptible:
//!
//! * [`CancelToken`] — a cloneable flag any thread can pull to stop a search
//!   from outside (the generalisation of PR 3's Ordered speculation
//!   cancellation to whole searches);
//! * [`SearchConfig::deadline`] — a wall-clock budget checked in the
//!   engine's per-step poll for **all five** coordinations;
//! * [`SearchStatus`] — how a search ended, reported on every outcome: a
//!   cancelled or timed-out optimisation still returns its partial
//!   incumbent, so callers always get the best answer the budget allowed;
//! * [`ProgressEvent`] — a bounded, lossy stream of incumbent updates and
//!   node-count heartbeats fed from the running drivers, exposed through
//!   [`SearchHandle::progress`].
//!
//! The engine-facing half (the crate-internal `Lifecycle` struct) bundles
//! the token, deadline and
//! progress sender and is polled once per traversal step (stride-gated so
//! the hot path stays a handful of arithmetic instructions).  A triggered
//! cancel or deadline raises the shared [`Termination`] stop flag with an
//! external [`StopCause`]; workers then unwind exactly like a decision
//! short-circuit — outstanding counters drain, pools purge, metrics are
//! still summed — but the outcome reports the honest status.
//!
//! [`SearchConfig::deadline`]: crate::params::SearchConfig::deadline
//! [`SearchHandle::progress`]: crate::runtime::SearchHandle::progress
//! [`Termination`]: crate::termination::Termination
//! [`StopCause`]: crate::termination::StopCause

use crate::sync::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, Sender, TrySendError};

use crate::termination::{StopCause, Termination};

/// How a search ended.  Attached to every outcome
/// ([`EnumOutcome::status`], [`OptimOutcome::status`],
/// [`DecideOutcome::status`]).
///
/// [`EnumOutcome::status`]: crate::skeleton::EnumOutcome::status
/// [`OptimOutcome::status`]: crate::skeleton::OptimOutcome::status
/// [`DecideOutcome::status`]: crate::skeleton::DecideOutcome::status
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchStatus {
    /// The search ran to its natural end: the tree was exhausted, or a
    /// decision target was witnessed and short-circuited the search.
    Complete,
    /// An external [`CancelToken`] was pulled mid-run.  Optimisation and
    /// decision outcomes carry the partial incumbent found so far.
    Cancelled,
    /// The configured deadline expired mid-run.  Optimisation and decision
    /// outcomes carry the partial incumbent found so far.
    DeadlineExceeded,
}

impl SearchStatus {
    /// True when the search ran to its natural end (its result is exact,
    /// not a partial anytime answer).
    pub fn is_complete(&self) -> bool {
        matches!(self, SearchStatus::Complete)
    }
}

impl std::fmt::Display for SearchStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchStatus::Complete => write!(f, "complete"),
            SearchStatus::Cancelled => write!(f, "cancelled"),
            SearchStatus::DeadlineExceeded => write!(f, "deadline-exceeded"),
        }
    }
}

/// One node of a cancellation tree: an own flag plus an optional parent
/// link.  A token is cancelled when its own flag — or any ancestor's — is
/// set, so cancelling a parent scope cancels every descendant without
/// bookkeeping a child list.
#[derive(Debug, Default)]
struct TokenNode {
    flag: AtomicBool,
    parent: Option<Arc<TokenNode>>,
}

impl TokenNode {
    fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        let mut ancestor = self.parent.as_deref();
        while let Some(node) = ancestor {
            if node.flag.load(Ordering::Acquire) {
                return true;
            }
            ancestor = node.parent.as_deref();
        }
        false
    }
}

/// A cloneable, *hierarchical* cancellation flag for stopping searches from
/// outside.
///
/// Every clone observes the same flag; pulling any clone makes every
/// coordination's workers exit at their next per-step poll, unwinding the
/// search cleanly (counters drained, pools purged, partial incumbent
/// returned with [`SearchStatus::Cancelled`]).  Cancellation is level-
/// triggered and permanent: a token cannot be re-armed, so a token attached
/// to a [`Skeleton`](crate::skeleton::Skeleton) must be fresh per search.
///
/// Tokens form a tree: [`child`](CancelToken::child) derives a token that is
/// cancelled whenever its parent (or any further ancestor) is, while
/// cancelling the child leaves the parent untouched.  This is how a service
/// cancels *a whole session* of searches at once — the
/// [`Runtime`](crate::runtime::Runtime) keeps a root token, each
/// [`Session`](crate::runtime::Session) scope is a child of it, and every
/// submitted search gets a leaf child of its session — without the leaf
/// tokens ever losing their single-search cancel.  Checking walks the
/// (short) ancestor chain, so the per-step poll stays a few atomic loads.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    node: Arc<TokenNode>,
}

impl CancelToken {
    /// A fresh, un-pulled root token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Derive a child token: cancelled when `self` (or any ancestor of it)
    /// is cancelled, while cancelling the child does not affect `self`.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            node: Arc::new(TokenNode {
                flag: AtomicBool::new(false),
                parent: Some(Arc::clone(&self.node)),
            }),
        }
    }

    /// Pull the token: every search it is attached to — and every search
    /// attached to a descendant token — stops at its next per-step poll.
    /// Idempotent.
    pub fn cancel(&self) {
        self.node.flag.store(true, Ordering::Release);
    }

    /// Has the token (or any ancestor scope) been pulled?
    pub fn is_cancelled(&self) -> bool {
        self.node.is_cancelled()
    }
}

/// One event on a search's progress stream (see
/// [`SearchHandle::progress`](crate::runtime::SearchHandle::progress)).
///
/// The stream is *bounded and lossy*: events that would overflow the
/// channel are dropped rather than ever blocking a search worker, so
/// consumers must treat it as a sampled view, not an exact log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressEvent {
    /// The shared incumbent of an optimisation/decision search improved.
    Incumbent {
        /// The incumbent's version counter after this update (monotone, but
        /// observed versions may skip when events are dropped).
        version: u64,
        /// The new best objective value, rendered with `Debug` (scores are
        /// generic, so the stream carries a display form rather than a
        /// type-erased value).
        score: String,
        /// Wall-clock time since the search started.
        elapsed: Duration,
    },
    /// Periodic node-count heartbeat (approximate: workers report in
    /// batches, so the count trails the true total by up to one batch per
    /// worker).
    Heartbeat {
        /// Approximate nodes processed so far across all workers.
        nodes: u64,
        /// Wall-clock time since the search started.
        elapsed: Duration,
    },
    /// Periodic snapshot of the owning [`Runtime`](crate::runtime::Runtime)'s
    /// pool-wide scheduler gauges, emitted on the same stride (and with the
    /// same bounded/lossy semantics) as
    /// [`Heartbeat`](ProgressEvent::Heartbeat).  Only present for runtime
    /// submissions — the blocking facade has no runtime to snapshot.
    Stats {
        /// The runtime's gauges at the heartbeat instant.
        stats: crate::metrics::RuntimeStats,
        /// Wall-clock time since the search started.
        elapsed: Duration,
    },
    /// The search finished; no further events follow.
    Finished {
        /// How the search ended.
        status: SearchStatus,
    },
}

/// The consuming half of a search's progress stream.
///
/// Wraps a bounded channel: [`try_next`](ProgressStream::try_next) never
/// blocks, [`next_timeout`](ProgressStream::next_timeout) waits at most the
/// given duration.  The stream ends (returns `None` forever) after the
/// [`ProgressEvent::Finished`] event has been consumed.  Heartbeats and
/// incumbent updates are lossy; the terminal `Finished` marker is not — it
/// travels through a dedicated slot, so a consumer that lagged the bounded
/// channel still receives it (after the buffered events drain).
pub struct ProgressStream {
    rx: Receiver<ProgressEvent>,
    terminal: Arc<Mutex<Option<SearchStatus>>>,
    /// The `Finished` event has been handed to the consumer (from either
    /// the channel or the terminal slot); never yield it twice.
    finished_seen: std::cell::Cell<bool>,
}

impl std::fmt::Debug for ProgressStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressStream(..)")
    }
}

impl ProgressStream {
    fn note(&self, event: Option<ProgressEvent>) -> Option<ProgressEvent> {
        if self.finished_seen.get() {
            // The stream is over; drop any duplicate terminal event.
            return match event {
                Some(ProgressEvent::Finished { .. }) | None => None,
                other => other,
            };
        }
        match event {
            Some(ProgressEvent::Finished { status }) => {
                self.finished_seen.set(true);
                Some(ProgressEvent::Finished { status })
            }
            Some(other) => Some(other),
            // Channel empty: fall back to the terminal slot.  The slot is
            // only written after every worker has stopped emitting, so the
            // buffered prefix has already been drained at this point.
            None => {
                let status = (*self.terminal.lock().expect("terminal slot")).take()?;
                self.finished_seen.set(true);
                Some(ProgressEvent::Finished { status })
            }
        }
    }

    /// Pop the next buffered event without blocking.
    pub fn try_next(&self) -> Option<ProgressEvent> {
        self.note(self.rx.try_recv().ok())
    }

    /// Wait up to `timeout` for the next event.
    pub fn next_timeout(&self, timeout: Duration) -> Option<ProgressEvent> {
        self.note(self.rx.recv_timeout(timeout).ok())
    }

    /// Drain every currently buffered event.
    pub fn drain(&self) -> Vec<ProgressEvent> {
        let mut events = Vec::new();
        while let Some(e) = self.try_next() {
            events.push(e);
        }
        events
    }
}

/// The producing half of a progress stream.  Cloneable (one per driver plus
/// one in the engine's lifecycle); all sends are non-blocking and drop the
/// event when the consumer lags — except the terminal
/// [`ProgressEvent::Finished`], which is additionally recorded in a slot
/// the stream falls back to, so the end-of-stream contract survives a full
/// channel.
#[derive(Clone)]
pub(crate) struct ProgressSender {
    tx: Sender<ProgressEvent>,
    terminal: Arc<Mutex<Option<SearchStatus>>>,
}

impl std::fmt::Debug for ProgressSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressSender(..)")
    }
}

impl ProgressSender {
    /// Best-effort send: never blocks, drops the event if the stream is
    /// full or the consumer is gone.  A [`ProgressEvent::Finished`] is
    /// also written to the guaranteed terminal slot.
    pub(crate) fn emit(&self, event: ProgressEvent) {
        if let ProgressEvent::Finished { status } = &event {
            *self.terminal.lock().expect("terminal slot") = Some(*status);
        }
        match self.tx.try_send(event) {
            Ok(()) | Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
        }
    }
}

/// Create a bounded progress channel of the given capacity.
pub(crate) fn progress_channel(capacity: usize) -> (ProgressSender, ProgressStream) {
    let (tx, rx) = crossbeam_channel::bounded(capacity.max(1));
    let terminal = Arc::new(Mutex::new(None));
    (
        ProgressSender {
            tx,
            terminal: Arc::clone(&terminal),
        },
        ProgressStream {
            rx,
            terminal,
            finished_seen: std::cell::Cell::new(false),
        },
    )
}

/// A closure snapshotting the owning runtime's
/// [`RuntimeStats`](crate::metrics::RuntimeStats), attached to runtime
/// submissions so heartbeats can carry [`ProgressEvent::Stats`] payloads.
/// Newtyped so [`Lifecycle`] keeps its `Debug` derive.
#[derive(Clone)]
pub(crate) struct StatsProbe(
    pub(crate) Arc<dyn Fn() -> crate::metrics::RuntimeStats + Send + Sync>,
);

impl std::fmt::Debug for StatsProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StatsProbe(..)")
    }
}

/// The engine-facing lifecycle of one search execution: the external stop
/// conditions to poll and the progress stream to feed.  Built once per
/// search by [`Skeleton`](crate::skeleton::Skeleton) and shared by
/// reference with every worker.
#[derive(Debug, Default)]
pub(crate) struct Lifecycle {
    /// External cancellation flag, if one was attached.
    pub(crate) cancel: Option<CancelToken>,
    /// Absolute wall-clock deadline, computed from
    /// [`SearchConfig::deadline`](crate::params::SearchConfig::deadline)
    /// when the search starts executing.
    pub(crate) deadline: Option<Instant>,
    /// Progress sink, if a consumer subscribed.
    pub(crate) progress: Option<ProgressSender>,
    /// Persistent worker pool to run on instead of spawning scoped threads
    /// (set by [`Runtime`](crate::runtime::Runtime) submissions).
    pub(crate) pool: Option<Arc<crate::runtime::WorkerPool>>,
    /// The worker allotment granted by the runtime's scheduler at dispatch
    /// time: the effective worker count, the leased pool-thread slots, the
    /// search id and the observed queue wait.  `None` for the plain blocking
    /// facade, whose worker count comes from the config instead.
    pub(crate) grant: Option<crate::runtime::ExecutionGrant>,
    /// Wall-clock start of the execution (heartbeat/incumbent timestamps).
    pub(crate) start: Option<Instant>,
    /// Approximate global node counter feeding heartbeat events.
    pub(crate) nodes_seen: AtomicU64,
    /// Flight-recorder switch: disabled (`Tracer::off`, the default) unless
    /// [`SearchConfig::trace`](crate::params::SearchConfig::trace) is set.
    /// Workers pull per-worker emission handles from it once at start-up.
    pub(crate) tracer: crate::trace::Tracer,
    /// Runtime-gauge snapshotter for [`ProgressEvent::Stats`] heartbeats;
    /// `None` for the blocking facade.
    pub(crate) stats_probe: Option<StatsProbe>,
}

/// Per-worker lifecycle state: a step counter plus the adaptive poll stride,
/// so the per-node cost of the anytime machinery is a decrement and a
/// branch.
///
/// The poll stride *adapts*: every poll that finds nothing doubles the
/// stride (up to [`Lifecycle::MAX_POLL_STRIDE`]), so a long quiet search
/// pays for `Instant::now` and the cancel-token walk once per ~512 nodes
/// instead of once per 64; a poll that observes a stop collapses the stride
/// back to [`Lifecycle::MIN_POLL_STRIDE`].  The first step always polls
/// (`until_poll` starts at zero), so an already-expired deadline or
/// pre-pulled token is observed before any real work happens.
#[derive(Debug, Default)]
pub(crate) struct LifecycleLocal {
    steps: u64,
    /// Steps remaining until the next external-stop poll.
    until_poll: u32,
    /// Current poll stride (doubles while quiet, collapses on a stop).
    stride: u32,
}

impl Lifecycle {
    /// Floor of the adaptive poll stride: the stride a worker restarts from
    /// after observing a stop, and the effective stride early in a task.
    pub(crate) const MIN_POLL_STRIDE: u32 = 16;
    /// Ceiling of the adaptive poll stride — the bounded staleness of the
    /// anytime machinery: an external cancel or an expired deadline is
    /// observed within at most this many traversal steps per worker.
    pub(crate) const MAX_POLL_STRIDE: u32 = 512;
    /// Traversal steps between heartbeat progress events (per worker).
    const HEARTBEAT_STRIDE: u64 = 8192;

    /// A lifecycle with no external conditions and no subscribers — the
    /// plain blocking `Skeleton` facade with no deadline configured.
    pub(crate) fn inert() -> Self {
        Lifecycle::default()
    }

    /// The effective worker count of this execution: the scheduler's grant
    /// for runtime submissions (worker counts are granted at dispatch, not
    /// config time), the configured count for the blocking facade.
    pub(crate) fn worker_count(&self, config: &crate::params::SearchConfig) -> usize {
        self.grant
            .as_ref()
            .map(|g| g.workers)
            .unwrap_or(config.workers)
            .max(1)
    }

    /// Upper bound on worker ids this execution can ever observe.  Fixed
    /// grants and the blocking facade never outgrow
    /// [`worker_count`](Lifecycle::worker_count); an *elastic* grant (one
    /// carrying a live lease core) can be grown by the dispatcher up to the
    /// whole pool plus the inline worker, so per-worker structures (work
    /// sources, steal channels, result slots) must be sized to the pool
    /// capacity, not the initial grant.
    pub(crate) fn worker_capacity(&self, config: &crate::params::SearchConfig) -> usize {
        match (&self.grant, &self.pool) {
            (Some(grant), Some(pool)) if grant.core.is_some() => {
                (pool.size() + 1).max(self.worker_count(config))
            }
            _ => self.worker_count(config),
        }
    }

    /// Try to claim a pending cooperative revocation for `worker`.  Returns
    /// `true` when the claim succeeded — the worker must then finish its
    /// current task, hand its local work back through
    /// `WorkSource::retire`, and call [`ack_retire`](Lifecycle::ack_retire)
    /// before exiting.  Worker 0 (the submitting thread's inline worker)
    /// never retires: it owns the result seam.  Always `false` for fixed
    /// grants.
    pub(crate) fn try_claim_retire(&self, worker: usize) -> bool {
        if worker == 0 {
            return false;
        }
        match self.grant.as_ref().and_then(|g| g.core.as_ref()) {
            Some(core) => core.try_claim_retire(),
            None => false,
        }
    }

    /// Acknowledge a claimed revocation: returns the worker's leased slot to
    /// the dispatcher and records the revocation latency.  Must only be
    /// called after a successful [`try_claim_retire`]
    /// (Lifecycle::try_claim_retire) and after the worker's local work has
    /// been rehomed.
    pub(crate) fn ack_retire(&self, worker: usize) {
        if let Some(core) = self.grant.as_ref().and_then(|g| g.core.as_ref()) {
            core.ack_retire(worker);
        }
    }

    /// Record the execution start and resolve the relative deadline.  Must
    /// be called once, when the search actually begins running (a queued
    /// runtime submission's budget starts when it leaves the queue).
    pub(crate) fn begin(&mut self, deadline: Option<Duration>) {
        let now = Instant::now();
        self.start = Some(now);
        if let Some(budget) = deadline {
            self.deadline = Some(now + budget);
        }
    }

    /// Check the external stop conditions, raising the termination stop
    /// flag with the matching cause if one has triggered.  Cheap enough to
    /// call between tasks; the per-step path goes through
    /// [`on_step`](Lifecycle::on_step) which stride-gates this.
    pub(crate) fn poll(&self, term: &Termination) {
        if term.short_circuited() {
            return;
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                term.stop_external(StopCause::Cancelled);
                return;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                term.stop_external(StopCause::Deadline);
            }
        }
    }

    /// Per-traversal-step hook: adaptively stride-gated external-stop poll
    /// plus heartbeat emission.  `local` is the calling worker's private
    /// state.  Returns `true` when this step actually polled, so the engine
    /// can piggyback its own stop checks (short-circuit propagation,
    /// coordination-specific cancellation) on the same gate instead of
    /// loading shared atomics on every node.
    #[inline]
    pub(crate) fn on_step(&self, local: &mut LifecycleLocal, term: &Termination) -> bool {
        local.steps = local.steps.wrapping_add(1);
        if local.steps % Self::HEARTBEAT_STRIDE == 0 {
            if let Some(progress) = &self.progress {
                // ordering: advisory progress tally; heartbeat consumers
                // tolerate skew and nothing is published through it.
                let nodes = self
                    .nodes_seen
                    .fetch_add(Self::HEARTBEAT_STRIDE, Ordering::Relaxed)
                    + Self::HEARTBEAT_STRIDE;
                progress.emit(ProgressEvent::Heartbeat {
                    nodes,
                    elapsed: self.elapsed(),
                });
                if let Some(probe) = &self.stats_probe {
                    progress.emit(ProgressEvent::Stats {
                        stats: (probe.0)(),
                        elapsed: self.elapsed(),
                    });
                }
            }
        }
        if local.until_poll > 0 {
            local.until_poll -= 1;
            return false;
        }
        self.poll(term);
        local.stride = if term.short_circuited() {
            Self::MIN_POLL_STRIDE
        } else {
            (local.stride * 2).clamp(Self::MIN_POLL_STRIDE, Self::MAX_POLL_STRIDE)
        };
        local.until_poll = local.stride;
        true
    }

    /// Announce the end of the search on the progress stream.
    pub(crate) fn finish(&self, status: SearchStatus) {
        if let Some(progress) = &self.progress {
            progress.emit(ProgressEvent::Finished { status });
        }
    }

    /// Wall-clock time since [`begin`](Lifecycle::begin) (zero if the
    /// lifecycle never began, e.g. in unit tests).
    pub(crate) fn elapsed(&self) -> Duration {
        self.start.map(|s| s.elapsed()).unwrap_or_default()
    }

    /// A clone of the progress sender for a driver to emit incumbent
    /// events through.
    pub(crate) fn progress_sender(&self) -> Option<ProgressSender> {
        self.progress.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn child_tokens_inherit_ancestor_cancellation() {
        let root = CancelToken::new();
        let session = root.child();
        let leaf_a = session.child();
        let leaf_b = session.child();
        let other_session = root.child();

        // Cancelling a leaf stays local.
        leaf_a.cancel();
        assert!(leaf_a.is_cancelled());
        assert!(!leaf_b.is_cancelled());
        assert!(!session.is_cancelled());
        assert!(!root.is_cancelled());

        // Cancelling the session scope reaches every child under it…
        session.cancel();
        assert!(leaf_b.is_cancelled());
        assert!(session.is_cancelled());
        // …but not siblings of the scope or the root.
        assert!(!other_session.is_cancelled());
        assert!(!root.is_cancelled());

        // Cancelling the root reaches everything.
        root.cancel();
        assert!(other_session.is_cancelled());
        assert!(
            other_session.child().is_cancelled(),
            "late-born children observe it too"
        );
    }

    #[test]
    fn poll_observes_a_cancelled_parent_scope() {
        use crate::termination::StopCause;
        let scope = CancelToken::new();
        let mut lc = Lifecycle {
            cancel: Some(scope.child()),
            ..Lifecycle::inert()
        };
        lc.begin(None);
        let term = Termination::new(1);
        lc.poll(&term);
        assert_eq!(term.stop_cause(), None);
        scope.cancel();
        lc.poll(&term);
        assert_eq!(term.stop_cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn poll_raises_the_matching_stop_cause() {
        use crate::termination::StopCause;
        // Cancel token.
        let token = CancelToken::new();
        let mut lc = Lifecycle {
            cancel: Some(token.clone()),
            ..Lifecycle::inert()
        };
        lc.begin(None);
        let term = Termination::new(1);
        lc.poll(&term);
        assert_eq!(term.stop_cause(), None);
        token.cancel();
        lc.poll(&term);
        assert_eq!(term.stop_cause(), Some(StopCause::Cancelled));

        // Expired deadline.
        let mut lc = Lifecycle::inert();
        lc.begin(Some(Duration::ZERO));
        let term = Termination::new(1);
        lc.poll(&term);
        assert_eq!(term.stop_cause(), Some(StopCause::Deadline));

        // Future deadline does not fire.
        let mut lc = Lifecycle::inert();
        lc.begin(Some(Duration::from_secs(3600)));
        let term = Termination::new(1);
        lc.poll(&term);
        assert_eq!(term.stop_cause(), None);
    }

    #[test]
    fn poll_never_overrides_an_existing_stop() {
        use crate::termination::StopCause;
        let mut lc = Lifecycle::inert();
        lc.begin(Some(Duration::ZERO));
        let term = Termination::new(1);
        term.short_circuit();
        lc.poll(&term);
        assert_eq!(term.stop_cause(), Some(StopCause::ShortCircuit));
    }

    #[test]
    fn progress_stream_is_bounded_and_lossy() {
        let (tx, rx) = progress_channel(2);
        for nodes in [1u64, 2, 3] {
            tx.emit(ProgressEvent::Heartbeat {
                nodes,
                elapsed: Duration::ZERO,
            });
        }
        // Capacity 2: the third emit was dropped, not blocked on.
        let drained = rx.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(
            drained[0],
            ProgressEvent::Heartbeat {
                nodes: 1,
                elapsed: Duration::ZERO
            }
        );
        assert!(rx.try_next().is_none());
        assert!(rx.next_timeout(Duration::from_millis(1)).is_none());
    }

    /// The terminal `Finished` marker must survive a full channel: it is
    /// delivered through the guaranteed slot once the buffered (lossy)
    /// prefix has drained — and exactly once.
    #[test]
    fn finished_event_survives_a_full_channel() {
        let (tx, rx) = progress_channel(2);
        for nodes in [1u64, 2, 3] {
            tx.emit(ProgressEvent::Heartbeat {
                nodes,
                elapsed: Duration::ZERO,
            });
        }
        // The channel is full: this emit's channel send is dropped, but the
        // terminal slot keeps it.
        tx.emit(ProgressEvent::Finished {
            status: SearchStatus::DeadlineExceeded,
        });
        let drained = rx.drain();
        assert_eq!(
            drained.len(),
            3,
            "two heartbeats, then the slot-backed Finished"
        );
        assert_eq!(
            drained[2],
            ProgressEvent::Finished {
                status: SearchStatus::DeadlineExceeded
            }
        );
        assert!(rx.try_next().is_none(), "Finished is yielded exactly once");
    }

    /// When the channel had room, the Finished event arrives through it —
    /// and the slot copy must not duplicate it.
    #[test]
    fn finished_event_is_not_duplicated_when_the_channel_had_room() {
        let (tx, rx) = progress_channel(8);
        tx.emit(ProgressEvent::Finished {
            status: SearchStatus::Complete,
        });
        assert_eq!(
            rx.try_next(),
            Some(ProgressEvent::Finished {
                status: SearchStatus::Complete
            })
        );
        assert!(rx.try_next().is_none());
        assert!(rx.next_timeout(Duration::from_millis(1)).is_none());
    }

    #[test]
    fn heartbeats_fire_on_the_stride() {
        let (tx, rx) = progress_channel(16);
        let mut lc = Lifecycle {
            progress: Some(tx),
            ..Lifecycle::inert()
        };
        lc.begin(None);
        let term = Termination::new(1);
        let mut local = LifecycleLocal::default();
        for _ in 0..(Lifecycle::HEARTBEAT_STRIDE * 2) {
            lc.on_step(&mut local, &term);
        }
        let events = rx.drain();
        assert_eq!(events.len(), 2, "one heartbeat per stride");
        match &events[1] {
            ProgressEvent::Heartbeat { nodes, .. } => {
                assert_eq!(*nodes, Lifecycle::HEARTBEAT_STRIDE * 2);
            }
            other => panic!("expected a heartbeat, got {other:?}"),
        }
    }

    /// With a stats probe attached, every heartbeat is followed by a
    /// `Stats` snapshot on the same lossy channel; without one (the plain
    /// facade, as in `heartbeats_fire_on_the_stride`) no `Stats` events
    /// appear at all.
    #[test]
    fn stats_heartbeats_piggyback_on_the_stride_when_probed() {
        use crate::metrics::RuntimeStats;
        let (tx, rx) = progress_channel(16);
        let mut lc = Lifecycle {
            progress: Some(tx),
            stats_probe: Some(StatsProbe(Arc::new(|| RuntimeStats {
                active_searches: 2,
                granted_workers: 4,
                ..RuntimeStats::default()
            }))),
            ..Lifecycle::inert()
        };
        lc.begin(None);
        let term = Termination::new(1);
        let mut local = LifecycleLocal::default();
        for _ in 0..(Lifecycle::HEARTBEAT_STRIDE * 2) {
            lc.on_step(&mut local, &term);
        }
        let events = rx.drain();
        assert_eq!(events.len(), 4, "heartbeat + stats per stride");
        match &events[1] {
            ProgressEvent::Stats { stats, .. } => {
                assert_eq!(stats.active_searches, 2);
                assert_eq!(stats.granted_workers, 4);
            }
            other => panic!("expected a stats snapshot, got {other:?}"),
        }
    }

    /// The first step of a worker must poll immediately: a pre-expired
    /// deadline or pre-pulled token is observed before any real work.
    #[test]
    fn the_first_step_polls_immediately() {
        use crate::termination::StopCause;
        let mut lc = Lifecycle::inert();
        lc.begin(Some(Duration::ZERO));
        let term = Termination::new(1);
        let mut local = LifecycleLocal::default();
        assert!(lc.on_step(&mut local, &term), "step 1 must poll");
        assert_eq!(term.stop_cause(), Some(StopCause::Deadline));
    }

    /// Bounded staleness of the adaptive stride: however far a quiet run has
    /// escalated the stride, a cancel pulled afterwards is observed within
    /// at most `MAX_POLL_STRIDE` further steps — and once observed, the
    /// stride collapses back to the floor.
    #[test]
    fn cancellation_staleness_is_bounded_by_the_max_stride() {
        let token = CancelToken::new();
        let mut lc = Lifecycle {
            cancel: Some(token.clone()),
            ..Lifecycle::inert()
        };
        lc.begin(None);
        let term = Termination::new(1);
        let mut local = LifecycleLocal::default();
        // A long quiet run escalates the stride to its ceiling.
        for _ in 0..10_000u32 {
            lc.on_step(&mut local, &term);
        }
        assert_eq!(term.stop_cause(), None);
        assert_eq!(local.stride, Lifecycle::MAX_POLL_STRIDE);
        token.cancel();
        let mut steps = 0u32;
        while !term.short_circuited() {
            lc.on_step(&mut local, &term);
            steps += 1;
            assert!(
                steps <= Lifecycle::MAX_POLL_STRIDE + 1,
                "cancel not observed within the stride ceiling"
            );
        }
        assert_eq!(local.stride, Lifecycle::MIN_POLL_STRIDE);
    }

    #[test]
    fn search_status_display_and_completeness() {
        assert!(SearchStatus::Complete.is_complete());
        assert!(!SearchStatus::Cancelled.is_complete());
        assert!(!SearchStatus::DeadlineExceeded.is_complete());
        assert_eq!(SearchStatus::Cancelled.to_string(), "cancelled");
        assert_eq!(
            SearchStatus::DeadlineExceeded.to_string(),
            "deadline-exceeded"
        );
    }
}
