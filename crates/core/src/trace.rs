//! Flight-recorder tracing: per-worker, lock-free bounded event rings.
//!
//! The paper's central diagnostic claim (§2.1) is that parallel-search
//! performance anomalies manifest as changes in *work*, not just scheduling
//! — but end-of-run aggregate counters ([`WorkerMetrics`]) can only say
//! *that* work inflated, never *when* or *why*.  This module records the
//! missing time axis: every worker appends timestamped [`TraceRecord`]s
//! (task boundaries, steal traffic, incumbent updates, speculation
//! outcomes, lifecycle polls) into its own bounded ring buffer, and the
//! dispatcher and gauge sampler append runtime-level events into a shared
//! control ring.  A drained trace can be exported (see [`sink`]), replayed
//! through the anomaly analyzer (see [`analyze`]), and — the property the
//! test suite pins down — *reconstructs the exact run-task
//! [`WorkerMetrics`] totals*, so events and counters never disagree.
//!
//! # Zero cost when off
//!
//! Tracing is switched by
//! [`SearchConfig::trace`](crate::params::SearchConfig::trace).  When off
//! (the default), [`Tracer::handle`] returns `None` and every emission
//! site is a branch on a worker-local `Option<&TraceHandle>` — no shared
//! state is touched, no timestamp is taken, and the branch is
//! loop-invariant so the optimiser hoists it out of the hot traversal
//! loop.  The `bench_trace` criterion group in `bench/benches/components.rs`
//! is the A/B proof, and the perf gate runs with tracing off so any
//! regression of the disabled path fails CI.
//!
//! # Overflow semantics
//!
//! Rings are bounded and **keep-first**: once a worker's ring is full,
//! further events are counted in [`TraceBuffer::dropped`] and discarded.
//! Dropped events are therefore *reported, never silent* — the analyzer
//! and the exporters surface the drop count, and the metrics-reconstruction
//! property only holds on a drop-free trace.
//!
//! [`WorkerMetrics`]: crate::metrics::WorkerMetrics

pub mod analyze;
pub mod sink;

use crate::sync::{AtomicU64, AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Worker id used for events that are not attributable to a search worker:
/// dispatcher transitions, gauge samples, driver-side incumbent updates and
/// speculation commit/discard classification.
pub const CONTROL_WORKER: u32 = u32::MAX;

/// Victim id recorded when the victim of a steal is not identifiable (the
/// sharded-pool coordinations steal from a shared pool, not a worker).
pub const UNKNOWN_VICTIM: u32 = u32::MAX;

/// One timestamped flight-recorder event.
///
/// `ts` is nanoseconds since the owning [`TraceBuffer`]'s epoch for
/// threaded runs, and **virtual ticks** for simulator traces
/// (`yewpar-sim` constructs records directly) — the analyzer only relies
/// on the ordering, so it runs identically on both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds since the trace epoch (threaded) or virtual ticks (sim).
    pub ts: u64,
    /// The emitting worker's id, or [`CONTROL_WORKER`] for runtime-level
    /// events.
    pub worker: u32,
    /// What happened.
    pub event: TraceEvent,
}

/// The event vocabulary of the flight recorder.
///
/// Task-boundary events carry the per-task *deltas* of the run-task
/// counters, so summing a drained trace reconstructs the exact
/// [`WorkerMetrics`](crate::metrics::WorkerMetrics) totals (steal counters
/// are reconstructed from the steal events, which fire at the exact
/// counter-increment sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A worker began executing a task popped/stolen from its work source.
    TaskStart {
        /// Depth of the task's root node in the search tree.
        depth: u32,
    },
    /// A worker finished (or abandoned) the task it was executing.  Fields
    /// are the counter deltas accumulated between the matching
    /// [`TaskStart`](TraceEvent::TaskStart) and this event.
    TaskEnd {
        /// Nodes processed by this task.
        nodes: u64,
        /// Subtrees pruned by this task.
        prunes: u64,
        /// Backtracks performed by this task.
        backtracks: u64,
        /// Tasks spawned into a workpool (or handed to a thief) by this task.
        spawns: u64,
        /// Non-empty batched releases performed by this task.
        batch_pushes: u64,
        /// Stride-gated lifecycle polls performed by this task.
        poll_checks: u64,
        /// Deepest depth the owning worker has reached so far (a running
        /// maximum, not a delta).
        max_depth: u64,
    },
    /// An idle worker sent (or began) a steal attempt against a victim.
    StealRequest {
        /// The chosen victim's worker id, or [`UNKNOWN_VICTIM`].
        victim: u32,
    },
    /// A steal attempt obtained work — fires exactly where the worker's
    /// `steals` counter increments.
    StealHit {
        /// The victim's worker id (simulator pool steals record the victim
        /// *locality* id), or [`UNKNOWN_VICTIM`].
        victim: u32,
        /// Number of tasks obtained.
        tasks: u32,
        /// True when the steal crossed localities (simulator only; the
        /// threaded engine is single-locality and always records `false`).
        remote: bool,
    },
    /// A steal attempt found no work — fires exactly where the worker's
    /// `failed_steals` counter increments.
    StealMiss {
        /// The probed victim's worker id, or [`UNKNOWN_VICTIM`].
        victim: u32,
    },
    /// A thief's remote steal was *routed*: the per-locality load gauges
    /// chose the least-loaded-but-nonempty remote locality (the victim
    /// within it stays blind-random, preserving the PR 6 anti-strip-mining
    /// invariant) — fires exactly where the worker's `routed_steals`
    /// counter increments.
    StealRouted {
        /// The routed-to locality id.
        locality: u32,
        /// The locality's queued-task gauge reading at decision time.
        load: u64,
    },
    /// A worker observed a starved remote locality and pushed a bounded
    /// batch of tasks into its mailbox instead of waiting to be found —
    /// fires exactly where the worker's `pushed_tasks` counter increments.
    WorkPushed {
        /// The destination locality id.
        locality: u32,
        /// Number of tasks pushed into the mailbox.
        tasks: u32,
    },
    /// A thief backed off from a remote locality after consecutive steal
    /// misses (capped exponential per (thief, locality)) — fires exactly
    /// where the worker's `backoff_naps` counter increments.
    StealBackoff {
        /// The locality being backed off from.
        locality: u32,
        /// The consecutive-miss count that triggered this nap.
        misses: u32,
    },
    /// An optimisation/decision driver strengthened the global incumbent.
    IncumbentUpdate {
        /// The incumbent's version counter after the update.
        version: u64,
    },
    /// Ordered coordination: a task's work was classified *committed* at
    /// commit time (it was sequentially at or before the witness).
    SpeculationCommit {
        /// Nodes the committed task had expanded.
        nodes: u64,
    },
    /// Ordered coordination: a task's work was classified *speculative* and
    /// discarded at commit time.
    SpeculationDiscard {
        /// Nodes the discarded task had expanded.
        nodes: u64,
    },
    /// Ordered coordination: an in-flight speculative task observed the
    /// broadcast witness and exited early.
    SpeculationCancel {
        /// Nodes the cancelled task had expanded before exiting.
        nodes: u64,
    },
    /// A stride-gated lifecycle poll actually ran (cancel-token + deadline
    /// check) — fires exactly where the worker's `poll_checks` counter
    /// increments, and doubles as the per-worker queue-depth sample.
    Poll {
        /// Depth of the worker's resumable generator stack at the poll.
        stack_depth: u32,
    },
    /// The runtime dispatcher received a search submission.
    SearchQueued {
        /// The submission's runtime-unique search id.
        search_id: u64,
    },
    /// The dispatcher granted a search its worker allotment and launched it.
    SearchGranted {
        /// The granted search's id.
        search_id: u64,
        /// The granted worker count.
        workers: u32,
    },
    /// A search finished and its lease was reclaimed.
    SearchFinished {
        /// The finished search's id.
        search_id: u64,
    },
    /// The dispatcher leased additional workers onto a running search
    /// (an elastic `Grow` adjustment was executed).
    GrantGrown {
        /// The grown search's id.
        search_id: u64,
        /// The search's worker count *after* the grow.
        workers: u32,
    },
    /// The dispatcher issued cooperative revocation requests against a
    /// running search (an elastic `Shrink` adjustment was executed).
    /// Workers leave asynchronously — see
    /// [`WorkerRevoked`](TraceEvent::WorkerRevoked) for the acknowledgement.
    GrantShrunk {
        /// The shrunk search's id.
        search_id: u64,
        /// The search's *target* worker count after the revocations land.
        workers: u32,
    },
    /// A revoked worker acknowledged at its lifecycle poll: it offloaded its
    /// remaining work to the survivors and returned its slot to the pool.
    WorkerRevoked {
        /// The search the worker left.
        search_id: u64,
        /// The pool slot returned to the dispatcher.
        slot: u32,
        /// Nanoseconds (virtual ticks in sim traces) from the revocation
        /// request to this acknowledgement.
        latency_ns: u64,
    },
    /// A background gauge sample of the runtime's pool-wide scheduler state
    /// (see [`RuntimeStats`](crate::metrics::RuntimeStats)).
    RuntimeGauge {
        /// Searches currently running.
        active: u32,
        /// Workers currently leased out.
        granted: u32,
        /// Submissions waiting for a grant.
        queued: u32,
        /// Searches finished since the runtime started.
        completed: u64,
        /// High-water mark of concurrently running searches.
        peak: u32,
    },
}

impl TraceEvent {
    /// Stable snake_case name of the variant, used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::TaskStart { .. } => "task_start",
            TraceEvent::TaskEnd { .. } => "task_end",
            TraceEvent::StealRequest { .. } => "steal_request",
            TraceEvent::StealHit { .. } => "steal_hit",
            TraceEvent::StealMiss { .. } => "steal_miss",
            TraceEvent::StealRouted { .. } => "steal_routed",
            TraceEvent::WorkPushed { .. } => "work_pushed",
            TraceEvent::StealBackoff { .. } => "steal_backoff",
            TraceEvent::IncumbentUpdate { .. } => "incumbent_update",
            TraceEvent::SpeculationCommit { .. } => "speculation_commit",
            TraceEvent::SpeculationDiscard { .. } => "speculation_discard",
            TraceEvent::SpeculationCancel { .. } => "speculation_cancel",
            TraceEvent::Poll { .. } => "poll",
            TraceEvent::SearchQueued { .. } => "search_queued",
            TraceEvent::SearchGranted { .. } => "search_granted",
            TraceEvent::SearchFinished { .. } => "search_finished",
            TraceEvent::GrantGrown { .. } => "grant_grown",
            TraceEvent::GrantShrunk { .. } => "grant_shrunk",
            TraceEvent::WorkerRevoked { .. } => "worker_revoked",
            TraceEvent::RuntimeGauge { .. } => "runtime_gauge",
        }
    }
}

/// A bounded, keep-first ring of trace records owned by one worker.
///
/// The writer claims a slot with a relaxed `fetch_add` and writes it
/// unsynchronised; overshooting claims only bump the drop counter.  The
/// claim protocol keeps the structure sound even under accidental
/// multi-producer use, but the intended discipline is **one producer**
/// (the owning worker) and **drain only at quiescence** — after the search
/// has joined its workers — which is what [`TraceBuffer::drain`]
/// documents and the engine guarantees.
struct WorkerRing {
    slots: Box<[UnsafeCell<MaybeUninit<TraceRecord>>]>,
    /// Claimed slot count; may overshoot `slots.len()` (the overshoot is
    /// the drop count's source of truth at drain time).
    len: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots are only written through claims below capacity (each claim
// index is handed out exactly once by `fetch_add`), and only read by
// `drain`, which the owner calls after every producer has quiesced.
unsafe impl Send for WorkerRing {}
unsafe impl Sync for WorkerRing {}

impl WorkerRing {
    fn new(capacity: usize) -> Self {
        WorkerRing {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    #[inline]
    fn push(&self, record: TraceRecord) {
        // ordering: only the RMW's atomicity matters for the claim — record
        // visibility to readers comes from producer quiescence (join/park)
        // before drain (model-checked: models/trace_ring.rs, whose
        // DrainWithoutQuiescence mutation shows torn reads otherwise).
        let claim = self.len.fetch_add(1, Ordering::Relaxed);
        if claim < self.slots.len() {
            // SAFETY: `claim` was handed out exactly once, so no other
            // writer touches this slot; readers wait for quiescence.
            unsafe { (*self.slots[claim].get()).write(record) };
        } else {
            // ordering: advisory loss tally, monotone per the model's
            // dropped-counter invariant; readers tolerate staleness.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copy out the recorded prefix and reset the ring.  Caller must
    /// guarantee the producer has quiesced.
    fn drain(&self) -> Vec<TraceRecord> {
        let filled = self.len.load(Ordering::Acquire).min(self.slots.len());
        let records = (0..filled)
            // SAFETY: every slot below `filled` was fully written by the
            // (now quiescent) producer before we loaded `len`.
            .map(|i| unsafe { (*self.slots[i].get()).assume_init() })
            .collect();
        self.len.store(0, Ordering::Release);
        records
    }
}

/// Runtime-level (non-worker) event ring: a plain bounded `Vec` behind a
/// mutex — dispatcher transitions and gauge samples are rare, so lock cost
/// is irrelevant here, and the bound keeps a long-lived runtime's trace
/// from growing without limit.  Keep-first, drops counted.
#[derive(Default)]
struct ControlRing {
    records: Vec<TraceRecord>,
    dropped: u64,
}

/// The shared store of one execution's flight-recorder data: lazily
/// registered per-worker rings plus the runtime-level control ring, all
/// sharing one wall-clock epoch.
///
/// Created by [`Skeleton`](crate::skeleton::Skeleton) when
/// [`SearchConfig::trace`](crate::params::SearchConfig::trace) is set (or
/// by a [`Runtime`](crate::runtime::Runtime) configured with
/// [`RuntimeConfig::trace`](crate::runtime::RuntimeConfig::trace)) and
/// drained after the search completes.
pub struct TraceBuffer {
    capacity: usize,
    epoch: Instant,
    /// `(worker id, ring)` pairs in registration order.
    rings: Mutex<Vec<(u32, Arc<WorkerRing>)>>,
    control: Mutex<ControlRing>,
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("capacity", &self.capacity)
            .field("workers", &self.rings.lock().expect("trace rings").len())
            .finish()
    }
}

impl TraceBuffer {
    /// Default per-worker ring capacity (records): deep enough for the
    /// poll-gated event rate of multi-second searches, small enough
    /// (~1.5 MB per worker) to leave on for whole benchmark runs.
    pub const DEFAULT_CAPACITY: usize = 1 << 15;

    /// Create a buffer whose per-worker rings hold `capacity` records each.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            capacity: capacity.max(1),
            epoch: Instant::now(),
            rings: Mutex::new(Vec::new()),
            control: Mutex::new(ControlRing::default()),
        }
    }

    /// The per-worker ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Register (or look up) worker `worker`'s ring.
    fn ring(&self, worker: u32) -> Arc<WorkerRing> {
        let mut rings = self.rings.lock().expect("trace rings");
        if let Some((_, ring)) = rings.iter().find(|(w, _)| *w == worker) {
            return Arc::clone(ring);
        }
        let ring = Arc::new(WorkerRing::new(self.capacity));
        rings.push((worker, Arc::clone(&ring)));
        ring
    }

    /// Append a runtime-level event to the control ring, stamped with the
    /// buffer's epoch clock and [`CONTROL_WORKER`].
    pub fn control(&self, event: TraceEvent) {
        let ts = self.epoch.elapsed().as_nanos() as u64;
        let mut control = self.control.lock().expect("trace control ring");
        if control.records.len() < self.capacity {
            control.records.push(TraceRecord {
                ts,
                worker: CONTROL_WORKER,
                event,
            });
        } else {
            control.dropped += 1;
        }
    }

    /// Drain every ring into one stream sorted by timestamp (ties broken by
    /// worker id), resetting the rings for reuse.
    ///
    /// Must only be called at **quiescence** — after the search's workers
    /// have been joined (the engine joins before the skeleton returns, so
    /// draining between searches is always safe).
    pub fn drain(&self) -> Vec<TraceRecord> {
        let rings = self.rings.lock().expect("trace rings");
        let mut all: Vec<TraceRecord> = Vec::new();
        for (_, ring) in rings.iter() {
            all.extend(ring.drain());
        }
        drop(rings);
        let mut control = self.control.lock().expect("trace control ring");
        all.append(&mut control.records);
        drop(control);
        all.sort_by_key(|r| (r.ts, r.worker));
        all
    }

    /// Total events dropped to ring overflow so far (worker rings plus the
    /// control ring).  Not reset by [`drain`](TraceBuffer::drain): a
    /// non-zero value permanently marks the trace as lossy.
    pub fn dropped(&self) -> u64 {
        let rings = self.rings.lock().expect("trace rings");
        let mut dropped: u64 = rings
            .iter()
            .map(|(_, ring)| {
                // ordering: advisory loss estimate — both counters are
                // monotone, so a stale read only under-reports a total
                // that the next call catches up on.
                let extra = ring
                    .len
                    .load(Ordering::Relaxed)
                    .saturating_sub(ring.slots.len());
                // ordering: advisory monotone read, as above.
                ring.dropped.load(Ordering::Relaxed).max(extra as u64)
            })
            .sum();
        drop(rings);
        dropped += self.control.lock().expect("trace control ring").dropped;
        dropped
    }
}

/// The engine-facing switch: `Some(buffer)` when tracing is on, `None`
/// when off.  Cloned into lifecycles, drivers and work sources; the
/// disabled clone is a single `None` and costs nothing to carry.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buffer: Option<Arc<TraceBuffer>>,
}

impl Tracer {
    /// A tracer recording into `buffer`.
    pub fn new(buffer: Arc<TraceBuffer>) -> Self {
        Tracer {
            buffer: Some(buffer),
        }
    }

    /// The disabled tracer (what [`Default`] builds).
    pub fn off() -> Self {
        Tracer::default()
    }

    /// Is tracing on?
    pub fn enabled(&self) -> bool {
        self.buffer.is_some()
    }

    /// A per-worker emission handle, or `None` when tracing is off.  The
    /// engine hoists this call out of the worker loop, so the per-event
    /// cost of disabled tracing is one branch on a worker-local `Option`.
    pub fn handle(&self, worker: u32) -> Option<TraceHandle> {
        self.buffer.as_ref().map(|buffer| TraceHandle {
            ring: buffer.ring(worker),
            epoch: buffer.epoch,
            worker,
        })
    }

    /// Emit a runtime-level event (no-op when off).
    pub fn control(&self, event: TraceEvent) {
        if let Some(buffer) = &self.buffer {
            buffer.control(event);
        }
    }

    /// The underlying buffer, if tracing is on.
    pub fn buffer(&self) -> Option<&Arc<TraceBuffer>> {
        self.buffer.as_ref()
    }
}

/// One worker's emission handle: an owned reference to the worker's ring
/// plus the shared epoch.  [`emit`](TraceHandle::emit) is wait-free — a
/// monotonic-clock read, a relaxed `fetch_add` and one 40-byte store.
pub struct TraceHandle {
    ring: Arc<WorkerRing>,
    epoch: Instant,
    worker: u32,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("worker", &self.worker)
            .finish()
    }
}

impl TraceHandle {
    /// Record `event` now, against this handle's worker id.
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        self.ring.push(TraceRecord {
            ts: self.epoch.elapsed().as_nanos() as u64,
            worker: self.worker,
            event,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_hands_out_no_handles() {
        let tracer = Tracer::off();
        assert!(!tracer.enabled());
        assert!(tracer.handle(0).is_none());
        tracer.control(TraceEvent::SearchQueued { search_id: 1 }); // no-op
    }

    #[test]
    fn events_are_recorded_with_monotone_timestamps_per_worker() {
        let buffer = Arc::new(TraceBuffer::new(64));
        let tracer = Tracer::new(Arc::clone(&buffer));
        let handle = tracer.handle(3).expect("tracing is on");
        handle.emit(TraceEvent::TaskStart { depth: 0 });
        handle.emit(TraceEvent::Poll { stack_depth: 2 });
        handle.emit(TraceEvent::TaskEnd {
            nodes: 5,
            prunes: 1,
            backtracks: 2,
            spawns: 0,
            batch_pushes: 0,
            poll_checks: 1,
            max_depth: 4,
        });
        let records = buffer.drain();
        assert_eq!(records.len(), 3);
        assert!(records.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(records.iter().all(|r| r.worker == 3));
        assert_eq!(records[0].event, TraceEvent::TaskStart { depth: 0 });
        assert_eq!(buffer.dropped(), 0);
    }

    #[test]
    fn overflow_keeps_first_events_and_reports_drops() {
        let buffer = Arc::new(TraceBuffer::new(4));
        let tracer = Tracer::new(Arc::clone(&buffer));
        let handle = tracer.handle(0).expect("tracing is on");
        for depth in 0..10u32 {
            handle.emit(TraceEvent::TaskStart { depth });
        }
        assert_eq!(buffer.dropped(), 6, "drops are counted, never silent");
        let records = buffer.drain();
        assert_eq!(records.len(), 4, "keep-first: the oldest events survive");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.event, TraceEvent::TaskStart { depth: i as u32 });
        }
        // The drop count survives the drain — the trace stays marked lossy.
        assert_eq!(buffer.dropped(), 6);
    }

    #[test]
    fn control_ring_is_bounded_too() {
        let buffer = TraceBuffer::new(2);
        for id in 0..5u64 {
            buffer.control(TraceEvent::SearchQueued { search_id: id });
        }
        assert_eq!(buffer.dropped(), 3);
        assert_eq!(buffer.drain().len(), 2);
    }

    #[test]
    fn drain_merges_workers_in_time_order() {
        let buffer = Arc::new(TraceBuffer::new(16));
        let tracer = Tracer::new(Arc::clone(&buffer));
        let a = tracer.handle(0).expect("on");
        let b = tracer.handle(1).expect("on");
        a.emit(TraceEvent::TaskStart { depth: 0 });
        b.emit(TraceEvent::TaskStart { depth: 1 });
        a.emit(TraceEvent::TaskEnd {
            nodes: 1,
            prunes: 0,
            backtracks: 0,
            spawns: 0,
            batch_pushes: 0,
            poll_checks: 0,
            max_depth: 0,
        });
        tracer.control(TraceEvent::SearchFinished { search_id: 7 });
        let records = buffer.drain();
        assert_eq!(records.len(), 4);
        assert!(records.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Rings reset on drain: the buffer is reusable for the next search.
        assert!(buffer.drain().is_empty());
    }

    #[test]
    fn concurrent_emission_is_sound_and_lossless_below_capacity() {
        let buffer = Arc::new(TraceBuffer::new(4096));
        let tracer = Tracer::new(Arc::clone(&buffer));
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let handle = tracer.handle(w).expect("on");
                scope.spawn(move || {
                    for i in 0..512u32 {
                        handle.emit(TraceEvent::Poll { stack_depth: i });
                    }
                });
            }
        });
        assert_eq!(buffer.dropped(), 0);
        let records = buffer.drain();
        assert_eq!(records.len(), 4 * 512);
        for w in 0..4u32 {
            assert_eq!(records.iter().filter(|r| r.worker == w).count(), 512);
        }
    }
}
