//! Distributed termination detection and global short-circuiting.
//!
//! The parallel coordinations need to know when the whole search has
//! finished: the search is complete when every spawned task has been fully
//! explored and no worker holds work (the semantics' final configuration
//! `⟨σ, [], ⊥, …, ⊥⟩`).  [`Termination`] implements this with a single
//! outstanding-task counter: the counter is incremented *before* a task
//! becomes visible to other workers (pushed to a pool or handed to a thief)
//! and decremented when the task's subtree has been fully explored, so it
//! can only reach zero once no task exists anywhere in the system.
//!
//! Decision searches additionally short-circuit: the first worker to witness
//! the target sets a global stop flag (the (shortcircuit) rule) that all
//! loops poll.
//!
//! Since the anytime-search lifecycle redesign the stop flag also carries a
//! *cause*: a search can stop because a decision target was witnessed (the
//! classic short-circuit), because an external [`CancelToken`] was pulled, or
//! because a [`SearchConfig::deadline`] expired.  All three unwind through
//! the same stop-flag machinery (workers exit their loops, queued tasks are
//! drained), but the cause survives so the outcome can report an honest
//! [`SearchStatus`].
//!
//! [`CancelToken`]: crate::lifecycle::CancelToken
//! [`SearchConfig::deadline`]: crate::params::SearchConfig::deadline
//! [`SearchStatus`]: crate::lifecycle::SearchStatus

use crate::sync::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// Why a search's global stop flag was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// A decision target was witnessed (the (shortcircuit) rule) — the
    /// search finished *meaningfully*, it did not fail to complete.
    ShortCircuit,
    /// An external [`CancelToken`](crate::lifecycle::CancelToken) was pulled.
    Cancelled,
    /// The configured wall-clock deadline expired.
    Deadline,
}

/// Shared termination state for one skeleton execution.
#[derive(Debug, Default)]
pub struct Termination {
    outstanding: AtomicU64,
    done: AtomicBool,
    stop: AtomicBool,
    /// 0 = no cause recorded; 1/2/3 = the `StopCause` variants in order.
    /// First writer wins: a deadline firing a microsecond after a genuine
    /// short-circuit must not masquerade the completed search as timed out.
    cause: AtomicU8,
}

impl Termination {
    /// Create termination state with `initial` outstanding tasks.
    pub fn new(initial: u64) -> Self {
        Termination {
            outstanding: AtomicU64::new(initial),
            done: AtomicBool::new(initial == 0),
            stop: AtomicBool::new(false),
            cause: AtomicU8::new(0),
        }
    }

    /// Register `n` newly spawned tasks.  Must be called before the tasks
    /// become visible to any other worker.
    pub fn task_spawned(&self, n: u64) {
        if n > 0 {
            self.outstanding.fetch_add(n, Ordering::AcqRel);
        }
    }

    /// Register the completion of one task.  Returns `true` if this was the
    /// last outstanding task (the caller observed global completion).
    pub fn task_completed(&self) -> bool {
        let prev = self.outstanding.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "task_completed called with no outstanding task");
        if prev == 1 {
            self.done.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Register the disposal of `n` tasks that were spawned but will never
    /// run — a workpool purge or a post-short-circuit clear.  Every spawned
    /// task must be accounted exactly once, either by [`task_completed`]
    /// (after running) or here (when discarded), otherwise the outstanding
    /// counter never drains and [`all_done`] stays false forever.
    ///
    /// [`task_completed`]: Termination::task_completed
    /// [`all_done`]: Termination::all_done
    pub fn tasks_discarded(&self, n: u64) {
        if n == 0 {
            return;
        }
        let prev = self.outstanding.fetch_sub(n, Ordering::AcqRel);
        debug_assert!(
            prev >= n,
            "tasks_discarded({n}) with only {prev} outstanding tasks"
        );
        if prev == n {
            self.done.store(true, Ordering::Release);
        }
    }

    /// Number of outstanding (spawned but not yet completed) tasks.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Acquire)
    }

    /// True once every task has completed.
    pub fn all_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Request a global short-circuit (decision target found).
    pub fn short_circuit(&self) {
        self.stop_with(StopCause::ShortCircuit);
    }

    /// Raise the stop flag for an *external* reason — a pulled cancel token
    /// or an expired deadline.  Unwinds exactly like a short-circuit (every
    /// loop polls the same flag) but records the cause so the outcome's
    /// status can distinguish "found the answer" from "gave up".
    pub fn stop_external(&self, cause: StopCause) {
        self.stop_with(cause);
    }

    fn stop_with(&self, cause: StopCause) {
        let code = match cause {
            StopCause::ShortCircuit => 1,
            StopCause::Cancelled => 2,
            StopCause::Deadline => 3,
        };
        // Record the cause before raising the flag so any reader that
        // observes `stop` also observes a cause; first cause wins.
        let _ = self
            .cause
            .compare_exchange(0, code, Ordering::AcqRel, Ordering::Acquire);
        self.stop.store(true, Ordering::Release);
    }

    /// Why the stop flag was raised, if it was.
    pub fn stop_cause(&self) -> Option<StopCause> {
        if !self.stop.load(Ordering::Acquire) {
            return None;
        }
        match self.cause.load(Ordering::Acquire) {
            2 => Some(StopCause::Cancelled),
            3 => Some(StopCause::Deadline),
            // 0 can only be observed in the sliver between a racing
            // `compare_exchange` and `store`; classify it as the benign
            // default rather than inventing an external stop.
            _ => Some(StopCause::ShortCircuit),
        }
    }

    /// True if the stop flag was raised for an external reason (cancel token
    /// or deadline) rather than a decision short-circuit.  Workers use this
    /// to report a cancelled task flow instead of a witness-bearing
    /// short-circuit flow when they unwind.
    pub fn stopped_externally(&self) -> bool {
        matches!(
            self.stop_cause(),
            Some(StopCause::Cancelled) | Some(StopCause::Deadline)
        )
    }

    /// True if a short-circuit (or external stop) has been requested.
    pub fn short_circuited(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// True if workers should stop looking for work, either because the
    /// search completed or because it was short-circuited.
    pub fn finished(&self) -> bool {
        self.all_done() || self.short_circuited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_initial_tasks_is_immediately_done() {
        let t = Termination::new(0);
        assert!(t.all_done());
        assert!(t.finished());
    }

    #[test]
    fn completion_of_last_task_sets_done() {
        let t = Termination::new(1);
        assert!(!t.all_done());
        t.task_spawned(2);
        assert_eq!(t.outstanding(), 3);
        assert!(!t.task_completed());
        assert!(!t.task_completed());
        assert!(t.task_completed());
        assert!(t.all_done());
    }

    #[test]
    fn short_circuit_finishes_without_draining() {
        let t = Termination::new(5);
        assert!(!t.finished());
        t.short_circuit();
        assert!(t.short_circuited());
        assert!(t.finished());
        assert!(!t.all_done());
    }

    #[test]
    fn spawning_zero_tasks_is_a_noop() {
        let t = Termination::new(1);
        t.task_spawned(0);
        assert_eq!(t.outstanding(), 1);
    }

    #[test]
    fn discarding_tasks_drains_like_completing_them() {
        let t = Termination::new(1);
        t.task_spawned(4);
        assert_eq!(t.outstanding(), 5);
        t.tasks_discarded(0);
        assert_eq!(t.outstanding(), 5, "discarding zero tasks is a no-op");
        t.tasks_discarded(3);
        assert_eq!(t.outstanding(), 2);
        assert!(!t.all_done());
        assert!(!t.task_completed());
        t.tasks_discarded(1);
        assert!(t.all_done(), "the last discard must set done");
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn stop_cause_is_first_writer_wins() {
        let t = Termination::new(1);
        assert_eq!(t.stop_cause(), None);
        assert!(!t.stopped_externally());
        t.short_circuit();
        assert_eq!(t.stop_cause(), Some(StopCause::ShortCircuit));
        // A later external stop must not overwrite the genuine short-circuit.
        t.stop_external(StopCause::Deadline);
        assert_eq!(t.stop_cause(), Some(StopCause::ShortCircuit));
        assert!(!t.stopped_externally());
    }

    #[test]
    fn external_stop_raises_the_flag_with_its_cause() {
        for (cause, expect_external) in [
            (StopCause::Cancelled, true),
            (StopCause::Deadline, true),
            (StopCause::ShortCircuit, false),
        ] {
            let t = Termination::new(3);
            t.stop_external(cause);
            assert!(t.short_circuited());
            assert!(t.finished());
            assert_eq!(t.stop_cause(), Some(cause));
            assert_eq!(t.stopped_externally(), expect_external);
        }
    }

    #[test]
    fn concurrent_spawn_complete_balance() {
        let t = Arc::new(Termination::new(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        t.task_spawned(1);
                        t.task_completed();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.outstanding(), 1);
        assert!(!t.all_done());
        t.task_completed();
        assert!(t.all_done());
    }
}
