//! Distributed termination detection and global short-circuiting.
//!
//! The parallel coordinations need to know when the whole search has
//! finished: the search is complete when every spawned task has been fully
//! explored and no worker holds work (the semantics' final configuration
//! `⟨σ, [], ⊥, …, ⊥⟩`).  [`Termination`] implements this with a single
//! outstanding-task counter: the counter is incremented *before* a task
//! becomes visible to other workers (pushed to a pool or handed to a thief)
//! and decremented when the task's subtree has been fully explored, so it
//! can only reach zero once no task exists anywhere in the system.
//!
//! Decision searches additionally short-circuit: the first worker to witness
//! the target sets a global stop flag (the (shortcircuit) rule) that all
//! loops poll.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared termination state for one skeleton execution.
#[derive(Debug, Default)]
pub struct Termination {
    outstanding: AtomicU64,
    done: AtomicBool,
    stop: AtomicBool,
}

impl Termination {
    /// Create termination state with `initial` outstanding tasks.
    pub fn new(initial: u64) -> Self {
        Termination {
            outstanding: AtomicU64::new(initial),
            done: AtomicBool::new(initial == 0),
            stop: AtomicBool::new(false),
        }
    }

    /// Register `n` newly spawned tasks.  Must be called before the tasks
    /// become visible to any other worker.
    pub fn task_spawned(&self, n: u64) {
        if n > 0 {
            self.outstanding.fetch_add(n, Ordering::AcqRel);
        }
    }

    /// Register the completion of one task.  Returns `true` if this was the
    /// last outstanding task (the caller observed global completion).
    pub fn task_completed(&self) -> bool {
        let prev = self.outstanding.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "task_completed called with no outstanding task");
        if prev == 1 {
            self.done.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Register the disposal of `n` tasks that were spawned but will never
    /// run — a workpool purge or a post-short-circuit clear.  Every spawned
    /// task must be accounted exactly once, either by [`task_completed`]
    /// (after running) or here (when discarded), otherwise the outstanding
    /// counter never drains and [`all_done`] stays false forever.
    ///
    /// [`task_completed`]: Termination::task_completed
    /// [`all_done`]: Termination::all_done
    pub fn tasks_discarded(&self, n: u64) {
        if n == 0 {
            return;
        }
        let prev = self.outstanding.fetch_sub(n, Ordering::AcqRel);
        debug_assert!(
            prev >= n,
            "tasks_discarded({n}) with only {prev} outstanding tasks"
        );
        if prev == n {
            self.done.store(true, Ordering::Release);
        }
    }

    /// Number of outstanding (spawned but not yet completed) tasks.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Acquire)
    }

    /// True once every task has completed.
    pub fn all_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Request a global short-circuit (decision target found).
    pub fn short_circuit(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// True if a short-circuit has been requested.
    pub fn short_circuited(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// True if workers should stop looking for work, either because the
    /// search completed or because it was short-circuited.
    pub fn finished(&self) -> bool {
        self.all_done() || self.short_circuited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_initial_tasks_is_immediately_done() {
        let t = Termination::new(0);
        assert!(t.all_done());
        assert!(t.finished());
    }

    #[test]
    fn completion_of_last_task_sets_done() {
        let t = Termination::new(1);
        assert!(!t.all_done());
        t.task_spawned(2);
        assert_eq!(t.outstanding(), 3);
        assert!(!t.task_completed());
        assert!(!t.task_completed());
        assert!(t.task_completed());
        assert!(t.all_done());
    }

    #[test]
    fn short_circuit_finishes_without_draining() {
        let t = Termination::new(5);
        assert!(!t.finished());
        t.short_circuit();
        assert!(t.short_circuited());
        assert!(t.finished());
        assert!(!t.all_done());
    }

    #[test]
    fn spawning_zero_tasks_is_a_noop() {
        let t = Termination::new(1);
        t.task_spawned(0);
        assert_eq!(t.outstanding(), 1);
    }

    #[test]
    fn discarding_tasks_drains_like_completing_them() {
        let t = Termination::new(1);
        t.task_spawned(4);
        assert_eq!(t.outstanding(), 5);
        t.tasks_discarded(0);
        assert_eq!(t.outstanding(), 5, "discarding zero tasks is a no-op");
        t.tasks_discarded(3);
        assert_eq!(t.outstanding(), 2);
        assert!(!t.all_done());
        assert!(!t.task_completed());
        t.tasks_discarded(1);
        assert!(t.all_done(), "the last discard must set done");
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn concurrent_spawn_complete_balance() {
        let t = Arc::new(Termination::new(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        t.task_spawned(1);
                        t.task_completed();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.outstanding(), 1);
        assert!(!t.all_done());
        t.task_completed();
        assert!(t.all_done());
    }
}
