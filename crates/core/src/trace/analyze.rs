//! Search-anomaly analyzer: post-processes a drained trace into named
//! findings — the mechanized version of the PR 6 strip-mining debugging
//! session, which had to be traced by hand from `par_mk ≈
//! remote_steal_latency` signatures in aggregate counters.
//!
//! The analyzer consumes plain [`TraceRecord`] slices, so it runs
//! identically on threaded traces (nanosecond timestamps) and simulator
//! traces (virtual ticks): every rule below is scale-free — ratios of
//! counts or of durations within one trace.

use super::{TraceEvent, TraceRecord, CONTROL_WORKER, UNKNOWN_VICTIM};

/// Thresholds for [`analyze`].  The defaults encode the anomaly shapes
/// seen in practice; tighten or relax per workload.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Node count of the 1-worker run of the same instance, when known.
    /// Enables the work-inflation rule.
    pub baseline_nodes: Option<u64>,
    /// Work-inflation ratio (trace nodes / baseline nodes) at or above
    /// which a [`WorkInflation`](FindingKind::WorkInflation) finding fires.
    pub inflation_threshold: f64,
    /// Fraction of the trace span a single worker must sit idle (while
    /// probing for work and missing) to fire a
    /// [`Starvation`](FindingKind::Starvation) finding.
    pub starvation_fraction: f64,
    /// Share of steal hits absorbed by one victim at or above which a
    /// [`StealStripMining`](FindingKind::StealStripMining) finding fires.
    pub strip_mine_share: f64,
    /// Minimum number of steal hits before the strip-mining rule applies
    /// (a two-steal trace trivially has a 100% victim).
    pub min_steals: u64,
    /// Wasted-speculation ratio (discarded + cancelled nodes over all
    /// speculation-classified nodes) at or above which a
    /// [`SpeculationWaste`](FindingKind::SpeculationWaste) finding fires.
    pub speculation_waste_threshold: f64,
    /// Grant changes per second of busy time at or above which a
    /// [`GrantThrash`](FindingKind::GrantThrash) finding fires.  "Seconds"
    /// means 10⁹ timestamp units — real seconds on threaded traces; for
    /// virtual-tick simulator traces pass a threshold in the tick scale.
    pub grant_thrash_per_sec: f64,
    /// Minimum grant changes for one search before the thrash rule applies
    /// (a search that grew once and shrank once is elasticity working, not
    /// thrash).
    pub grant_thrash_min_changes: u64,
    /// Workers per locality, for the
    /// [`LocalityImbalance`](FindingKind::LocalityImbalance) rule: worker
    /// `w` belongs to locality `w / workers_per_locality` (the simulator's
    /// and threaded engine's contiguous-block mapping).  The trace itself
    /// carries no locality topology, so the rule is **disabled** at the
    /// default of 0.
    pub workers_per_locality: usize,
    /// How far (in idle-fraction points) one locality's mean idle fraction
    /// must exceed the fleet mean — while some other locality stays mostly
    /// busy — before a
    /// [`LocalityImbalance`](FindingKind::LocalityImbalance) finding fires.
    pub locality_idle_excess: f64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            baseline_nodes: None,
            inflation_threshold: 1.05,
            starvation_fraction: 0.25,
            strip_mine_share: 0.5,
            min_steals: 8,
            speculation_waste_threshold: 0.25,
            grant_thrash_per_sec: 10.0,
            grant_thrash_min_changes: 4,
            workers_per_locality: 0,
            locality_idle_excess: 0.25,
        }
    }
}

/// The kind of anomaly a [`Finding`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// The parallel run expanded measurably more nodes than the 1-worker
    /// baseline: speculation or a late incumbent inflated the tree (§2.1's
    /// "anomalies manifest as changes in work").
    WorkInflation,
    /// Some worker spent a large fraction of the run idle and failing to
    /// steal while work existed elsewhere.
    Starvation,
    /// One victim absorbed a dominant share of (remote, when present)
    /// steal hits — the PR 6 hint-directed-remote-steal collapse, where
    /// every thief converges on the first busy frontier.
    StealStripMining,
    /// A large share of speculatively expanded nodes was discarded or
    /// cancelled instead of committed.
    SpeculationWaste,
    /// One search's worker grant oscillated (grow/shrink) faster than the
    /// configured rate — the elastic scheduler is thrashing, paying
    /// join/leave churn instead of doing search work.
    GrantThrash,
    /// One locality's workers sat idle far above the fleet mean while
    /// another locality stayed saturated with work: remote work
    /// distribution (steal routing / work pushing) failed to level the
    /// load across localities.  Requires
    /// [`AnalyzeConfig::workers_per_locality`] to map workers onto
    /// localities.
    LocalityImbalance,
}

impl FindingKind {
    /// Stable snake_case name, used by exporters and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            FindingKind::WorkInflation => "work_inflation",
            FindingKind::Starvation => "starvation",
            FindingKind::StealStripMining => "steal_strip_mining",
            FindingKind::SpeculationWaste => "speculation_waste",
            FindingKind::GrantThrash => "grant_thrash",
            FindingKind::LocalityImbalance => "locality_imbalance",
        }
    }
}

/// One named anomaly detected in a trace.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub kind: FindingKind,
    /// The rule's measured value (a ratio or share; see the rule's doc).
    pub value: f64,
    /// Human-readable one-line description with the supporting numbers.
    pub summary: String,
}

/// Per-worker busy-interval accumulator: worker id, closed `(start, end)`
/// intervals, and the timestamp of a still-open `TaskStart`, if any.
type IntervalAccum = Vec<(u32, Vec<(u64, u64)>, Option<u64>)>;

/// Busy intervals per worker: sequential pairing of `TaskStart`/`TaskEnd`
/// timestamps.  Returns `(worker, Vec<(start, end)>)` for every worker
/// that started at least one task.
fn busy_intervals(records: &[TraceRecord]) -> Vec<(u32, Vec<(u64, u64)>)> {
    let mut per_worker: IntervalAccum = Vec::new();
    for record in records {
        if record.worker == CONTROL_WORKER {
            continue;
        }
        let slot = match per_worker.iter_mut().find(|(w, ..)| *w == record.worker) {
            Some(slot) => slot,
            None => {
                per_worker.push((record.worker, Vec::new(), None));
                per_worker.last_mut().expect("just pushed")
            }
        };
        match record.event {
            TraceEvent::TaskStart { .. } => slot.2 = Some(record.ts),
            TraceEvent::TaskEnd { .. } => {
                if let Some(start) = slot.2.take() {
                    slot.1.push((start, record.ts));
                }
            }
            _ => {}
        }
    }
    per_worker
        .into_iter()
        .filter(|(_, intervals, _)| !intervals.is_empty())
        .map(|(w, intervals, _)| (w, intervals))
        .collect()
}

/// The trace-clock variant of
/// [`Metrics::imbalance`](crate::metrics::Metrics::imbalance): max over
/// mean of per-worker *busy time* (summed `TaskStart`→`TaskEnd`
/// durations).  1.0 means perfectly balanced; returns 1.0 for traces with
/// no task spans.
pub fn busy_time_imbalance(records: &[TraceRecord]) -> f64 {
    let per_worker = busy_intervals(records);
    if per_worker.is_empty() {
        return 1.0;
    }
    let busy: Vec<u64> = per_worker
        .iter()
        .map(|(_, intervals)| intervals.iter().map(|(s, e)| e.saturating_sub(*s)).sum())
        .collect();
    let total: u64 = busy.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / busy.len() as f64;
    let max = busy.iter().copied().max().unwrap_or(0) as f64;
    max / mean
}

/// Aggregate shape of a trace, for pretty-printing and quick sanity
/// checks (the `tracecat` CLI prints this before the findings).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total records in the trace.
    pub events: usize,
    /// Last timestamp minus first (ns for threaded traces, ticks for sim).
    pub span: u64,
    /// Distinct non-control workers that emitted events.
    pub workers: usize,
    /// Completed task spans (`TaskEnd` count).
    pub tasks: u64,
    /// Total nodes expanded (sum of `TaskEnd` deltas).
    pub nodes: u64,
    /// Successful steals.
    pub steal_hits: u64,
    /// Failed steal probes.
    pub steal_misses: u64,
    /// Incumbent strengthenings observed.
    pub incumbent_updates: u64,
    /// Nodes committed in order (Ordered coordination).
    pub committed_nodes: u64,
    /// Nodes discarded at commit time.
    pub discarded_nodes: u64,
    /// Nodes abandoned by in-flight cancellation.
    pub cancelled_nodes: u64,
    /// Runtime gauge samples present in the stream.
    pub gauge_samples: u64,
    /// Per-worker busy-time imbalance ([`busy_time_imbalance`]).
    pub busy_imbalance: f64,
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "events {:>8}   span {:>12}   workers {:>3}",
            self.events, self.span, self.workers
        )?;
        writeln!(
            f,
            "tasks  {:>8}   nodes {:>11}   busy-imbalance {:.3}",
            self.tasks, self.nodes, self.busy_imbalance
        )?;
        writeln!(
            f,
            "steals {:>8} hit / {} miss   incumbents {}",
            self.steal_hits, self.steal_misses, self.incumbent_updates
        )?;
        write!(
            f,
            "spec   {:>8} committed / {} discarded / {} cancelled   gauges {}",
            self.committed_nodes, self.discarded_nodes, self.cancelled_nodes, self.gauge_samples
        )
    }
}

/// Summarize a trace's aggregate shape.
pub fn summarize(records: &[TraceRecord]) -> TraceSummary {
    let mut summary = TraceSummary {
        events: records.len(),
        busy_imbalance: busy_time_imbalance(records),
        ..TraceSummary::default()
    };
    if let (Some(first), Some(last)) = (records.first(), records.last()) {
        summary.span = last.ts.saturating_sub(first.ts);
    }
    let mut workers: Vec<u32> = Vec::new();
    for record in records {
        if record.worker != CONTROL_WORKER && !workers.contains(&record.worker) {
            workers.push(record.worker);
        }
        match record.event {
            TraceEvent::TaskEnd { nodes, .. } => {
                summary.tasks += 1;
                summary.nodes += nodes;
            }
            TraceEvent::StealHit { .. } => summary.steal_hits += 1,
            TraceEvent::StealMiss { .. } => summary.steal_misses += 1,
            TraceEvent::IncumbentUpdate { .. } => summary.incumbent_updates += 1,
            TraceEvent::SpeculationCommit { nodes } => summary.committed_nodes += nodes,
            TraceEvent::SpeculationDiscard { nodes } => summary.discarded_nodes += nodes,
            TraceEvent::SpeculationCancel { nodes } => summary.cancelled_nodes += nodes,
            TraceEvent::RuntimeGauge { .. } => summary.gauge_samples += 1,
            _ => {}
        }
    }
    summary.workers = workers.len();
    summary
}

fn work_inflation(summary: &TraceSummary, config: &AnalyzeConfig) -> Option<Finding> {
    let baseline = config.baseline_nodes.filter(|b| *b > 0)?;
    let ratio = summary.nodes as f64 / baseline as f64;
    (ratio >= config.inflation_threshold).then(|| Finding {
        kind: FindingKind::WorkInflation,
        value: ratio,
        summary: format!(
            "parallel run expanded {} nodes vs {} baseline ({ratio:.2}x)",
            summary.nodes, baseline
        ),
    })
}

fn strip_mining(records: &[TraceRecord], config: &AnalyzeConfig) -> Option<Finding> {
    let hits: Vec<(u32, bool)> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::StealHit { victim, remote, .. } if victim != UNKNOWN_VICTIM => {
                Some((victim, remote))
            }
            _ => None,
        })
        .collect();
    // When the trace distinguishes remote steals (the simulator's
    // multi-locality model), the rule is about *remote* traffic — that is
    // the PR 6 failure mode.  Single-locality traces use all hits.
    let any_remote = hits.iter().any(|(_, remote)| *remote);
    let pool: Vec<u32> = hits
        .iter()
        .filter(|(_, remote)| !any_remote || *remote)
        .map(|(victim, _)| *victim)
        .collect();
    if (pool.len() as u64) < config.min_steals {
        return None;
    }
    let mut counts: Vec<(u32, u64)> = Vec::new();
    for victim in &pool {
        match counts.iter_mut().find(|(v, _)| v == victim) {
            Some((_, n)) => *n += 1,
            None => counts.push((*victim, 1)),
        }
    }
    let (victim, absorbed) = counts
        .iter()
        .copied()
        .max_by_key(|(_, n)| *n)
        .expect("pool is non-empty");
    let share = absorbed as f64 / pool.len() as f64;
    (share >= config.strip_mine_share).then(|| Finding {
        kind: FindingKind::StealStripMining,
        value: share,
        summary: format!(
            "victim {victim} absorbed {absorbed}/{} {}steal hits ({:.0}%)",
            pool.len(),
            if any_remote { "remote " } else { "" },
            share * 100.0
        ),
    })
}

fn starvation(records: &[TraceRecord], config: &AnalyzeConfig) -> Option<Finding> {
    let span = match (records.first(), records.last()) {
        (Some(first), Some(last)) if last.ts > first.ts => (first.ts, last.ts),
        _ => return None,
    };
    let span_len = (span.1 - span.0) as f64;
    let mut worst: Option<(u32, u64)> = None;
    for (worker, intervals) in busy_intervals(records) {
        // Idle gaps: before the first task, between tasks, after the last.
        let mut gaps: Vec<(u64, u64)> = Vec::new();
        let mut cursor = span.0;
        for (start, end) in &intervals {
            if *start > cursor {
                gaps.push((cursor, *start));
            }
            cursor = cursor.max(*end);
        }
        if span.1 > cursor {
            gaps.push((cursor, span.1));
        }
        // A gap only counts as starvation if the worker was *trying* —
        // at least one failed steal probe landed inside it.
        let misses: Vec<u64> = records
            .iter()
            .filter(|r| r.worker == worker && matches!(r.event, TraceEvent::StealMiss { .. }))
            .map(|r| r.ts)
            .collect();
        let longest = gaps
            .iter()
            .filter(|(s, e)| misses.iter().any(|m| m >= s && m <= e))
            .map(|(s, e)| e - s)
            .max()
            .unwrap_or(0);
        if worst.map(|(_, g)| longest > g).unwrap_or(longest > 0) {
            worst = Some((worker, longest));
        }
    }
    let (worker, gap) = worst?;
    let fraction = gap as f64 / span_len;
    (fraction >= config.starvation_fraction).then(|| Finding {
        kind: FindingKind::Starvation,
        value: fraction,
        summary: format!(
            "worker {worker} sat idle (stealing and missing) for {gap} of a {}-long trace ({:.0}%)",
            span.1 - span.0,
            fraction * 100.0
        ),
    })
}

fn speculation_waste(summary: &TraceSummary, config: &AnalyzeConfig) -> Option<Finding> {
    let wasted = summary.discarded_nodes + summary.cancelled_nodes;
    let total = summary.committed_nodes + wasted;
    if total == 0 {
        return None;
    }
    let ratio = wasted as f64 / total as f64;
    (ratio >= config.speculation_waste_threshold).then(|| Finding {
        kind: FindingKind::SpeculationWaste,
        value: ratio,
        summary: format!(
            "{wasted} of {total} speculation-classified nodes were wasted \
             ({} discarded + {} cancelled, {:.0}%)",
            summary.discarded_nodes,
            summary.cancelled_nodes,
            ratio * 100.0
        ),
    })
}

fn locality_imbalance(records: &[TraceRecord], config: &AnalyzeConfig) -> Option<Finding> {
    let wpl = config.workers_per_locality;
    if wpl == 0 {
        return None;
    }
    let (first, last) = match (records.first(), records.last()) {
        (Some(first), Some(last)) if last.ts > first.ts => (first.ts, last.ts),
        _ => return None,
    };
    let span = (last - first) as f64;
    // Busy time per observed worker; a worker that only probed (steal
    // misses, polls) and never ran a task is fully idle, so collect the
    // worker set from *every* record, not just task spans.
    let busy = busy_intervals(records);
    let mut per_locality: Vec<(u32, f64, u64)> = Vec::new(); // (locality, idle sum, workers)
    let mut workers: Vec<u32> = records
        .iter()
        .filter(|r| r.worker != CONTROL_WORKER)
        .map(|r| r.worker)
        .collect();
    workers.sort_unstable();
    workers.dedup();
    for worker in workers {
        let busy_time: u64 = busy
            .iter()
            .find(|(w, _)| *w == worker)
            .map(|(_, intervals)| intervals.iter().map(|(s, e)| e.saturating_sub(*s)).sum())
            .unwrap_or(0);
        let idle_fraction = 1.0 - (busy_time as f64 / span).min(1.0);
        let locality = worker / wpl as u32;
        match per_locality.iter_mut().find(|(l, ..)| *l == locality) {
            Some((_, idle, n)) => {
                *idle += idle_fraction;
                *n += 1;
            }
            None => per_locality.push((locality, idle_fraction, 1)),
        }
    }
    if per_locality.len() < 2 {
        return None;
    }
    let fractions: Vec<(u32, f64)> = per_locality
        .iter()
        .map(|(l, idle, n)| (*l, idle / *n as f64))
        .collect();
    let mean = fractions.iter().map(|(_, f)| f).sum::<f64>() / fractions.len() as f64;
    let (idle_loc, max_idle) = fractions
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("two localities");
    let (busy_loc, min_idle) = fractions
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("two localities");
    let excess = max_idle - mean;
    // "Another locality stayed saturated" — without gauge events in the
    // trace, a locality that was busy most of the span is the witness that
    // distributable work existed while the idle locality starved.
    (excess >= config.locality_idle_excess && min_idle <= 0.5).then(|| Finding {
        kind: FindingKind::LocalityImbalance,
        value: excess,
        summary: format!(
            "locality {idle_loc} sat {:.0}% idle ({:.0} points over the fleet mean of {:.0}%) \
             while locality {busy_loc} stayed {:.0}% busy — remote work distribution failed \
             to level the load",
            max_idle * 100.0,
            excess * 100.0,
            mean * 100.0,
            (1.0 - min_idle) * 100.0
        ),
    })
}

fn grant_thrash(records: &[TraceRecord], config: &AnalyzeConfig) -> Vec<Finding> {
    // Grant changes per search: every GrantGrown or GrantShrunk counts one.
    let mut per_search: Vec<(u64, u64)> = Vec::new();
    for record in records {
        let search_id = match record.event {
            TraceEvent::GrantGrown { search_id, .. } => search_id,
            TraceEvent::GrantShrunk { search_id, .. } => search_id,
            _ => continue,
        };
        match per_search.iter_mut().find(|(s, _)| *s == search_id) {
            Some((_, n)) => *n += 1,
            None => per_search.push((search_id, 1)),
        }
    }
    if per_search.is_empty() {
        return Vec::new();
    }
    // Busy time: summed task spans across workers; grant-event-only traces
    // (the control-plane view of a sim run) fall back to the trace span.
    let busy: u64 = busy_intervals(records)
        .iter()
        .map(|(_, intervals)| {
            intervals
                .iter()
                .map(|(s, e)| e.saturating_sub(*s))
                .sum::<u64>()
        })
        .sum();
    let busy = if busy > 0 {
        busy
    } else {
        match (records.first(), records.last()) {
            (Some(first), Some(last)) => last.ts.saturating_sub(first.ts),
            _ => 0,
        }
    };
    if busy == 0 {
        return Vec::new();
    }
    let busy_secs = busy as f64 / 1e9;
    let mut findings = Vec::new();
    for (search_id, changes) in per_search {
        if changes < config.grant_thrash_min_changes {
            continue;
        }
        let rate = changes as f64 / busy_secs;
        if rate >= config.grant_thrash_per_sec {
            findings.push(Finding {
                kind: FindingKind::GrantThrash,
                value: rate,
                summary: format!(
                    "search {search_id} changed its grant {changes} times over {busy} \
                     of busy time ({rate:.1}/s) — the elastic scheduler is thrashing"
                ),
            });
        }
    }
    findings
}

/// Run every anomaly rule over a (time-sorted) trace and return the
/// findings that fired.  An empty result means "no anomaly detected", not
/// "healthy by proof" — rules needing context the trace lacks (e.g. a
/// 1-worker baseline) are skipped silently.
pub fn analyze(records: &[TraceRecord], config: &AnalyzeConfig) -> Vec<Finding> {
    let summary = summarize(records);
    let mut findings = Vec::new();
    if let Some(finding) = work_inflation(&summary, config) {
        findings.push(finding);
    }
    if let Some(finding) = starvation(records, config) {
        findings.push(finding);
    }
    if let Some(finding) = strip_mining(records, config) {
        findings.push(finding);
    }
    if let Some(finding) = speculation_waste(&summary, config) {
        findings.push(finding);
    }
    if let Some(finding) = locality_imbalance(records, config) {
        findings.push(finding);
    }
    findings.extend(grant_thrash(records, config));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, worker: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { ts, worker, event }
    }

    fn end(nodes: u64) -> TraceEvent {
        TraceEvent::TaskEnd {
            nodes,
            prunes: 0,
            backtracks: 0,
            spawns: 0,
            batch_pushes: 0,
            poll_checks: 0,
            max_depth: 0,
        }
    }

    #[test]
    fn empty_trace_yields_no_findings_and_balanced_imbalance() {
        assert!(analyze(&[], &AnalyzeConfig::default()).is_empty());
        assert_eq!(busy_time_imbalance(&[]), 1.0);
    }

    #[test]
    fn work_inflation_fires_against_the_baseline() {
        let records = vec![
            rec(0, 0, TraceEvent::TaskStart { depth: 0 }),
            rec(100, 0, end(220)),
        ];
        let config = AnalyzeConfig {
            baseline_nodes: Some(100),
            ..AnalyzeConfig::default()
        };
        let findings = analyze(&records, &config);
        let inflation = findings
            .iter()
            .find(|f| f.kind == FindingKind::WorkInflation)
            .expect("2.2x over baseline must fire");
        assert!((inflation.value - 2.2).abs() < 1e-9);
        // Without a baseline the rule is skipped.
        assert!(analyze(&records, &AnalyzeConfig::default())
            .iter()
            .all(|f| f.kind != FindingKind::WorkInflation));
    }

    #[test]
    fn strip_mining_fires_when_one_victim_dominates() {
        let mut records = Vec::new();
        for i in 0..10u64 {
            let victim = if i < 8 { 0 } else { 1 + i as u32 % 2 };
            records.push(rec(
                i * 10,
                3,
                TraceEvent::StealHit {
                    victim,
                    tasks: 1,
                    remote: true,
                },
            ));
        }
        let findings = analyze(&records, &AnalyzeConfig::default());
        let finding = findings
            .iter()
            .find(|f| f.kind == FindingKind::StealStripMining)
            .expect("80% share must fire");
        assert!((finding.value - 0.8).abs() < 1e-9);
        assert!(finding.summary.contains("victim 0"));
    }

    #[test]
    fn strip_mining_respects_the_min_steal_floor() {
        let records = vec![rec(
            0,
            1,
            TraceEvent::StealHit {
                victim: 0,
                tasks: 1,
                remote: false,
            },
        )];
        assert!(analyze(&records, &AnalyzeConfig::default()).is_empty());
    }

    #[test]
    fn remote_hits_take_precedence_when_present() {
        // Local steals are spread evenly; remote steals all hit victim 7.
        let mut records = Vec::new();
        for i in 0..16u64 {
            records.push(rec(
                i,
                2,
                TraceEvent::StealHit {
                    victim: (i % 4) as u32,
                    tasks: 1,
                    remote: false,
                },
            ));
        }
        for i in 16..26u64 {
            records.push(rec(
                i,
                2,
                TraceEvent::StealHit {
                    victim: 7,
                    tasks: 1,
                    remote: true,
                },
            ));
        }
        let findings = analyze(&records, &AnalyzeConfig::default());
        let finding = findings
            .iter()
            .find(|f| f.kind == FindingKind::StealStripMining)
            .expect("remote share is 100%");
        assert!(finding.summary.contains("remote"));
        assert!((finding.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn starvation_needs_failed_probes_inside_the_gap() {
        // Worker 0 is busy for the whole span; worker 1 does one task early
        // then starves (missing steals) for the rest of the trace.
        let mut records = vec![
            rec(0, 0, TraceEvent::TaskStart { depth: 0 }),
            rec(0, 1, TraceEvent::TaskStart { depth: 1 }),
            rec(100, 1, end(5)),
        ];
        for i in 0..8u64 {
            records.push(rec(150 + i * 100, 1, TraceEvent::StealMiss { victim: 0 }));
        }
        records.push(rec(1000, 0, end(500)));
        records.sort_by_key(|r| r.ts);
        let findings = analyze(&records, &AnalyzeConfig::default());
        let finding = findings
            .iter()
            .find(|f| f.kind == FindingKind::Starvation)
            .expect("a 90% idle tail must fire");
        assert!(finding.summary.contains("worker 1"));

        // The same gap without any steal misses is not starvation (the
        // worker may simply have finished its share).
        let quiet: Vec<TraceRecord> = records
            .iter()
            .filter(|r| !matches!(r.event, TraceEvent::StealMiss { .. }))
            .copied()
            .collect();
        assert!(analyze(&quiet, &AnalyzeConfig::default())
            .iter()
            .all(|f| f.kind != FindingKind::Starvation));
    }

    #[test]
    fn speculation_waste_ratio() {
        let records = vec![
            rec(
                0,
                CONTROL_WORKER,
                TraceEvent::SpeculationCommit { nodes: 60 },
            ),
            rec(
                1,
                CONTROL_WORKER,
                TraceEvent::SpeculationDiscard { nodes: 30 },
            ),
            rec(
                2,
                CONTROL_WORKER,
                TraceEvent::SpeculationCancel { nodes: 10 },
            ),
        ];
        let findings = analyze(&records, &AnalyzeConfig::default());
        let finding = findings
            .iter()
            .find(|f| f.kind == FindingKind::SpeculationWaste)
            .expect("40% waste must fire");
        assert!((finding.value - 0.4).abs() < 1e-9);
    }

    #[test]
    fn grant_thrash_fires_on_an_oscillating_grant() {
        // One search grows and shrinks six times inside 0.1s of busy time:
        // 60 changes/s, far past the 10/s default.
        let mut records = vec![rec(0, 0, TraceEvent::TaskStart { depth: 0 })];
        for i in 0..3u64 {
            records.push(rec(
                10_000_000 + i * 20_000_000,
                CONTROL_WORKER,
                TraceEvent::GrantGrown {
                    search_id: 1,
                    workers: 4,
                },
            ));
            records.push(rec(
                20_000_000 + i * 20_000_000,
                CONTROL_WORKER,
                TraceEvent::GrantShrunk {
                    search_id: 1,
                    workers: 2,
                },
            ));
        }
        records.push(rec(100_000_000, 0, end(10)));
        let findings = analyze(&records, &AnalyzeConfig::default());
        let finding = findings
            .iter()
            .find(|f| f.kind == FindingKind::GrantThrash)
            .expect("60 changes/s must fire");
        assert!((finding.value - 60.0).abs() < 1e-9);
        assert!(finding.summary.contains("search 1"));
    }

    #[test]
    fn grant_thrash_stays_quiet_without_oscillation() {
        // FIFO-style trace: no grant events at all.
        let fifo = vec![
            rec(0, 0, TraceEvent::TaskStart { depth: 0 }),
            rec(100_000_000, 0, end(10)),
        ];
        assert!(analyze(&fifo, &AnalyzeConfig::default())
            .iter()
            .all(|f| f.kind != FindingKind::GrantThrash));

        // One grow + one shrink is elasticity working: below the change floor.
        let gentle = vec![
            rec(0, 0, TraceEvent::TaskStart { depth: 0 }),
            rec(
                10_000_000,
                CONTROL_WORKER,
                TraceEvent::GrantGrown {
                    search_id: 7,
                    workers: 4,
                },
            ),
            rec(
                20_000_000,
                CONTROL_WORKER,
                TraceEvent::GrantShrunk {
                    search_id: 7,
                    workers: 1,
                },
            ),
            rec(100_000_000, 0, end(10)),
        ];
        assert!(analyze(&gentle, &AnalyzeConfig::default())
            .iter()
            .all(|f| f.kind != FindingKind::GrantThrash));
    }

    #[test]
    fn grant_thrash_falls_back_to_the_trace_span_without_task_spans() {
        // Control-plane-only trace (the sim's view): no TaskStart/TaskEnd,
        // so the rule rates changes over the whole span.  Four changes over
        // 0.2s = 20/s, past the default threshold.
        let mut records = Vec::new();
        for i in 0..4u64 {
            let event = if i % 2 == 0 {
                TraceEvent::GrantGrown {
                    search_id: 3,
                    workers: 2 + i as u32,
                }
            } else {
                TraceEvent::GrantShrunk {
                    search_id: 3,
                    workers: 1,
                }
            };
            records.push(rec(i * 50_000_000, CONTROL_WORKER, event));
        }
        records.push(rec(
            200_000_000,
            CONTROL_WORKER,
            TraceEvent::SearchFinished { search_id: 3 },
        ));
        let findings = analyze(&records, &AnalyzeConfig::default());
        let finding = findings
            .iter()
            .find(|f| f.kind == FindingKind::GrantThrash)
            .expect("20 changes/s over the span must fire");
        assert!((finding.value - 20.0).abs() < 1e-9);
    }

    #[test]
    fn locality_imbalance_fires_when_one_locality_starves() {
        // 2 localities × 2 workers.  Locality 0 is busy for the whole
        // span; locality 1's workers only probe and miss.
        let mut records = vec![
            rec(0, 0, TraceEvent::TaskStart { depth: 0 }),
            rec(0, 1, TraceEvent::TaskStart { depth: 0 }),
        ];
        for i in 0..10u64 {
            records.push(rec(i * 100, 2, TraceEvent::StealMiss { victim: 0 }));
            records.push(rec(i * 100 + 50, 3, TraceEvent::StealMiss { victim: 1 }));
        }
        records.push(rec(1000, 0, end(50)));
        records.push(rec(1000, 1, end(50)));
        records.sort_by_key(|r| r.ts);
        let config = AnalyzeConfig {
            workers_per_locality: 2,
            ..AnalyzeConfig::default()
        };
        let findings = analyze(&records, &config);
        let finding = findings
            .iter()
            .find(|f| f.kind == FindingKind::LocalityImbalance)
            .expect("a fully idle locality opposite a saturated one must fire");
        assert!(finding.summary.contains("locality 1"));
        assert!(finding.summary.contains("locality 0"));
        assert!(finding.value >= 0.25, "excess {}", finding.value);

        // The rule is disabled without a locality mapping.
        assert!(analyze(&records, &AnalyzeConfig::default())
            .iter()
            .all(|f| f.kind != FindingKind::LocalityImbalance));
    }

    #[test]
    fn locality_imbalance_stays_quiet_on_levelled_load() {
        // Both localities busy for the whole span.
        let mut records = Vec::new();
        for w in 0..4u32 {
            records.push(rec(0, w, TraceEvent::TaskStart { depth: 0 }));
        }
        for w in 0..4u32 {
            records.push(rec(1000, w, end(25)));
        }
        records.sort_by_key(|r| r.ts);
        let config = AnalyzeConfig {
            workers_per_locality: 2,
            ..AnalyzeConfig::default()
        };
        assert!(analyze(&records, &config)
            .iter()
            .all(|f| f.kind != FindingKind::LocalityImbalance));
    }

    #[test]
    fn locality_imbalance_needs_a_saturated_witness() {
        // Three 1-worker localities: locality 0 fully idle (probing),
        // localities 1 and 2 only 40% busy.  The idle excess clears the
        // threshold but no locality stayed saturated, so there is no
        // witness that distributable work existed — the rule must not
        // fire (the fleet may simply have run out of work).
        let mut records = vec![
            rec(0, 1, TraceEvent::TaskStart { depth: 0 }),
            rec(0, 2, TraceEvent::TaskStart { depth: 0 }),
        ];
        for i in 0..10u64 {
            records.push(rec(i * 100, 0, TraceEvent::StealMiss { victim: 1 }));
        }
        records.push(rec(400, 1, end(10)));
        records.push(rec(400, 2, end(10)));
        records.push(rec(1000, 0, TraceEvent::StealMiss { victim: 2 }));
        records.sort_by_key(|r| r.ts);
        let config = AnalyzeConfig {
            workers_per_locality: 1,
            ..AnalyzeConfig::default()
        };
        assert!(analyze(&records, &config)
            .iter()
            .all(|f| f.kind != FindingKind::LocalityImbalance));
    }

    #[test]
    fn busy_time_imbalance_matches_hand_computation() {
        let records = vec![
            rec(0, 0, TraceEvent::TaskStart { depth: 0 }),
            rec(300, 0, end(1)),
            rec(0, 1, TraceEvent::TaskStart { depth: 0 }),
            rec(100, 1, end(1)),
        ];
        // busy: w0=300, w1=100; mean=200; max/mean = 1.5
        assert!((busy_time_imbalance(&records) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn summary_counts_the_stream() {
        let records = vec![
            rec(0, 0, TraceEvent::TaskStart { depth: 0 }),
            rec(10, 0, TraceEvent::Poll { stack_depth: 1 }),
            rec(50, 0, end(42)),
            rec(60, 1, TraceEvent::StealMiss { victim: 0 }),
            rec(
                70,
                CONTROL_WORKER,
                TraceEvent::RuntimeGauge {
                    active: 1,
                    granted: 2,
                    queued: 0,
                    completed: 0,
                    peak: 1,
                },
            ),
        ];
        let summary = summarize(&records);
        assert_eq!(summary.events, 5);
        assert_eq!(summary.workers, 2);
        assert_eq!(summary.tasks, 1);
        assert_eq!(summary.nodes, 42);
        assert_eq!(summary.steal_misses, 1);
        assert_eq!(summary.gauge_samples, 1);
        assert_eq!(summary.span, 70);
        let text = summary.to_string();
        assert!(text.contains("nodes"));
        assert!(text.contains("gauges 1"));
    }
}
