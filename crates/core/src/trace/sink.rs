//! Trace exporters: JSONL (one record per line, machine-round-trippable)
//! and Chrome-trace (`trace_event` JSON array, opens directly in
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)).
//!
//! The vendored environment has no JSON serializer/parser crate, so both
//! directions are hand-rolled against a fixed schema: every JSONL line is
//! `{"ts":<u64>,"worker":<u32>,"event":"<name>",<event fields...>}` with a
//! stable field order, and [`read_jsonl`] is a strict scanner over exactly
//! that shape — malformed input is an error, never a silent skip.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use super::{TraceEvent, TraceRecord, CONTROL_WORKER};

/// A destination format for a drained trace.
pub trait TraceSink {
    /// Serialize `records` (already time-sorted by
    /// [`TraceBuffer::drain`](super::TraceBuffer::drain)) into `out`.
    fn export(&self, records: &[TraceRecord], out: &mut dyn Write) -> io::Result<()>;

    /// Conventional file extension for this format (no leading dot).
    fn extension(&self) -> &'static str;
}

/// One compact JSON object per line; the canonical on-disk format, parsed
/// back by [`read_jsonl`] and consumed by the `tracecat` CLI and the
/// `table2 --trace-dir` smoke step.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonlSink;

/// Chrome `trace_event` JSON: task spans become `B`/`E` duration events on
/// per-worker tracks, everything else becomes instant (`i`) events, and
/// gauge samples become counter (`C`) tracks.  Timestamps are converted
/// from nanoseconds to the microseconds Chrome expects (keeping
/// sub-microsecond ordering as fractional digits).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChromeTraceSink;

/// Append the fixed-order event payload fields (everything after the
/// `"event"` tag) to a JSONL line.
fn push_event_fields(line: &mut String, event: &TraceEvent) {
    use std::fmt::Write as _;
    match *event {
        TraceEvent::TaskStart { depth } => {
            let _ = write!(line, ",\"depth\":{depth}");
        }
        TraceEvent::TaskEnd {
            nodes,
            prunes,
            backtracks,
            spawns,
            batch_pushes,
            poll_checks,
            max_depth,
        } => {
            let _ = write!(
                line,
                ",\"nodes\":{nodes},\"prunes\":{prunes},\"backtracks\":{backtracks},\
                 \"spawns\":{spawns},\"batch_pushes\":{batch_pushes},\
                 \"poll_checks\":{poll_checks},\"max_depth\":{max_depth}"
            );
        }
        TraceEvent::StealRequest { victim } => {
            let _ = write!(line, ",\"victim\":{victim}");
        }
        TraceEvent::StealHit {
            victim,
            tasks,
            remote,
        } => {
            let _ = write!(
                line,
                ",\"victim\":{victim},\"tasks\":{tasks},\"remote\":{remote}"
            );
        }
        TraceEvent::StealMiss { victim } => {
            let _ = write!(line, ",\"victim\":{victim}");
        }
        TraceEvent::StealRouted { locality, load } => {
            let _ = write!(line, ",\"locality\":{locality},\"load\":{load}");
        }
        TraceEvent::WorkPushed { locality, tasks } => {
            let _ = write!(line, ",\"locality\":{locality},\"tasks\":{tasks}");
        }
        TraceEvent::StealBackoff { locality, misses } => {
            let _ = write!(line, ",\"locality\":{locality},\"misses\":{misses}");
        }
        TraceEvent::IncumbentUpdate { version } => {
            let _ = write!(line, ",\"version\":{version}");
        }
        TraceEvent::SpeculationCommit { nodes }
        | TraceEvent::SpeculationDiscard { nodes }
        | TraceEvent::SpeculationCancel { nodes } => {
            let _ = write!(line, ",\"nodes\":{nodes}");
        }
        TraceEvent::Poll { stack_depth } => {
            let _ = write!(line, ",\"stack_depth\":{stack_depth}");
        }
        TraceEvent::SearchQueued { search_id } | TraceEvent::SearchFinished { search_id } => {
            let _ = write!(line, ",\"search_id\":{search_id}");
        }
        TraceEvent::SearchGranted { search_id, workers }
        | TraceEvent::GrantGrown { search_id, workers }
        | TraceEvent::GrantShrunk { search_id, workers } => {
            let _ = write!(line, ",\"search_id\":{search_id},\"workers\":{workers}");
        }
        TraceEvent::WorkerRevoked {
            search_id,
            slot,
            latency_ns,
        } => {
            let _ = write!(
                line,
                ",\"search_id\":{search_id},\"slot\":{slot},\"latency_ns\":{latency_ns}"
            );
        }
        TraceEvent::RuntimeGauge {
            active,
            granted,
            queued,
            completed,
            peak,
        } => {
            let _ = write!(
                line,
                ",\"active\":{active},\"granted\":{granted},\"queued\":{queued},\
                 \"completed\":{completed},\"peak\":{peak}"
            );
        }
    }
}

/// Render one record as its canonical single-line JSON form.
pub fn jsonl_line(record: &TraceRecord) -> String {
    let mut line = format!(
        "{{\"ts\":{},\"worker\":{},\"event\":\"{}\"",
        record.ts,
        record.worker,
        record.event.name()
    );
    push_event_fields(&mut line, &record.event);
    line.push('}');
    line
}

impl TraceSink for JsonlSink {
    fn export(&self, records: &[TraceRecord], out: &mut dyn Write) -> io::Result<()> {
        for record in records {
            writeln!(out, "{}", jsonl_line(record))?;
        }
        Ok(())
    }

    fn extension(&self) -> &'static str {
        "jsonl"
    }
}

/// Chrome-trace timestamp: microseconds with the nanosecond remainder kept
/// as three fractional digits, so event ordering survives the unit change.
fn chrome_ts(ts: u64) -> String {
    format!("{}.{:03}", ts / 1000, ts % 1000)
}

impl TraceSink for ChromeTraceSink {
    fn export(&self, records: &[TraceRecord], out: &mut dyn Write) -> io::Result<()> {
        writeln!(out, "[")?;
        // Name the tracks once up front so Perfetto shows "worker N"
        // instead of bare tids.
        let mut workers: Vec<u32> = records.iter().map(|r| r.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        let mut first = true;
        let sep = |out: &mut dyn Write, first: &mut bool| -> io::Result<()> {
            if *first {
                *first = false;
            } else {
                writeln!(out, ",")?;
            }
            Ok(())
        };
        for worker in &workers {
            sep(out, &mut first)?;
            let label = if *worker == CONTROL_WORKER {
                "runtime".to_string()
            } else {
                format!("worker {worker}")
            };
            write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{worker},\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            )?;
        }
        for record in records {
            sep(out, &mut first)?;
            let ts = chrome_ts(record.ts);
            let tid = record.worker;
            match record.event {
                TraceEvent::TaskStart { depth } => write!(
                    out,
                    "{{\"name\":\"task\",\"ph\":\"B\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"depth\":{depth}}}}}"
                )?,
                TraceEvent::TaskEnd { nodes, .. } => write!(
                    out,
                    "{{\"name\":\"task\",\"ph\":\"E\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"nodes\":{nodes}}}}}"
                )?,
                TraceEvent::RuntimeGauge {
                    active,
                    granted,
                    queued,
                    ..
                } => write!(
                    out,
                    "{{\"name\":\"runtime_gauges\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                     \"tid\":{tid},\"args\":{{\"active\":{active},\"granted\":{granted},\
                     \"queued\":{queued}}}}}"
                )?,
                TraceEvent::Poll { stack_depth } => write!(
                    out,
                    "{{\"name\":\"stack_depth\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                     \"tid\":{tid},\"args\":{{\"depth\":{stack_depth}}}}}"
                )?,
                ref event => {
                    let mut args = String::new();
                    push_event_fields(&mut args, event);
                    // `args` begins with a comma: turn the tail of a JSONL
                    // object into the body of an args object.
                    let args = args.trim_start_matches(',');
                    write!(
                        out,
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\
                         \"tid\":{tid},\"args\":{{{args}}}}}",
                        event.name()
                    )?;
                }
            }
        }
        writeln!(out)?;
        writeln!(out, "]")
    }

    fn extension(&self) -> &'static str {
        "json"
    }
}

/// Export `records` through `sink` into `dir/stem.<ext>`, creating `dir`
/// if needed.  Returns the written path.
pub fn write_trace_file(
    dir: &Path,
    stem: &str,
    sink: &dyn TraceSink,
    records: &[TraceRecord],
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.{}", sink.extension()));
    let mut file = io::BufWriter::new(std::fs::File::create(&path)?);
    sink.export(records, &mut file)?;
    file.flush()?;
    Ok(path)
}

/// A JSONL parse failure: the 1-based line number and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Strict field scanner for one canonical JSONL object: returns the
/// `(key, raw value)` pairs in order.  Only the shapes [`jsonl_line`]
/// emits are accepted — flat objects whose values are unsigned integers,
/// booleans, or simple quoted strings.
fn scan_fields(line: &str) -> Result<Vec<(&str, &str)>, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
        .ok_or_else(|| "expected a {...} object".to_string())?;
    let mut fields = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let key_start = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a quoted key at '{rest}'"))?;
        let key_end = key_start
            .find('"')
            .ok_or_else(|| "unterminated key".to_string())?;
        let key = &key_start[..key_end];
        let after_key = key_start[key_end + 1..]
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key '{key}'"))?;
        let (value, remainder) = if let Some(quoted) = after_key.strip_prefix('"') {
            let end = quoted
                .find('"')
                .ok_or_else(|| format!("unterminated string value for '{key}'"))?;
            (&quoted[..end], quoted.get(end + 1..).unwrap_or(""))
        } else {
            let end = after_key.find(',').unwrap_or(after_key.len());
            (&after_key[..end], &after_key[end..])
        };
        if value.is_empty() {
            return Err(format!("empty value for key '{key}'"));
        }
        fields.push((key, value));
        rest = match remainder.strip_prefix(',') {
            Some(next) => next,
            None if remainder.is_empty() => remainder,
            None => return Err(format!("expected ',' or end after value of '{key}'")),
        };
    }
    Ok(fields)
}

fn field<'a>(fields: &[(&str, &'a str)], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn num<T: std::str::FromStr>(fields: &[(&str, &str)], key: &str) -> Result<T, String> {
    field(fields, key)?
        .parse::<T>()
        .map_err(|_| format!("field '{key}' is not a valid number"))
}

fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let fields = scan_fields(line)?;
    let ts: u64 = num(&fields, "ts")?;
    let worker: u32 = num(&fields, "worker")?;
    let name = field(&fields, "event")?;
    let event = match name {
        "task_start" => TraceEvent::TaskStart {
            depth: num(&fields, "depth")?,
        },
        "task_end" => TraceEvent::TaskEnd {
            nodes: num(&fields, "nodes")?,
            prunes: num(&fields, "prunes")?,
            backtracks: num(&fields, "backtracks")?,
            spawns: num(&fields, "spawns")?,
            batch_pushes: num(&fields, "batch_pushes")?,
            poll_checks: num(&fields, "poll_checks")?,
            max_depth: num(&fields, "max_depth")?,
        },
        "steal_request" => TraceEvent::StealRequest {
            victim: num(&fields, "victim")?,
        },
        "steal_hit" => TraceEvent::StealHit {
            victim: num(&fields, "victim")?,
            tasks: num(&fields, "tasks")?,
            remote: match field(&fields, "remote")? {
                "true" => true,
                "false" => false,
                other => return Err(format!("field 'remote' is not a bool: '{other}'")),
            },
        },
        "steal_miss" => TraceEvent::StealMiss {
            victim: num(&fields, "victim")?,
        },
        "steal_routed" => TraceEvent::StealRouted {
            locality: num(&fields, "locality")?,
            load: num(&fields, "load")?,
        },
        "work_pushed" => TraceEvent::WorkPushed {
            locality: num(&fields, "locality")?,
            tasks: num(&fields, "tasks")?,
        },
        "steal_backoff" => TraceEvent::StealBackoff {
            locality: num(&fields, "locality")?,
            misses: num(&fields, "misses")?,
        },
        "incumbent_update" => TraceEvent::IncumbentUpdate {
            version: num(&fields, "version")?,
        },
        "speculation_commit" => TraceEvent::SpeculationCommit {
            nodes: num(&fields, "nodes")?,
        },
        "speculation_discard" => TraceEvent::SpeculationDiscard {
            nodes: num(&fields, "nodes")?,
        },
        "speculation_cancel" => TraceEvent::SpeculationCancel {
            nodes: num(&fields, "nodes")?,
        },
        "poll" => TraceEvent::Poll {
            stack_depth: num(&fields, "stack_depth")?,
        },
        "search_queued" => TraceEvent::SearchQueued {
            search_id: num(&fields, "search_id")?,
        },
        "search_granted" => TraceEvent::SearchGranted {
            search_id: num(&fields, "search_id")?,
            workers: num(&fields, "workers")?,
        },
        "search_finished" => TraceEvent::SearchFinished {
            search_id: num(&fields, "search_id")?,
        },
        "grant_grown" => TraceEvent::GrantGrown {
            search_id: num(&fields, "search_id")?,
            workers: num(&fields, "workers")?,
        },
        "grant_shrunk" => TraceEvent::GrantShrunk {
            search_id: num(&fields, "search_id")?,
            workers: num(&fields, "workers")?,
        },
        "worker_revoked" => TraceEvent::WorkerRevoked {
            search_id: num(&fields, "search_id")?,
            slot: num(&fields, "slot")?,
            latency_ns: num(&fields, "latency_ns")?,
        },
        "runtime_gauge" => TraceEvent::RuntimeGauge {
            active: num(&fields, "active")?,
            granted: num(&fields, "granted")?,
            queued: num(&fields, "queued")?,
            completed: num(&fields, "completed")?,
            peak: num(&fields, "peak")?,
        },
        other => return Err(format!("unknown event '{other}'")),
    };
    Ok(TraceRecord { ts, worker, event })
}

/// Parse a JSONL trace back into records.  Blank lines are permitted;
/// anything else that is not a canonical record line is a [`ParseError`].
pub fn read_jsonl(text: &str) -> Result<Vec<TraceRecord>, ParseError> {
    let mut records = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        records.push(parse_line(line).map_err(|message| ParseError {
            line: index + 1,
            message,
        })?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_of_each() -> Vec<TraceRecord> {
        let events = vec![
            TraceEvent::TaskStart { depth: 3 },
            TraceEvent::TaskEnd {
                nodes: 10,
                prunes: 2,
                backtracks: 4,
                spawns: 1,
                batch_pushes: 1,
                poll_checks: 2,
                max_depth: 7,
            },
            TraceEvent::StealRequest { victim: 2 },
            TraceEvent::StealHit {
                victim: 2,
                tasks: 4,
                remote: true,
            },
            TraceEvent::StealMiss {
                victim: CONTROL_WORKER,
            },
            TraceEvent::StealRouted {
                locality: 5,
                load: 17,
            },
            TraceEvent::WorkPushed {
                locality: 2,
                tasks: 3,
            },
            TraceEvent::StealBackoff {
                locality: 5,
                misses: 4,
            },
            TraceEvent::IncumbentUpdate { version: 9 },
            TraceEvent::SpeculationCommit { nodes: 100 },
            TraceEvent::SpeculationDiscard { nodes: 40 },
            TraceEvent::SpeculationCancel { nodes: 13 },
            TraceEvent::Poll { stack_depth: 5 },
            TraceEvent::SearchQueued { search_id: 1 },
            TraceEvent::SearchGranted {
                search_id: 1,
                workers: 4,
            },
            TraceEvent::SearchFinished { search_id: 1 },
            TraceEvent::GrantGrown {
                search_id: 1,
                workers: 6,
            },
            TraceEvent::GrantShrunk {
                search_id: 1,
                workers: 2,
            },
            TraceEvent::WorkerRevoked {
                search_id: 1,
                slot: 3,
                latency_ns: 12_500,
            },
            TraceEvent::RuntimeGauge {
                active: 1,
                granted: 4,
                queued: 0,
                completed: 3,
                peak: 2,
            },
        ];
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceRecord {
                ts: i as u64 * 100,
                worker: (i % 3) as u32,
                event,
            })
            .collect()
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let records = one_of_each();
        let mut out = Vec::new();
        JsonlSink.export(&records, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let parsed = read_jsonl(&text).expect("canonical output parses");
        assert_eq!(parsed, records);
    }

    #[test]
    fn malformed_lines_are_errors_with_line_numbers() {
        let good = jsonl_line(&TraceRecord {
            ts: 1,
            worker: 0,
            event: TraceEvent::Poll { stack_depth: 0 },
        });
        for bad in [
            "not json",
            "{\"ts\":1}",
            "{\"ts\":1,\"worker\":0,\"event\":\"nope\"}",
            "{\"ts\":-1,\"worker\":0,\"event\":\"poll\",\"stack_depth\":0}",
            "{\"ts\":1,\"worker\":0,\"event\":\"poll\",\"stack_depth\":}",
        ] {
            let text = format!("{good}\n{bad}\n");
            let err = read_jsonl(&text).expect_err("malformed line must fail");
            assert_eq!(err.line, 2, "error should point at the bad line: {bad}");
        }
    }

    #[test]
    fn chrome_export_emits_balanced_spans_and_metadata() {
        let records = one_of_each();
        let mut out = Vec::new();
        ChromeTraceSink.export(&records, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"ph\":\"B\""));
        assert!(text.contains("\"ph\":\"E\""));
        assert!(text.contains("\"ph\":\"M\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"thread_name\""));
        // Rough brace balance check — the file must be one JSON array.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn write_trace_file_creates_the_directory() {
        let dir = std::env::temp_dir().join("yewpar-trace-sink-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_trace_file(&dir, "t", &JsonlSink, &one_of_each()).unwrap();
        assert!(path.ends_with("t.jsonl"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_jsonl(&text).unwrap().len(), one_of_each().len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
