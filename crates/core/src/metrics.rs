//! Search execution metrics.
//!
//! Every skeleton execution returns a [`Metrics`] value aggregating
//! per-worker counters: nodes processed, prunes, backtracks, spawned tasks,
//! steals, and the elapsed wall-clock time.  The benchmark harnesses use
//! these to report workload statistics next to runtimes (useful because the
//! paper's performance anomalies — §2.1 — manifest as changes in *work*
//! rather than pure scheduling effects).

use std::time::Duration;

/// Counters collected by a single worker during a search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Nodes processed (the (accumulate)/(strengthen)/(skip) rules).
    pub nodes: u64,
    /// Subtrees pruned by the bound function (the (prune) rule).
    pub prunes: u64,
    /// Backtracks performed (the (backtrack) rule).
    pub backtracks: u64,
    /// Tasks spawned into a workpool or handed to a thief.
    pub spawns: u64,
    /// Successful steals (tasks obtained from a victim or remote pool).
    pub steals: u64,
    /// Steal attempts that returned no work.
    pub failed_steals: u64,
    /// Number of times this worker updated the global incumbent.
    pub incumbent_updates: u64,
    /// Deepest depth reached.
    pub max_depth: u64,
    /// Tasks spawned with a sequence key into the ordered workpool (Ordered
    /// coordination only).
    pub ordered_spawns: u64,
    /// Ordered pops that ran ahead of the sequential frontier: the popped
    /// task's sequence key was greater than that of a task still in flight.
    /// Zero on a single worker; quantifies speculation under parallelism.
    pub priority_inversions: u64,
    /// Nodes expanded speculatively by the Ordered coordination but discarded
    /// at commit time (their task was sequentially after the committed
    /// decision witness).  Excluded from `nodes`, which therefore stays
    /// replicable across worker counts.
    pub speculative_nodes: u64,
    /// Speculative tasks reclaimed by the Ordered coordination's cancellation
    /// signal: queued tasks purged when a pending witness was recorded,
    /// post-witness tasks skipped at pop time, and in-flight tasks that
    /// observed the broadcast witness key mid-traversal and exited early
    /// (their partial work lands in `speculative_nodes`).  Zero when
    /// cancellation is disabled or no witness is ever recorded; never affects
    /// the committed `nodes` count.
    pub cancelled_tasks: u64,
    /// Workpool lock acquisitions attributed to this worker (pushes, pops,
    /// steals and their batched variants — one count per locked pool
    /// operation, relaxed).  The batching PR's headline diagnostic: with
    /// batched spawn/pop paths this should grow far slower than `nodes`.
    /// Counted in both the threaded engine and the simulator (where it
    /// counts simulated pool operations).
    pub lock_acquisitions: u64,
    /// Non-empty batched releases: generator bursts handed to the workpool
    /// in a single operation.  `spawns / batch_pushes` is the realised
    /// amortisation factor.
    pub batch_pushes: u64,
    /// Stride-gated lifecycle poll checks actually performed (cancel-token +
    /// deadline evaluations).  With the adaptive stride this should be a
    /// small fraction of `nodes`; a regression here means the poll gate is
    /// back on the per-node path.
    pub poll_checks: u64,
    /// Tasks this worker *pushed* into a starved remote locality's mailbox
    /// (work pushing: idle ≥ threshold, queued ≈ 0 observed on the
    /// per-locality load gauges).  Zero on single-locality runs.
    pub pushed_tasks: u64,
    /// Remote steal attempts whose target locality was chosen by the load
    /// gauges (least-loaded-but-nonempty) rather than blind-random.  The
    /// victim *within* the locality stays blind-random, so this counts
    /// routing decisions, not steal hits.
    pub routed_steals: u64,
    /// Capped-exponential back-off naps taken after consecutive remote
    /// steal misses against one locality.  A high count means thieves kept
    /// probing drained localities — the gauges should have steered them.
    pub backoff_naps: u64,
}

impl WorkerMetrics {
    /// Merge another worker's counters into this one.
    pub fn merge(&mut self, other: &WorkerMetrics) {
        self.nodes += other.nodes;
        self.prunes += other.prunes;
        self.backtracks += other.backtracks;
        self.spawns += other.spawns;
        self.steals += other.steals;
        self.failed_steals += other.failed_steals;
        self.incumbent_updates += other.incumbent_updates;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.ordered_spawns += other.ordered_spawns;
        self.priority_inversions += other.priority_inversions;
        self.speculative_nodes += other.speculative_nodes;
        self.cancelled_tasks += other.cancelled_tasks;
        self.lock_acquisitions += other.lock_acquisitions;
        self.batch_pushes += other.batch_pushes;
        self.poll_checks += other.poll_checks;
        self.pushed_tasks += other.pushed_tasks;
        self.routed_steals += other.routed_steals;
        self.backoff_naps += other.backoff_naps;
    }
}

/// Aggregated metrics for a whole skeleton execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Sum (max for `max_depth`) of all per-worker counters.
    pub totals: WorkerMetrics,
    /// The individual per-worker counters, indexed by worker id.
    pub per_worker: Vec<WorkerMetrics>,
    /// Wall-clock duration of the search (excludes problem construction).
    pub elapsed: Duration,
    /// Number of workers used.
    pub workers: usize,
    /// The termination counter's outstanding-task count observed after the
    /// run.  Zero on every clean exit — completed, short-circuited,
    /// cancelled or timed out — because every spawned task is accounted
    /// exactly once (completed, discarded or drained).  A non-zero value
    /// would indicate a task-accounting leak; the failure-mode tests assert
    /// on it.
    pub outstanding_tasks: u64,
    /// Runtime-unique id of the search when it ran as a
    /// [`Runtime`](crate::runtime::Runtime) submission (matches
    /// [`SearchHandle::id`](crate::runtime::SearchHandle::id)); 0 for the
    /// blocking facade.
    pub search_id: u64,
    /// The worker count the scheduler granted at dispatch time.  For a
    /// runtime submission this is the policy's grant (which may be less
    /// than the requested `SearchConfig::workers` under
    /// [`FairShare`](crate::schedule::FairShare)); for the blocking facade
    /// it equals [`workers`](Metrics::workers).
    pub granted_workers: usize,
    /// The pool-thread slots leased to this search — **disjoint** between
    /// concurrently multiplexed searches, which is exactly what the
    /// scheduler-matrix tests assert.  Empty for the blocking facade and
    /// for single-worker grants (worker 0 runs on the driver thread, not a
    /// pool thread).
    pub granted_slots: Vec<usize>,
    /// Time the submission waited in the runtime's queue before its grant,
    /// measured on the **dispatcher's** clock (receipt → grant), so it is
    /// comparable across submitters.  Zero for the blocking facade.
    pub queue_wait: Duration,
    /// Times this search's lease was renegotiated after dispatch: one count
    /// per executed [`Grow`](crate::schedule::Adjustment::Grow) or
    /// [`Shrink`](crate::schedule::Adjustment::Shrink).  Zero under
    /// [`Fifo`](crate::schedule::Fifo) and for the blocking facade.
    pub grant_changes: u64,
    /// Workers this search gave back under cooperative revocation
    /// (acknowledged `Shrink` requests, including those issued on the way
    /// to a [`Preempt`](crate::schedule::Adjustment::Preempt)).
    pub workers_preempted: u64,
    /// Total revocation latency: the sum over acknowledged revocations of
    /// request → worker-departure time.  Divide by
    /// [`workers_preempted`](Metrics::workers_preempted) for the mean; the
    /// `components/elastic_regrant` bench tracks this against the
    /// lifecycle poll stride.
    pub revocation_latency: Duration,
}

impl Metrics {
    /// Build aggregate metrics from per-worker counters.
    pub fn from_workers(per_worker: Vec<WorkerMetrics>, elapsed: Duration) -> Self {
        let mut totals = WorkerMetrics::default();
        for w in &per_worker {
            totals.merge(w);
        }
        Metrics {
            granted_workers: per_worker.len(),
            workers: per_worker.len(),
            totals,
            per_worker,
            elapsed,
            outstanding_tasks: 0,
            search_id: 0,
            granted_slots: Vec::new(),
            queue_wait: Duration::ZERO,
            grant_changes: 0,
            workers_preempted: 0,
            revocation_latency: Duration::ZERO,
        }
    }

    /// Total nodes processed across all workers.
    pub fn nodes(&self) -> u64 {
        self.totals.nodes
    }

    /// Total tasks spawned across all workers.
    pub fn spawns(&self) -> u64 {
        self.totals.spawns
    }

    /// Nodes processed per second of wall-clock time (0 if instantaneous).
    pub fn node_throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.totals.nodes as f64 / secs
        } else {
            0.0
        }
    }

    /// Sum of every count-like counter a worker accumulated — its total
    /// recorded *activity*, whether productive (nodes, spawns) or not
    /// (failed steals, poll checks).  `max_depth` is a high-water mark, not
    /// a count, and is excluded.
    fn activity(w: &WorkerMetrics) -> u64 {
        w.nodes
            + w.prunes
            + w.backtracks
            + w.spawns
            + w.steals
            + w.failed_steals
            + w.incumbent_updates
            + w.ordered_spawns
            + w.priority_inversions
            + w.speculative_nodes
            + w.cancelled_tasks
            + w.lock_acquisitions
            + w.batch_pushes
            + w.poll_checks
            + w.pushed_tasks
            + w.routed_steals
            + w.backoff_naps
    }

    /// A crude load-balance indicator: ratio of the busiest worker's
    /// *activity* (the sum of all its count-like counters, not just
    /// `nodes`) to the mean activity (1.0 = perfectly balanced).  Falling
    /// back over every counter means a worker that spent the run stealing
    /// and failing no longer reads as perfectly idle.  For a time-resolved
    /// variant fed by the trace clock instead of counters, see
    /// [`trace::analyze::busy_time_imbalance`](crate::trace::analyze::busy_time_imbalance).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.per_worker.iter().map(Self::activity).sum();
        if self.per_worker.is_empty() || total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.per_worker.len() as f64;
        let max = self
            .per_worker
            .iter()
            .map(Self::activity)
            .max()
            .unwrap_or(0) as f64;
        max / mean
    }
}

/// A snapshot of a [`Runtime`](crate::runtime::Runtime)'s pool-wide
/// scheduler gauges (see [`Runtime::stats`](crate::runtime::Runtime::stats)).
/// Counters are cumulative since the runtime started; gauges reflect the
/// instant of the snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Searches currently running (granted workers, not yet finished).
    pub active_searches: usize,
    /// High-water mark of `active_searches` — >1 proves searches were
    /// actually multiplexed.
    pub peak_active_searches: usize,
    /// Workers currently leased out across all active searches.
    pub granted_workers: usize,
    /// Submissions waiting in the queue for a grant.
    pub queued_searches: usize,
    /// Searches that finished (including cancelled / timed-out / panicked).
    pub completed_searches: u64,
    /// Sum of every granted search's queue wait (dispatcher clock); divide
    /// by [`completed_searches`](RuntimeStats::completed_searches) for the
    /// mean.
    pub total_queue_wait: Duration,
    /// Executed lease renegotiations across all searches (one per `Grow`
    /// or `Shrink` adjustment the dispatcher carried out).  Stays zero
    /// under [`Fifo`](crate::schedule::Fifo).
    pub grant_changes: u64,
    /// Workers reclaimed through acknowledged cooperative revocations
    /// across all searches (preempted searches return their remaining
    /// lease through the normal finish path instead).
    pub workers_preempted: u64,
    /// Sum of request → acknowledgement latency over every revocation the
    /// pool has executed; divide by
    /// [`workers_preempted`](RuntimeStats::workers_preempted) for the mean.
    pub revocation_latency: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(nodes: u64, prunes: u64, max_depth: u64) -> WorkerMetrics {
        WorkerMetrics {
            nodes,
            prunes,
            max_depth,
            ..WorkerMetrics::default()
        }
    }

    #[test]
    fn merge_sums_counts_and_maxes_depth() {
        let mut a = worker(10, 2, 5);
        a.merge(&worker(7, 1, 9));
        assert_eq!(a.nodes, 17);
        assert_eq!(a.prunes, 3);
        assert_eq!(a.max_depth, 9);
    }

    #[test]
    fn merge_sums_ordered_counters() {
        let mut a = WorkerMetrics {
            ordered_spawns: 3,
            priority_inversions: 1,
            speculative_nodes: 10,
            cancelled_tasks: 2,
            ..WorkerMetrics::default()
        };
        a.merge(&WorkerMetrics {
            ordered_spawns: 4,
            priority_inversions: 2,
            speculative_nodes: 5,
            cancelled_tasks: 1,
            ..WorkerMetrics::default()
        });
        assert_eq!(a.ordered_spawns, 7);
        assert_eq!(a.priority_inversions, 3);
        assert_eq!(a.speculative_nodes, 15);
        assert_eq!(a.cancelled_tasks, 3);
    }

    #[test]
    fn merge_sums_hot_path_counters() {
        let mut a = WorkerMetrics {
            lock_acquisitions: 5,
            batch_pushes: 2,
            poll_checks: 7,
            ..WorkerMetrics::default()
        };
        a.merge(&WorkerMetrics {
            lock_acquisitions: 3,
            batch_pushes: 1,
            poll_checks: 4,
            ..WorkerMetrics::default()
        });
        assert_eq!(a.lock_acquisitions, 8);
        assert_eq!(a.batch_pushes, 3);
        assert_eq!(a.poll_checks, 11);
    }

    #[test]
    fn merge_sums_locality_counters() {
        let mut a = WorkerMetrics {
            pushed_tasks: 6,
            routed_steals: 2,
            backoff_naps: 1,
            ..WorkerMetrics::default()
        };
        a.merge(&WorkerMetrics {
            pushed_tasks: 4,
            routed_steals: 5,
            backoff_naps: 3,
            ..WorkerMetrics::default()
        });
        assert_eq!(a.pushed_tasks, 10);
        assert_eq!(a.routed_steals, 7);
        assert_eq!(a.backoff_naps, 4);
    }

    #[test]
    fn from_workers_aggregates() {
        let m = Metrics::from_workers(
            vec![worker(4, 0, 2), worker(6, 1, 3)],
            Duration::from_millis(10),
        );
        assert_eq!(m.workers, 2);
        assert_eq!(m.nodes(), 10);
        assert_eq!(m.totals.prunes, 1);
        assert_eq!(m.totals.max_depth, 3);
        assert!(m.node_throughput() > 0.0);
    }

    #[test]
    fn imbalance_of_balanced_workers_is_one() {
        let m = Metrics::from_workers(
            vec![worker(5, 0, 1), worker(5, 0, 1)],
            Duration::from_millis(1),
        );
        assert!((m.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_skew() {
        let m = Metrics::from_workers(
            vec![worker(10, 0, 1), worker(0, 0, 0)],
            Duration::from_millis(1),
        );
        assert!((m.imbalance() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_counts_unproductive_activity_too() {
        // A worker that spent the whole run stealing-and-failing used to
        // read as perfectly idle (imbalance 2.0 on two workers); with the
        // all-counter fallback the pair reads balanced.
        let thief = WorkerMetrics {
            failed_steals: 10,
            ..WorkerMetrics::default()
        };
        let m = Metrics::from_workers(vec![worker(10, 0, 1), thief], Duration::from_millis(1));
        assert!(
            (m.imbalance() - 1.0).abs() < 1e-9,
            "equal activity must read balanced, got {}",
            m.imbalance()
        );
    }

    #[test]
    fn empty_metrics_are_sane() {
        let m = Metrics::default();
        assert_eq!(m.nodes(), 0);
        assert_eq!(m.node_throughput(), 0.0);
        assert_eq!(m.imbalance(), 1.0);
    }
}
