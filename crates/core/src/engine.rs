//! The unified worker engine behind every search coordination.
//!
//! Historically each parallel coordination (Depth-Bounded, Stack-Stealing,
//! Budget) carried its own copy of the worker-spawn loop, termination
//! polling, panic ("poison") handling and metrics plumbing. This module
//! owns all of that exactly once. A coordination is now just a pair of
//! small strategy objects plugged into the engine's `run` entry point:
//!
//! * a [`WorkSource`] — where a worker's next task comes from and where
//!   tasks it gives up go (a sharded depth pool, per-worker steal channels,
//!   or a one-shot root holder for the Sequential case);
//! * a [`SpawnPolicy`] — *when* the traversal splits off work for others
//!   (eagerly above a depth cutoff, after a backtrack budget, or never).
//!
//! The engine drives the shared depth-first traversal (the (expand),
//! (backtrack), (prune) and (shortcircuit) rules) through the search-type
//! driver, polls the [`Termination`] flags, calls the source's per-step
//! hook so on-demand splitting (stack stealing) can happen mid-task, and
//! joins the workers, re-raising any worker panic. Knowledge sharing (the
//! incumbent of optimisation/decision searches) lives inside the drivers
//! and is therefore identical across coordinations by construction.
//!
//! The Ordered coordination plugs its `OrderedSource`/`OrderedPolicy` pair
//! into the same [`WorkSource`]/[`SpawnPolicy`] traits and reuses
//! `run_task`, but drives its own worker loop (`skeleton::ordered`): its
//! decision short-circuits must be *committed in sequence order* rather than
//! applied the instant a worker finds a witness, which is the one behaviour
//! this engine's loop cannot express.

use crate::sync::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::genstack::GenStack;
use crate::lifecycle::{Lifecycle, LifecycleLocal};
use crate::metrics::WorkerMetrics;
use crate::node::SearchProblem;
use crate::runtime::WorkerPool;
use crate::skeleton::driver::{Action, Driver};
use crate::termination::Termination;
use crate::trace::{TraceEvent, TraceHandle, Tracer, UNKNOWN_VICTIM};
use crate::workpool::Task;

/// How a task's (sub)search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// The subtree was fully explored (or pruned away).
    Completed,
    /// A short-circuit was requested: the whole search must stop.
    ShortCircuited,
    /// The task was cancelled mid-traversal and the worker should move on —
    /// either the work source learned the task's remaining subtree is
    /// useless (Ordered speculation sequentially after a pending decision
    /// witness, which stops only the *task*), or the whole search was
    /// stopped externally (cancel token / deadline, where the stop flag is
    /// already raised and must *not* be reported as a witness-bearing
    /// short-circuit).
    Cancelled,
}

/// Where workers obtain tasks and publish tasks for others.
///
/// A source is shared by all workers of one skeleton execution; per-worker
/// state (a shard index, a steal-request receiver, a private backlog, …)
/// lives in the associated [`WorkSource::Local`] value claimed once per
/// worker via [`WorkSource::register`].
pub trait WorkSource<P: SearchProblem>: Sync {
    /// Per-worker state. Claimed once, owned by the worker thread.
    type Local: Send;

    /// Claim worker `worker`'s local state. Called exactly once per worker,
    /// from that worker's thread, before it processes any task.
    fn register(&self, worker: usize) -> Self::Local;

    /// Install the root task before any worker starts.
    fn seed(&self, task: Task<P::Node>);

    /// Pop the next locally owned task, if any (the owner fast path).
    fn pop(&self, local: &mut Self::Local) -> Option<Task<P::Node>>;

    /// Try to obtain work that is not locally available (the steal path).
    /// Implementations record `steals` / `failed_steals` on `metrics`.
    fn acquire(
        &self,
        local: &mut Self::Local,
        term: &Termination,
        metrics: &mut WorkerMetrics,
    ) -> Option<Task<P::Node>>;

    /// Publish `tasks` so other workers can pick them up, draining the
    /// vector. Callers must have registered the tasks with the termination
    /// counter *before* calling this (see [`StepEnv::spawn`], which does
    /// both).  Taking `&mut Vec` instead of `Vec` lets the engine reuse one
    /// spawn buffer per worker for every generator burst, so the eager
    /// spawn path allocates nothing in steady state; implementations must
    /// leave the vector empty (e.g. via `drain(..)` or a batched pool
    /// push).  `metrics` lets locality-aware sources account for release
    /// bursts diverted to starved localities
    /// ([`WorkerMetrics::pushed_tasks`]).
    fn release(
        &self,
        local: &mut Self::Local,
        tasks: &mut Vec<Task<P::Node>>,
        metrics: &mut WorkerMetrics,
    );

    /// Per-expansion-step hook, called with the live generator stack of the
    /// executing task. Sources that hand out work on demand (stack
    /// stealing) answer pending steal requests here; pool-backed sources do
    /// nothing.
    fn poll(
        &self,
        local: &mut Self::Local,
        stack: &mut GenStack<'_, P>,
        term: &Termination,
        metrics: &mut WorkerMetrics,
    ) {
        let _ = (local, stack, term, metrics);
    }

    /// Discard every task still queued (called when a decision search
    /// short-circuits), returning how many were dropped.  Callers must hand
    /// the count to [`Termination::tasks_discarded`] so the outstanding-task
    /// counter still drains to zero.
    fn discard(&self) -> usize {
        0
    }

    /// Polled once per traversal step of an executing task: should the task
    /// abandon its remaining subtree?  Sources that learn mid-run that a
    /// task's work is useless (the Ordered coordination's speculation
    /// cancellation: the task's sequence key is after a pending decision
    /// witness) answer `true`, making `run_task` return a cancelled flow
    /// so the worker can be reclaimed immediately instead of burning until
    /// the commit fires.  `local` is mutable so implementations can cache
    /// whatever they need to keep this poll off shared state (the Ordered
    /// source caches the broadcast frontier per epoch).  The default never
    /// cancels.
    fn cancelled(&self, _local: &mut Self::Local) -> bool {
        false
    }

    /// Discard every task still held in a worker's private state, returning
    /// how many were dropped.  Called once per worker as its loop exits, so
    /// tasks abandoned in per-worker backlogs (Stack-Stealing) drain the
    /// outstanding counter exactly like pool-level [`discard`]s — after an
    /// external cancel or deadline, `Termination::outstanding()` therefore
    /// reaches zero for *every* coordination.  The default holds no private
    /// tasks.
    ///
    /// [`discard`]: WorkSource::discard
    fn drain_local(&self, _local: &mut Self::Local) -> usize {
        0
    }

    /// Drain the worker-attributed count of pool lock acquisitions gathered
    /// in `local` (resetting it).  Called once as a worker's loop exits and
    /// added to [`WorkerMetrics::lock_acquisitions`], so the hot path pays
    /// nothing for the diagnostic.  Sources without locked pools report 0.
    fn drain_lock_count(&self, _local: &mut Self::Local) -> u64 {
        0
    }

    /// Hand every task still held in the worker's private state back to the
    /// *survivors* of the search — called when a worker leaves an elastic
    /// grant mid-run (cooperative revocation).  The dual of
    /// [`drain_local`]: the search is still running, so nothing may be
    /// discarded or drained from the outstanding counter; tasks must go
    /// somewhere another worker can reach them (the worker's pool shard, a
    /// shared parking queue, …).  Sources whose locals hold no tasks keep
    /// the default no-op.
    ///
    /// [`drain_local`]: WorkSource::drain_local
    fn retire(&self, _local: &mut Self::Local) {}
}

/// When the depth-first traversal splits off work for other workers.
///
/// The two hooks mirror the paper's spawn rules: [`spawn_children`]
/// implements eager, placement-time splitting ((spawn-depth), Listing 2 of
/// the Depth-Bounded coordination) and [`on_step`] implements splitting
/// *during* a task's traversal ((spawn-budget), Listing 4).  On-demand
/// splitting on behalf of a thief ((spawn-stack), Listing 3) is the work
/// source's business, not the policy's, because it is driven by the thief's
/// request rather than by the victim's traversal state.
///
/// [`spawn_children`]: SpawnPolicy::spawn_children
/// [`on_step`]: SpawnPolicy::on_step
pub trait SpawnPolicy<P: SearchProblem, S: WorkSource<P>>: Sync {
    /// Should a task rooted at `depth` have its children spawned as tasks
    /// instead of being explored in place?
    fn spawn_children(&self, depth: usize) -> bool {
        let _ = depth;
        false
    }

    /// Called once per traversal step of an executing task, before the next
    /// child is generated. `task_backtracks` counts the backtracks this
    /// task performed since the policy last reset it — the Budget policy's
    /// spawn trigger.
    fn on_step(
        &self,
        env: &mut StepEnv<'_, P, S>,
        stack: &mut GenStack<'_, P>,
        task_backtracks: &mut u64,
    ) {
        let _ = (env, stack, task_backtracks);
    }
}

/// If a worker unwinds (a panicking search problem or driver), stop the
/// whole search so surviving workers exit their loops — otherwise the
/// panicked task is never marked completed, the outstanding-task counter
/// never drains, and the scope would block on the join forever instead of
/// re-raising.  Shared by the engine's worker loop and the Ordered
/// coordination's commit-aware loop.
pub(crate) struct UnwindGuard<'a>(pub(crate) &'a Termination);

impl Drop for UnwindGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.short_circuit();
        }
    }
}

/// Bounded idle backoff shared by every worker loop: a few rounds of busy
/// spinning (cheapest wake-up when work arrives within nanoseconds), then
/// scheduler yields, then exponentially growing sleeps capped well below a
/// millisecond.  An idle worker whose source is empty while tasks are still
/// outstanding therefore costs a bounded amount of CPU instead of
/// hot-spinning the pop/steal path, without adding meaningful wake-up
/// latency when work does appear.
pub(crate) struct IdleBackoff {
    rounds: u32,
}

impl IdleBackoff {
    /// Rounds of pure `spin_loop` hints before yielding.
    const SPIN_ROUNDS: u32 = 4;
    /// Rounds (cumulative) before the backoff starts sleeping.
    const YIELD_ROUNDS: u32 = 16;
    /// First sleep duration; doubles each round up to [`MAX_SLEEP`].
    ///
    /// [`MAX_SLEEP`]: IdleBackoff::MAX_SLEEP
    const FIRST_SLEEP_MICROS: u64 = 50;
    /// Ceiling on a single backoff sleep, so termination and cancellation
    /// signals are still observed promptly.
    const MAX_SLEEP: Duration = Duration::from_micros(500);

    pub(crate) fn new() -> Self {
        IdleBackoff { rounds: 0 }
    }

    /// Work was found: restart the backoff from the cheap end.
    pub(crate) fn reset(&mut self) {
        self.rounds = 0;
    }

    /// No work was found: wait a little, escalating spin → yield → sleep.
    pub(crate) fn wait(&mut self) {
        let round = self.rounds;
        self.rounds = self.rounds.saturating_add(1);
        if round < Self::SPIN_ROUNDS {
            for _ in 0..(1u32 << round) {
                std::hint::spin_loop();
            }
        } else if round < Self::YIELD_ROUNDS {
            std::thread::yield_now();
        } else {
            let doublings = (round - Self::YIELD_ROUNDS).min(8);
            let sleep =
                Duration::from_micros(Self::FIRST_SLEEP_MICROS << doublings).min(Self::MAX_SLEEP);
            std::thread::sleep(sleep);
        }
    }
}

/// The policy that never spawns: Sequential, and Stack-Stealing (where all
/// splitting happens in the source's steal-request hook).
pub(crate) struct NoSpawn;

impl<P: SearchProblem, S: WorkSource<P>> SpawnPolicy<P, S> for NoSpawn {}

/// What a [`SpawnPolicy`] sees on each step: enough to hand tasks to the
/// work source with correct termination/metrics accounting.
pub struct StepEnv<'e, P: SearchProblem, S: WorkSource<P>> {
    source: &'e S,
    local: &'e mut S::Local,
    term: &'e Termination,
    metrics: &'e mut WorkerMetrics,
}

impl<P: SearchProblem, S: WorkSource<P>> StepEnv<'_, P, S> {
    /// Spawn `tasks` into the work source, draining the vector: registers
    /// them with the termination counter first (so the outstanding count can
    /// never reach zero while they are in flight), records them as spawns
    /// and one batched push, then releases the whole burst for other workers
    /// in a single source operation.  The caller keeps the vector's
    /// capacity, so a reused spawn buffer makes this path allocation-free.
    pub fn spawn(&mut self, tasks: &mut Vec<Task<P::Node>>) {
        if tasks.is_empty() {
            return;
        }
        self.term.task_spawned(tasks.len() as u64);
        self.metrics.spawns += tasks.len() as u64;
        self.metrics.batch_pushes += 1;
        self.source.release(self.local, tasks, self.metrics);
    }
}

/// Run a search: spawn `workers` workers over `source`, splitting per
/// `policy`, and collect per-worker metrics and the elapsed wall-clock time.
///
/// A single worker runs inline on the calling thread — no spawn/join cost,
/// so `Skeleton` overhead measurements (the Table 1 experiment) compare the
/// traversal itself against hand-written baselines, and panics propagate
/// unchanged.  With several workers, panics of worker threads are detected
/// at join and re-raised here ("poison handling"), so a buggy search
/// problem cannot silently drop part of the tree.
///
/// `term` is caller-supplied so the caller can read the stop cause and the
/// outstanding-task counter after the run; `lifecycle` carries the external
/// stop conditions (cancel token, deadline), the progress sink, and an
/// optional persistent worker pool to run on instead of spawning scoped
/// threads.
pub(crate) fn run<P, D, S, Y>(
    problem: &P,
    driver: &D,
    workers: usize,
    source: S,
    policy: Y,
    term: &Termination,
    lifecycle: &Lifecycle,
) -> (Vec<WorkerMetrics>, Duration)
where
    P: SearchProblem,
    D: Driver<P>,
    S: WorkSource<P>,
    Y: SpawnPolicy<P, S>,
{
    let start = Instant::now();
    let workers = workers.max(1);
    source.seed(Task::new(problem.root(), 0));
    let all_metrics = spawn_and_join(lifecycle, workers, |worker| {
        worker_loop(problem, driver, &source, &policy, term, lifecycle, worker)
    });
    // Stragglers: a worker can release spawned tasks after another worker's
    // short-circuit already discarded the source, and then exit on the stop
    // flag without a further discard.  Drain them here so queued tasks are
    // accounted exactly once — together with the per-worker
    // [`WorkSource::drain_local`] on loop exit, `outstanding() == 0` holds
    // after every non-panicking run of every coordination, completed,
    // short-circuited, cancelled or timed out alike.
    term.tasks_discarded(source.discard() as u64);
    (all_metrics, start.elapsed())
}

/// Run `worker_fn` on `workers` worker threads and collect their metrics.
///
/// A single worker runs inline on the calling thread — no spawn/join cost,
/// and panics propagate unchanged.  With several workers and no pool on the
/// `lifecycle`, a scoped thread is spawned per worker; with a persistent
/// [`WorkerPool`] (runtime submissions), worker 0 runs inline on the
/// submitting thread and the rest are dispatched to the pool threads leased
/// by the scheduler's grant (the whole pool when no grant restricts it) —
/// no per-search thread spawn, and concurrently multiplexed searches stay
/// on disjoint threads.  Either way a worker panic is detected at join and
/// re-raised here as "a search worker panicked" ("poison handling").
/// Shared by [`run`] and the Ordered coordination's commit-aware run loop.
pub(crate) fn spawn_and_join<F>(
    lifecycle: &Lifecycle,
    workers: usize,
    worker_fn: F,
) -> Vec<WorkerMetrics>
where
    F: Fn(usize) -> WorkerMetrics + Sync,
{
    // An *elastic* grant (concurrent scheduling policy) must go through the
    // pool's elastic runner even at one worker: the dispatcher can lease
    // extra slots onto the live search at any moment, and only the elastic
    // runner's armed hook can accept them.
    if let (Some(pool), Some(grant)) = (lifecycle.pool.as_deref(), lifecycle.grant.as_ref()) {
        if let Some(core) = &grant.core {
            return pool.scoped_run_elastic(core, &grant.slots, workers, &worker_fn);
        }
    }
    if workers == 1 {
        return vec![worker_fn(0)];
    }
    // A zero-thread pool (a workers=1 runtime asked to run a multi-worker
    // search) has no threads to dispatch to — and a grant can lease zero
    // slots for the same reason; fall through to scoped threads rather
    // than dividing by zero in the pool's round-robin.
    let pool: Option<&WorkerPool> = lifecycle.pool.as_deref().filter(|p| p.size() > 0);
    if let Some(pool) = pool {
        let lease: Vec<usize> = match lifecycle.grant.as_ref() {
            Some(grant) if !grant.slots.is_empty() => grant.slots.clone(),
            Some(_) => Vec::new(),
            None => (0..pool.size()).collect(),
        };
        if !lease.is_empty() {
            return pool.scoped_run_on(&lease, workers, &worker_fn);
        }
    }
    let poisoned = AtomicBool::new(false);
    let mut all_metrics = vec![WorkerMetrics::default(); workers];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let worker_fn = &worker_fn;
            handles.push(scope.spawn(move || worker_fn(worker)));
        }
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(metrics) => all_metrics[i] = metrics,
                // ordering: written and read by this (the launching) thread
                // only, after join(); the atomic exists for the scope-closure
                // borrow, not for cross-thread publication.
                Err(_) => poisoned.store(true, Ordering::Relaxed),
            }
        }
    });
    // ordering: same-thread read of the flag set in the join loop above.
    if poisoned.load(Ordering::Relaxed) {
        panic!("a search worker panicked");
    }
    all_metrics
}

/// One worker: pop/steal tasks until the search completes, short-circuits,
/// is cancelled, or times out.
fn worker_loop<P, D, S, Y>(
    problem: &P,
    driver: &D,
    source: &S,
    policy: &Y,
    term: &Termination,
    lifecycle: &Lifecycle,
    worker: usize,
) -> WorkerMetrics
where
    P: SearchProblem,
    D: Driver<P>,
    S: WorkSource<P>,
    Y: SpawnPolicy<P, S>,
{
    let _guard = UnwindGuard(term);

    let mut local = source.register(worker);
    let mut metrics = WorkerMetrics::default();
    let mut partial = driver.new_partial();
    let mut backoff = IdleBackoff::new();
    let mut lstate = LifecycleLocal::default();
    let mut spawn_buf: Vec<Task<P::Node>> = Vec::new();
    // Set when this worker claims a pending cooperative revocation (elastic
    // grants only): it finishes (or offloads) its current task, hands its
    // private work to the survivors, and acknowledges instead of draining.
    let mut retiring = false;
    // Hoisted once per worker: when tracing is off this is `None` and every
    // emission below is a branch on a worker-local register — the
    // zero-cost-when-off guarantee the `bench_trace` A/B pins down.
    let trace = lifecycle.tracer.handle(worker as u32);

    loop {
        // Poll the external stop conditions between tasks too: an idle
        // worker in backoff must still observe a deadline even when no task
        // ever reaches it.
        lifecycle.poll(term);
        if term.finished() {
            break;
        }
        // Cooperative revocation: between tasks is the cheapest safe point
        // to leave (mid-task claims happen at `run_task`'s poll gate).
        if retiring || lifecycle.try_claim_retire(worker) {
            retiring = true;
            break;
        }
        let next = match source.pop(&mut local) {
            Some(task) => Some(task),
            None => {
                if term.all_done() {
                    break;
                }
                source.acquire(&mut local, term, &mut metrics)
            }
        };
        match next {
            Some(task) => {
                backoff.reset();
                let before = metrics;
                if let Some(t) = &trace {
                    t.emit(TraceEvent::TaskStart {
                        depth: task.depth as u32,
                    });
                }
                let flow = run_task(
                    problem,
                    driver,
                    &mut partial,
                    &mut metrics,
                    term,
                    lifecycle,
                    &mut lstate,
                    source,
                    &mut local,
                    policy,
                    task,
                    &mut spawn_buf,
                    trace.as_ref(),
                    worker,
                    Some(&mut retiring),
                );
                if let Some(t) = &trace {
                    // Per-task counter deltas: summing a drained trace's
                    // `TaskEnd` events reconstructs the exact run-task
                    // totals (the metrics-reconstruction property test).
                    t.emit(TraceEvent::TaskEnd {
                        nodes: metrics.nodes - before.nodes,
                        prunes: metrics.prunes - before.prunes,
                        backtracks: metrics.backtracks - before.backtracks,
                        spawns: metrics.spawns - before.spawns,
                        batch_pushes: metrics.batch_pushes - before.batch_pushes,
                        poll_checks: metrics.poll_checks - before.poll_checks,
                        max_depth: metrics.max_depth,
                    });
                }
                if flow == Flow::ShortCircuited {
                    term.short_circuit();
                    // Discarded tasks never run, so they must drain the
                    // outstanding counter here — otherwise `all_done()` stays
                    // false forever and only the stop flag masks it.
                    term.tasks_discarded(source.discard() as u64);
                }
                term.task_completed();
            }
            None => backoff.wait(),
        }
    }

    if retiring {
        // Cooperative revocation: the search is still running, so every
        // privately held task goes back to the survivors — nothing is
        // discarded and the outstanding counter is untouched.  The ack comes
        // last, after the partial is merged, so the dispatcher observing the
        // released slot can never race an unmerged result.
        source.retire(&mut local);
        metrics.lock_acquisitions += source.drain_lock_count(&mut local);
        driver.merge(partial);
        lifecycle.ack_retire(worker);
        return metrics;
    }

    // Tasks still in this worker's private state (a Stack-Stealing backlog
    // or a batched pop stash after a stop) never run; drain them so the
    // outstanding counter reaches zero on every exit path.
    term.tasks_discarded(source.drain_local(&mut local) as u64);
    metrics.lock_acquisitions += source.drain_lock_count(&mut local);
    driver.merge(partial);
    metrics
}

/// Execute one task: process its root node, then either spawn its children
/// (eager policies) or explore its subtree depth-first, giving the source
/// and policy a chance to split work on every expansion step.
///
/// A stop flag raised by a decision short-circuit returns
/// [`Flow::ShortCircuited`]; one raised externally (cancel token, deadline)
/// returns [`Flow::Cancelled`] so callers never mistake an abandoned task
/// for a witness-bearing one.
///
/// `spawn_buf` is the worker's reusable spawn buffer: eager child bursts are
/// collected into it and handed to the source as one batch, so the spawn
/// path costs one pool operation — and, in steady state, zero allocations —
/// per generator burst.
///
/// `retiring` is the worker's cooperative-revocation flag: when `Some`, the
/// poll gate additionally checks whether an elastic grant wants this worker
/// back, and on a claim offloads the task's entire remaining subtree to the
/// source (so the survivors pick it up) before returning a completed flow.
/// Callers whose source cannot migrate mid-task work (Ordered: offloaded
/// children would be keyed under the *current* node, corrupting the
/// replicable commit order) pass `None` and only retire between tasks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_task<P, D, S, Y>(
    problem: &P,
    driver: &D,
    partial: &mut D::Partial,
    metrics: &mut WorkerMetrics,
    term: &Termination,
    lifecycle: &Lifecycle,
    lstate: &mut LifecycleLocal,
    source: &S,
    local: &mut S::Local,
    policy: &Y,
    task: Task<P::Node>,
    spawn_buf: &mut Vec<Task<P::Node>>,
    trace: Option<&TraceHandle>,
    worker: usize,
    mut retiring: Option<&mut bool>,
) -> Flow
where
    P: SearchProblem,
    D: Driver<P>,
    S: WorkSource<P>,
    Y: SpawnPolicy<P, S>,
{
    metrics.nodes += 1;
    metrics.max_depth = metrics.max_depth.max(task.depth as u64);
    match driver.process(problem, &task.node, partial) {
        Action::Expand => {}
        Action::Prune | Action::PruneSiblings => {
            metrics.prunes += 1;
            return Flow::Completed;
        }
        Action::ShortCircuit => return Flow::ShortCircuited,
    }

    if policy.spawn_children(task.depth) {
        // Eager splitting: every child becomes a task, queued in heuristic
        // order and released as one batch. Register the spawns before
        // releasing so the termination counter can never observe an empty
        // system while tasks exist.
        spawn_buf.clear();
        spawn_buf.extend(
            problem
                .generator(&task.node)
                .map(|child| Task::new(child, task.depth + 1)),
        );
        StepEnv {
            source,
            local,
            term,
            metrics,
        }
        .spawn(spawn_buf);
        return Flow::Completed;
    }

    let mut stack = GenStack::new();
    stack.push(problem, &task.node, task.depth);
    let mut task_backtracks: u64 = 0;

    while !stack.is_empty() {
        // External lifecycle: adaptively stride-gated cancel-token/deadline
        // poll and heartbeat emission.  The stop checks below piggyback on
        // the same gate, which hoists all shared-atomic loads off the
        // per-node path: a non-poll step costs one counter decrement here.
        // Staleness is bounded by the stride ceiling, and stops raised
        // between tasks are observed by the worker loop's own poll, so a
        // task never starts after the search has finished.
        if lifecycle.on_step(lstate, term) {
            metrics.poll_checks += 1;
            if let Some(t) = trace {
                // One event per *performed* poll (the same stride gate as
                // `poll_checks`), carrying the worker's live stack depth —
                // the per-worker queue-depth sample of the gauge stream.
                t.emit(TraceEvent::Poll {
                    stack_depth: stack.depth() as u32,
                });
            }
            if term.short_circuited() {
                // An external stop is not a witness: report the task as
                // cancelled so (e.g.) the Ordered commit log never mistakes
                // a timed-out task for a decision short-circuit.
                return if term.stopped_externally() {
                    Flow::Cancelled
                } else {
                    Flow::ShortCircuited
                };
            }
            // Key-scoped cancellation (Ordered speculation): the source
            // knows this task's remaining subtree can only produce discarded
            // work.
            if source.cancelled(local) {
                return Flow::Cancelled;
            }
            // Cooperative revocation mid-task: claim a pending revocation
            // (if any), then hand the task's entire remaining subtree to the
            // survivors as spawned tasks.  Each `split_lowest` burst takes
            // the unexplored children of one frame; looping drains the whole
            // stack, so nothing is stranded — the nodes already processed
            // are counted, so dropping the stack completes this task.
            if let Some(flag) = retiring.as_deref_mut() {
                if !*flag && lifecycle.try_claim_retire(worker) {
                    *flag = true;
                }
                if *flag {
                    loop {
                        let mut tasks = stack.split_lowest(true);
                        if tasks.is_empty() {
                            break;
                        }
                        term.task_spawned(tasks.len() as u64);
                        metrics.spawns += tasks.len() as u64;
                        metrics.batch_pushes += 1;
                        source.release(local, &mut tasks, metrics);
                    }
                    return Flow::Completed;
                }
            }
        }
        // Give the source a chance to serve a thief (at most one steal
        // request per expansion step, mirroring Listing 3), then the policy
        // a chance to offload (the budget rule of Listing 4).
        source.poll(local, &mut stack, term, metrics);
        policy.on_step(
            &mut StepEnv {
                source,
                local,
                term,
                metrics,
            },
            &mut stack,
            &mut task_backtracks,
        );
        match stack.next_child() {
            Some((child, depth)) => {
                metrics.nodes += 1;
                metrics.max_depth = metrics.max_depth.max(depth as u64);
                match driver.process(problem, &child, partial) {
                    Action::Expand => stack.push(problem, &child, depth),
                    Action::Prune => metrics.prunes += 1,
                    Action::PruneSiblings => {
                        // The generator yields children in non-increasing
                        // bound order: the failed check also disposes of the
                        // unexplored later siblings.
                        metrics.prunes += 1;
                        stack.pop();
                        metrics.backtracks += 1;
                        task_backtracks += 1;
                    }
                    Action::ShortCircuit => return Flow::ShortCircuited,
                }
            }
            None => {
                stack.pop();
                metrics.backtracks += 1;
                task_backtracks += 1;
            }
        }
    }
    Flow::Completed
}

// ---------------------------------------------------------------------------
// Shared sources
// ---------------------------------------------------------------------------

use crate::workpool::{Mailbox, ShardedPool, POP_BATCH, PUSH_BATCH, STEAL_BATCH};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// The degenerate source of the Sequential coordination: a single shared
/// queue that starts with the root task; there is no one to steal from.
pub(crate) struct RootSource<N> {
    queue: Mutex<std::collections::VecDeque<Task<N>>>,
}

impl<N> RootSource<N> {
    pub(crate) fn new() -> Self {
        RootSource {
            queue: Mutex::new(std::collections::VecDeque::new()),
        }
    }
}

impl<P: SearchProblem> WorkSource<P> for RootSource<P::Node> {
    type Local = ();

    fn register(&self, _worker: usize) -> Self::Local {}

    fn seed(&self, task: Task<P::Node>) {
        self.queue.lock().push_back(task);
    }

    fn pop(&self, _local: &mut Self::Local) -> Option<Task<P::Node>> {
        self.queue.lock().pop_front()
    }

    fn acquire(
        &self,
        _local: &mut Self::Local,
        _term: &Termination,
        _metrics: &mut WorkerMetrics,
    ) -> Option<Task<P::Node>> {
        None
    }

    fn release(
        &self,
        _local: &mut Self::Local,
        tasks: &mut Vec<Task<P::Node>>,
        _metrics: &mut WorkerMetrics,
    ) {
        // Only reachable if a spawning policy is paired with this source;
        // keep every task (in heuristic order) so none is lost while
        // registered with the termination counter.
        self.queue.lock().extend(tasks.drain(..));
    }

    fn discard(&self) -> usize {
        // A search stopped before its (single) worker ever popped the root
        // still has to drain the seeded task.
        let mut queue = self.queue.lock();
        let n = queue.len();
        queue.clear();
        n
    }
}

/// A sharded order-preserving pool source: one depth-pool shard per worker.
/// Owners push and pop their own shard without contending with anyone;
/// thieves scan the other shards' atomic depth hints and take a small batch
/// from the one whose shallowest task is globally shallowest (§4.3's
/// heuristic, preserved across shards).  Shared by the Depth-Bounded and
/// Budget coordinations.
///
/// Pops and steals are batched through a per-worker *stash*: an owner pop
/// moves up to [`POP_BATCH`] tasks out of the shard under one lock, and a
/// steal takes up to [`STEAL_BATCH`], so the per-task lock cost is amortised
/// over the batch.  Stashed tasks are invisible to thieves, which is why the
/// batches are small (at most `POP_BATCH - 1` tasks per worker are ever
/// hidden), and the stash is drained into the discard accounting when the
/// worker exits, so the outstanding-task counter still reaches zero on
/// every exit path.
pub(crate) struct PoolSource<N> {
    pool: ShardedPool<N>,
    /// One starvation mailbox per locality, drained by that locality's
    /// workers in `acquire` before any steal scan.
    mailboxes: Vec<Mailbox<N>>,
    /// Gauge-directed remote steals (off: blind global hint ranking).
    routing: bool,
    /// Divert release bursts to starved remote localities.
    pushing: bool,
    /// Victim-rotation seed for the blind within-locality pick.
    seed: u64,
    tracer: Tracer,
}

/// Per-worker state of [`PoolSource`]: the worker's shard index and
/// locality, its batched pop stash, its share of the pool's
/// lock-acquisition count (drained into metrics at loop exit), its
/// idle-gauge flag, the rotation generator for blind remote victim picks,
/// and its flight-recorder handle (`None` when tracing is off).
pub(crate) struct PoolLocal<N> {
    shard: usize,
    locality: usize,
    stash: VecDeque<Task<N>>,
    locks: u64,
    /// True while this worker is counted in its locality's idle gauge.
    idle: bool,
    rng: SmallRng,
    trace: Option<TraceHandle>,
}

impl<N> PoolSource<N> {
    /// An untraced, single-locality pool source (unit tests; the
    /// coordinations always go through [`configured`](PoolSource::configured)).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(workers: usize) -> Self {
        Self::configured(workers, 1, true, true, 0, Tracer::off())
    }

    /// A pool source whose steal outcomes are recorded by `tracer`.  Steal
    /// events are emitted *here*, at the exact counter-increment sites,
    /// rather than generically in the worker loop — so events and the
    /// `steals`/`failed_steals` counters can never disagree (sources like
    /// [`RootSource`] return `None` from `acquire` without counting).
    ///
    /// `localities` groups the shards into contiguous localities with
    /// per-locality load gauges; `routing` steers remote steals to the
    /// least-loaded non-empty locality (blind victim within it) and
    /// `pushing` diverts release bursts into starved localities'
    /// mailboxes.  Both are no-ops at one locality.
    pub(crate) fn configured(
        workers: usize,
        localities: usize,
        routing: bool,
        pushing: bool,
        seed: u64,
        tracer: Tracer,
    ) -> Self {
        let pool = ShardedPool::with_localities(workers, localities);
        let mailboxes = (0..pool.localities()).map(|_| Mailbox::new()).collect();
        PoolSource {
            pool,
            mailboxes,
            routing,
            pushing,
            seed,
            tracer,
        }
    }

    /// Mark the worker idle on its locality gauge (idempotent per
    /// idle episode; the flag keeps gauge traffic off the busy path).
    fn mark_idle(&self, local: &mut PoolLocal<N>) {
        if !local.idle {
            self.pool.gauges().worker_idle(local.locality);
            local.idle = true;
        }
    }

    /// Mark the worker busy again, paired with [`mark_idle`](Self::mark_idle).
    fn mark_busy(&self, local: &mut PoolLocal<N>) {
        if local.idle {
            self.pool.gauges().worker_busy(local.locality);
            local.idle = false;
        }
    }
}

impl<P: SearchProblem> WorkSource<P> for PoolSource<P::Node> {
    type Local = PoolLocal<P::Node>;

    fn register(&self, worker: usize) -> Self::Local {
        let shard = worker % self.pool.shards();
        PoolLocal {
            shard,
            locality: self.pool.locality_of(shard),
            stash: VecDeque::with_capacity(POP_BATCH),
            locks: 0,
            idle: false,
            rng: SmallRng::seed_from_u64(
                self.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            trace: self.tracer.handle(worker as u32),
        }
    }

    fn seed(&self, task: Task<P::Node>) {
        self.pool.push(0, task);
    }

    fn pop(&self, local: &mut Self::Local) -> Option<Task<P::Node>> {
        if let Some(task) = local.stash.pop_front() {
            return Some(task);
        }
        local.locks += 1;
        self.pool
            .pop_batch_local(local.shard, POP_BATCH, &mut local.stash);
        match local.stash.pop_front() {
            Some(task) => {
                self.mark_busy(local);
                Some(task)
            }
            None => None,
        }
    }

    fn acquire(
        &self,
        local: &mut Self::Local,
        _term: &Termination,
        metrics: &mut WorkerMetrics,
    ) -> Option<Task<P::Node>> {
        self.mark_idle(local);
        // Starvation mailbox first: pushed batches are addressed to this
        // locality specifically, so they beat any steal scan.
        let mut pushed: Vec<Task<P::Node>> = Vec::new();
        if self.mailboxes[local.locality].drain(&mut pushed) > 0 {
            local.stash.extend(pushed);
            self.mark_busy(local);
            return local.stash.pop_front();
        }
        local.locks += 1;
        let stolen = if self.routing && self.pool.localities() > 1 {
            let rot = local.rng.gen_range(0..self.pool.shards());
            self.pool
                .steal_routed(local.shard, STEAL_BATCH, &mut local.stash, rot)
        } else {
            let taken = self
                .pool
                .steal_batch(local.shard, STEAL_BATCH, &mut local.stash);
            (taken > 0).then_some((taken, local.shard))
        };
        match stolen {
            Some((taken, victim)) => {
                let locality = self.pool.locality_of(victim);
                let remote = locality != local.locality;
                metrics.steals += 1;
                if let Some(t) = &local.trace {
                    // The sharded pool picks its victim shard internally, so
                    // the victim is not attributable to a worker id.
                    t.emit(TraceEvent::StealHit {
                        victim: UNKNOWN_VICTIM,
                        tasks: taken as u32,
                        remote,
                    });
                }
                if remote {
                    // A gauge-directed cross-locality steal that landed.
                    metrics.routed_steals += 1;
                    if let Some(t) = &local.trace {
                        t.emit(TraceEvent::StealRouted {
                            locality: locality as u32,
                            load: self.pool.gauges().queued(locality),
                        });
                    }
                }
                self.mark_busy(local);
                local.stash.pop_front()
            }
            None => {
                metrics.failed_steals += 1;
                if let Some(t) = &local.trace {
                    t.emit(TraceEvent::StealMiss {
                        victim: UNKNOWN_VICTIM,
                    });
                }
                None
            }
        }
    }

    fn release(
        &self,
        local: &mut Self::Local,
        tasks: &mut Vec<Task<P::Node>>,
        metrics: &mut WorkerMetrics,
    ) {
        // Work pushing: a release burst is the cheapest moment to patch a
        // starved remote locality — the tasks are already off the stack and
        // registered with the termination counter.  Divert a bounded tail
        // of the burst (the deepest, least heuristically valuable tasks)
        // into the first starved locality's mailbox; the occupancy flag
        // bounds this to one in-flight batch per locality.
        if self.pushing && self.pool.localities() > 1 && tasks.len() >= 2 {
            let localities = self.pool.localities();
            let start = local.rng.gen_range(0..localities);
            for i in 0..localities {
                let target = (start + i) % localities;
                if target == local.locality
                    || !self.pool.gauges().starved(target, 1)
                    || self.mailboxes[target].is_occupied()
                {
                    continue;
                }
                let keep = tasks.len() - (tasks.len() / 2).min(PUSH_BATCH);
                let mut diverted: Vec<Task<P::Node>> = tasks.split_off(keep);
                metrics.pushed_tasks += diverted.len() as u64;
                if let Some(t) = &local.trace {
                    t.emit(TraceEvent::WorkPushed {
                        locality: target as u32,
                        tasks: diverted.len() as u32,
                    });
                }
                self.mailboxes[target].push(&mut diverted);
                break;
            }
        }
        local.locks += 1;
        self.pool.push_batch(local.shard, tasks);
    }

    fn discard(&self) -> usize {
        // Mailbox batches are registered, queued tasks exactly like pool
        // tasks; drop them into the same accounting so `outstanding()`
        // reaches zero on cancel/deadline/short-circuit exits.
        let mailed: usize = self.mailboxes.iter().map(|m| m.clear()).sum();
        self.pool.clear() + mailed
    }

    fn drain_local(&self, local: &mut Self::Local) -> usize {
        // Leave the idle gauge balanced so post-run reconciliation (and any
        // concurrent survivor's starvation checks) never sees a phantom
        // idle worker.
        self.mark_busy(local);
        let stashed = local.stash.len();
        local.stash.clear();
        stashed
    }

    fn drain_lock_count(&self, local: &mut Self::Local) -> u64 {
        std::mem::take(&mut local.locks)
    }

    fn retire(&self, local: &mut Self::Local) {
        self.mark_busy(local);
        // Push the batched pop stash back into the worker's shard: the tasks
        // become visible to thieves again through the shard's depth hint, so
        // the survivors reach them without any extra signalling.
        if local.stash.is_empty() {
            return;
        }
        let mut tasks: Vec<Task<P::Node>> = local.stash.drain(..).collect();
        local.locks += 1;
        self.pool.push_batch(local.shard, &mut tasks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;
    use crate::objective::Enumerate;
    use crate::skeleton::driver::{DecideDriver, EnumDriver};

    /// Drive [`run`] with a fresh termination handle and an inert lifecycle,
    /// as the pre-anytime engine did.
    fn run_plain<P, D, S, Y>(
        problem: &P,
        driver: &D,
        workers: usize,
        source: S,
        policy: Y,
    ) -> (Vec<WorkerMetrics>, Duration)
    where
        P: SearchProblem,
        D: Driver<P>,
        S: WorkSource<P>,
        Y: SpawnPolicy<P, S>,
    {
        let term = Termination::new(1);
        let lifecycle = Lifecycle::inert();
        run(problem, driver, workers, source, policy, &term, &lifecycle)
    }

    /// Complete binary tree of a fixed depth; node = (depth, label).
    struct Bin {
        depth: usize,
    }

    impl SearchProblem for Bin {
        type Node = (usize, u64);
        type Gen<'a> = std::vec::IntoIter<(usize, u64)>;
        fn root(&self) -> (usize, u64) {
            (0, 1)
        }
        fn generator(&self, node: &(usize, u64)) -> Self::Gen<'_> {
            if node.0 < self.depth {
                vec![(node.0 + 1, node.1 * 2), (node.0 + 1, node.1 * 2 + 1)].into_iter()
            } else {
                vec![].into_iter()
            }
        }
    }

    impl Enumerate for Bin {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u64)) -> Sum<u64> {
            Sum(1)
        }
    }

    impl crate::objective::Optimise for Bin {
        type Score = u64;
        fn objective(&self, node: &(usize, u64)) -> u64 {
            node.1
        }
    }

    impl crate::objective::Decide for Bin {
        fn target(&self) -> u64 {
            6
        }
    }

    #[test]
    fn engine_with_root_source_is_a_full_traversal() {
        let p = Bin { depth: 10 };
        let driver = EnumDriver::<Bin>::new();
        let (metrics, _) = run_plain(&p, &driver, 1, RootSource::new(), NoSpawn);
        assert_eq!(driver.into_value(), Sum(2u64.pow(11) - 1));
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].nodes, 2u64.pow(11) - 1);
        assert_eq!(metrics[0].spawns, 0);
    }

    #[test]
    fn run_task_respects_preexisting_short_circuit() {
        let p = Bin { depth: 16 };
        let driver = EnumDriver::<Bin>::new();
        let mut partial = driver.new_partial();
        let mut metrics = WorkerMetrics::default();
        let term = Termination::new(1);
        term.short_circuit();
        let source = RootSource::new();
        WorkSource::<Bin>::register(&source, 0);
        let lifecycle = Lifecycle::inert();
        let mut lstate = LifecycleLocal::default();
        let flow = run_task(
            &p,
            &driver,
            &mut partial,
            &mut metrics,
            &term,
            &lifecycle,
            &mut lstate,
            &source,
            &mut (),
            &NoSpawn,
            Task::new(p.root(), 0),
            &mut Vec::new(),
            None,
            0,
            None,
        );
        assert_eq!(flow, Flow::ShortCircuited);
        assert!(metrics.nodes <= 2, "the poll happens before each expansion");
    }

    #[test]
    fn decision_short_circuit_discards_pool_tasks() {
        // An always-spawning policy floods the pool; the short-circuit on a
        // decision target must stop the engine without draining the tree.
        struct AlwaysSpawn;
        impl<P: SearchProblem, S: WorkSource<P>> SpawnPolicy<P, S> for AlwaysSpawn {
            fn spawn_children(&self, depth: usize) -> bool {
                depth < 6
            }
        }
        let p = Bin { depth: 14 };
        let driver = DecideDriver::<Bin>::new(6);
        let (metrics, _) = run_plain(&p, &driver, 2, PoolSource::new(2), AlwaysSpawn);
        let witness = driver.into_witness().expect("label 6 exists");
        assert!(witness.1 >= 6);
        let nodes: u64 = metrics.iter().map(|m| m.nodes).sum();
        assert!(
            nodes < 2u64.pow(15) - 1,
            "short-circuit must cut the search off early"
        );
    }

    /// One poisoned subtree among many live tasks: the panicking worker's
    /// unwind guard must stop the search so the surviving workers exit and
    /// the join re-raises, rather than spinning forever on an
    /// outstanding-task counter that can no longer drain.
    #[test]
    #[should_panic(expected = "a search worker panicked")]
    fn multi_worker_panic_is_reraised_not_deadlocked() {
        struct PartialBomb;
        impl SearchProblem for PartialBomb {
            type Node = u32;
            type Gen<'a> = std::vec::IntoIter<u32>;
            fn root(&self) -> u32 {
                0
            }
            fn generator(&self, node: &u32) -> Self::Gen<'_> {
                match *node {
                    0 => (1..=8).collect::<Vec<_>>().into_iter(),
                    5 => panic!("poisoned subtree"),
                    _ => vec![].into_iter(),
                }
            }
        }
        impl Enumerate for PartialBomb {
            type Value = Sum<u64>;
            fn value(&self, _n: &u32) -> Sum<u64> {
                Sum(1)
            }
        }
        struct SpawnRoot;
        impl<P: SearchProblem, S: WorkSource<P>> SpawnPolicy<P, S> for SpawnRoot {
            fn spawn_children(&self, depth: usize) -> bool {
                depth == 0
            }
        }
        let driver = EnumDriver::<PartialBomb>::new();
        let _ = run_plain(&PartialBomb, &driver, 4, PoolSource::new(4), SpawnRoot);
    }

    /// Seven of eight workers never receive a task (a never-spawning policy
    /// leaves the whole tree to whoever pops the root): the idle backoff
    /// must keep them from hot-spinning the steal path, so the run finishes
    /// in the same order of magnitude as the single-worker traversal rather
    /// than regressing wall-clock.
    #[test]
    fn idle_workers_back_off_without_burning_wallclock() {
        let p = Bin { depth: 15 }; // ~65k nodes, a few ms of real work
        let driver = EnumDriver::<Bin>::new();
        let start = std::time::Instant::now();
        let (metrics, _) = run_plain(&p, &driver, 8, PoolSource::new(8), NoSpawn);
        let elapsed = start.elapsed();
        assert_eq!(driver.into_value(), Sum(2u64.pow(16) - 1));
        assert_eq!(
            metrics.iter().map(|m| m.nodes).sum::<u64>(),
            2u64.pow(16) - 1
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "1-task/8-worker run took {elapsed:?}; idle workers are burning the clock"
        );
    }

    #[test]
    fn idle_backoff_escalates_and_resets() {
        let mut b = IdleBackoff::new();
        // Never panics and stays bounded over many rounds.
        for _ in 0..64 {
            b.wait();
        }
        assert!(b.rounds >= 64);
        b.reset();
        assert_eq!(b.rounds, 0);
    }

    /// A single worker runs inline, so a panicking search problem
    /// propagates its own panic straight to the caller (the multi-worker
    /// join path re-raises as "a search worker panicked" instead).
    #[test]
    #[should_panic(expected = "boom")]
    fn single_worker_panic_propagates_to_caller() {
        struct Bomb;
        impl SearchProblem for Bomb {
            type Node = u32;
            type Gen<'a> = std::vec::IntoIter<u32>;
            fn root(&self) -> u32 {
                0
            }
            fn generator(&self, node: &u32) -> Self::Gen<'_> {
                if *node > 2 {
                    panic!("boom");
                }
                vec![node + 1].into_iter()
            }
        }
        impl Enumerate for Bomb {
            type Value = Sum<u64>;
            fn value(&self, _n: &u32) -> Sum<u64> {
                Sum(1)
            }
        }
        let driver = EnumDriver::<Bomb>::new();
        let _ = run_plain(&Bomb, &driver, 1, RootSource::new(), NoSpawn);
    }
}
