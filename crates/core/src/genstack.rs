//! The generator stack: backtracking state shared by all coordinations.
//!
//! This type is public so that new coordinations (and the discrete-event
//! simulator in `yewpar-sim`) can be built from the same low-level component,
//! mirroring the paper's remark that YewPar "provides low-level components
//! … with which new skeletons can be created" (§4.3).
//!
//! Depth-first backtracking is implemented as a stack of lazy node
//! generators (paper §4.1): advancing the top generator corresponds to the
//! (expand) rule, popping an exhausted generator to the (backtrack) rule.
//! The stack also identifies which subtrees to give away when splitting work
//! — the Budget and Stack-Stealing coordinations scan it bottom-up and hand
//! out the *lowest-depth* unexplored children, which are heuristically the
//! largest remaining pieces of work.

use std::iter::Peekable;

use crate::node::SearchProblem;
use crate::workpool::Task;

/// One stack frame: the (peekable) generator of a node's children, plus the
/// depth of the children it yields.
#[allow(explicit_outlives_requirements)]
struct Frame<'p, P: SearchProblem + 'p> {
    gen: Peekable<P::Gen<'p>>,
    child_depth: usize,
}

/// A stack of lazy node generators.
#[allow(explicit_outlives_requirements)]
pub struct GenStack<'p, P: SearchProblem + 'p> {
    frames: Vec<Frame<'p, P>>,
}

impl<'p, P: SearchProblem + 'p> Default for GenStack<'p, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'p, P: SearchProblem + 'p> GenStack<'p, P> {
    /// An empty stack.
    pub fn new() -> Self {
        GenStack { frames: Vec::new() }
    }

    /// Push a generator for `node`'s children; `node_depth` is the depth of
    /// `node` itself (children are one level deeper).
    pub fn push(&mut self, problem: &'p P, node: &P::Node, node_depth: usize) {
        self.frames.push(Frame {
            gen: problem.generator(node).peekable(),
            child_depth: node_depth + 1,
        });
    }

    /// Advance the top generator: the next unexplored child and its depth.
    /// Returns `None` when the top generator is exhausted (time to backtrack).
    pub fn next_child(&mut self) -> Option<(P::Node, usize)> {
        let frame = self.frames.last_mut()?;
        frame.gen.next().map(|n| (n, frame.child_depth))
    }

    /// Drop the (exhausted) top generator.  Returns `false` if the stack was
    /// already empty.
    pub fn pop(&mut self) -> bool {
        self.frames.pop().is_some()
    }

    /// True when no generators remain.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Number of generators on the stack.
    #[allow(dead_code)]
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Split off work for another worker: scan the stack bottom-up for the
    /// first generator with unexplored children (the lowest-depth work) and
    /// remove either one child (`chunked == false`, the (spawn-stack) rule)
    /// or every remaining child (`chunked == true`, also the (spawn-budget)
    /// rule), preserving their heuristic order.
    ///
    /// Returns an empty vector when the stack holds no unexplored children.
    pub fn split_lowest(&mut self, chunked: bool) -> Vec<Task<P::Node>> {
        for frame in self.frames.iter_mut() {
            if frame.gen.peek().is_some() {
                let depth = frame.child_depth;
                return if chunked {
                    frame.gen.by_ref().map(|n| Task::new(n, depth)).collect()
                } else {
                    frame
                        .gen
                        .next()
                        .map(|n| vec![Task::new(n, depth)])
                        .unwrap_or_default()
                };
            }
        }
        Vec::new()
    }

    /// True if any generator on the stack still has unexplored children.
    #[allow(dead_code)]
    pub fn has_unexplored(&mut self) -> bool {
        self.frames.iter_mut().any(|f| f.gen.peek().is_some())
    }

    /// Depth of the children [`split_lowest`](Self::split_lowest) would take:
    /// the first bottom-up generator with unexplored children.  `None` when
    /// the stack holds no stealable work.  This is the steal-quality hint a
    /// victim advertises — shallower means a heuristically bigger subtree.
    pub fn steal_depth(&mut self) -> Option<usize> {
        self.frames
            .iter_mut()
            .find_map(|f| f.gen.peek().is_some().then_some(f.child_depth))
    }

    /// Depth of the bottom generator's children — an O(1) lower bound on
    /// [`steal_depth`](Self::steal_depth) that never touches the lazy
    /// generators, cheap enough for the threaded engine to publish as its
    /// work hint once per task.  `None` when the stack is empty.
    pub fn base_depth(&self) -> Option<usize> {
        self.frames.first().map(|f| f.child_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ternary tree of the given depth; node = (depth, index-within-parent).
    struct Ternary {
        depth: usize,
    }

    impl SearchProblem for Ternary {
        type Node = (usize, usize);
        type Gen<'a> = std::vec::IntoIter<(usize, usize)>;
        fn root(&self) -> (usize, usize) {
            (0, 0)
        }
        fn generator(&self, node: &(usize, usize)) -> Self::Gen<'_> {
            if node.0 < self.depth {
                (0..3)
                    .map(|i| (node.0 + 1, i))
                    .collect::<Vec<_>>()
                    .into_iter()
            } else {
                vec![].into_iter()
            }
        }
    }

    #[test]
    fn expand_and_backtrack_walk_the_whole_tree() {
        let p = Ternary { depth: 3 };
        let mut stack = GenStack::new();
        stack.push(&p, &p.root(), 0);
        let mut visited = 1; // root
        while !stack.is_empty() {
            match stack.next_child() {
                Some((child, depth)) => {
                    visited += 1;
                    stack.push(&p, &child, depth);
                }
                None => {
                    stack.pop();
                }
            }
        }
        assert_eq!(visited, 1 + 3 + 9 + 27);
    }

    #[test]
    fn split_lowest_takes_from_the_bottom_frame() {
        let p = Ternary { depth: 3 };
        let mut stack = GenStack::new();
        stack.push(&p, &p.root(), 0);
        // Descend one branch: take child (1,0), push its generator.
        let (c, d) = stack.next_child().unwrap();
        assert_eq!((c, d), ((1, 0), 1));
        stack.push(&p, &c, d);
        // The bottom frame still holds children (1,1) and (1,2): a single
        // (non-chunked) split must hand out (1,1) — depth-1 work.
        let stolen = stack.split_lowest(false);
        assert_eq!(stolen, vec![Task::new((1, 1), 1)]);
        // A chunked split now takes the rest of that frame.
        let stolen = stack.split_lowest(true);
        assert_eq!(stolen, vec![Task::new((1, 2), 1)]);
        // Next splits come from the deeper frame.
        let stolen = stack.split_lowest(true);
        assert_eq!(stolen.len(), 3);
        assert!(stolen.iter().all(|t| t.depth == 2));
        // Nothing left anywhere.
        assert!(stack.split_lowest(true).is_empty());
        assert!(!stack.has_unexplored());
    }

    #[test]
    fn split_on_empty_stack_is_empty() {
        let p = Ternary { depth: 1 };
        let mut stack: GenStack<'_, Ternary> = GenStack::new();
        assert!(stack.split_lowest(true).is_empty());
        stack.push(&p, &(1, 0), 1); // leaf: generator is empty
        assert!(stack.split_lowest(false).is_empty());
        assert!(!stack.has_unexplored());
    }

    #[test]
    fn splitting_does_not_disturb_the_top_of_stack_traversal() {
        let p = Ternary { depth: 2 };
        let mut stack = GenStack::new();
        stack.push(&p, &p.root(), 0);
        let (c, d) = stack.next_child().unwrap();
        stack.push(&p, &c, d);
        // Steal everything at the lowest depth.
        let _ = stack.split_lowest(true);
        // The deeper frame must still yield its three children in order.
        let mut seq = Vec::new();
        while let Some((child, _)) = stack.next_child() {
            seq.push(child.1);
        }
        assert_eq!(seq, vec![0, 1, 2]);
    }
}
