//! Global knowledge management: incumbents and bound sharing.
//!
//! Optimisation and decision searches share the best solution found so far
//! (the *incumbent*) between workers so that the bound function can prune
//! subtrees that cannot beat it.  The paper shares bounds through HPX's
//! global address space and broadcasts updates to localities, tolerating
//! stale local copies at the cost of missed pruning (§4.3, "Knowledge
//! Management").
//!
//! In this shared-memory implementation the incumbent lives behind a
//! [`parking_lot::RwLock`] guarded by a cheap atomic *version* counter:
//! workers keep a [`BoundCache`] holding the last score they saw and refresh
//! it only when the version changes, so the hot pruning path is a single
//! relaxed atomic load.  Exactly like the paper's design, a stale cache never
//! affects correctness — only pruning opportunity.

use crate::sync::{AtomicU64, Ordering};
use parking_lot::RwLock;

/// The shared incumbent of an optimisation or decision search.
#[derive(Debug)]
pub struct Incumbent<N, S> {
    best: RwLock<Option<(S, N)>>,
    version: AtomicU64,
}

impl<N: Clone, S: Ord + Clone> Default for Incumbent<N, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Clone, S: Ord + Clone> Incumbent<N, S> {
    /// An incumbent with no witness yet.
    pub fn new() -> Self {
        Incumbent {
            best: RwLock::new(None),
            version: AtomicU64::new(0),
        }
    }

    /// Current update count.  Incremented every time the incumbent improves;
    /// used by [`BoundCache`] to avoid locking on the hot path.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Attempt to strengthen the incumbent (the (strengthen) rule): the
    /// update succeeds only if `score` is strictly greater than the current
    /// best.  Returns whether the incumbent was replaced.
    pub fn strengthen(&self, score: S, node: &N) -> bool {
        // Fast path: read lock to reject dominated candidates without
        // contending on the write lock.
        {
            let guard = self.best.read();
            if let Some((best, _)) = guard.as_ref() {
                if score <= *best {
                    return false;
                }
            }
        }
        let mut guard = self.best.write();
        match guard.as_ref() {
            Some((best, _)) if score <= *best => false,
            _ => {
                *guard = Some((score, node.clone()));
                self.version.fetch_add(1, Ordering::AcqRel);
                true
            }
        }
    }

    /// The current best score, if any solution has been recorded.
    pub fn best_score(&self) -> Option<S> {
        self.best.read().as_ref().map(|(s, _)| s.clone())
    }

    /// The current best (score, witness) pair, if any.
    pub fn snapshot(&self) -> Option<(S, N)> {
        self.best.read().clone()
    }

    /// Seed the incumbent with an initial solution (e.g. the root node, as in
    /// the paper's initial configuration `{ϵ}`).  Uses [`strengthen`](Self::strengthen)
    /// semantics, so a weaker seed never overwrites a stronger incumbent.
    pub fn seed(&self, score: S, node: &N) {
        self.strengthen(score, node);
    }
}

/// A per-worker cache of the incumbent's score.
///
/// `refresh` is O(1) when the incumbent has not changed since the last call,
/// which is the common case on the pruning hot path.
#[derive(Debug, Default)]
pub struct BoundCache<S> {
    seen_version: u64,
    score: Option<S>,
}

impl<S: Clone> BoundCache<S> {
    /// An empty cache (no incumbent observed yet).
    pub fn new() -> Self {
        BoundCache {
            seen_version: 0,
            score: None,
        }
    }

    /// Return the freshest incumbent score, refreshing from `incumbent` only
    /// if its version moved since the last refresh.
    pub fn refresh<N: Clone>(&mut self, incumbent: &Incumbent<N, S>) -> Option<&S>
    where
        S: Ord,
    {
        let v = incumbent.version();
        if v != self.seen_version {
            self.seen_version = v;
            self.score = incumbent.best_score();
        }
        self.score.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn strengthen_only_improves() {
        let inc: Incumbent<u32, u32> = Incumbent::new();
        assert!(inc.strengthen(5, &50));
        assert!(
            !inc.strengthen(5, &51),
            "equal score must not replace the witness"
        );
        assert!(!inc.strengthen(3, &30));
        assert!(inc.strengthen(9, &90));
        assert_eq!(inc.snapshot(), Some((9, 90)));
        assert_eq!(inc.best_score(), Some(9));
    }

    #[test]
    fn version_counts_updates_only() {
        let inc: Incumbent<u32, u32> = Incumbent::new();
        assert_eq!(inc.version(), 0);
        inc.strengthen(1, &1);
        inc.strengthen(1, &2);
        inc.strengthen(2, &3);
        assert_eq!(inc.version(), 2);
    }

    #[test]
    fn bound_cache_tracks_version() {
        let inc: Incumbent<u32, u32> = Incumbent::new();
        let mut cache = BoundCache::new();
        assert_eq!(cache.refresh(&inc), None);
        inc.strengthen(4, &40);
        assert_eq!(cache.refresh(&inc), Some(&4));
        // No update: cached value returned without re-reading the lock.
        assert_eq!(cache.refresh(&inc), Some(&4));
        inc.strengthen(8, &80);
        assert_eq!(cache.refresh(&inc), Some(&8));
    }

    #[test]
    fn concurrent_strengthen_keeps_maximum() {
        let inc: Arc<Incumbent<u64, u64>> = Arc::new(Incumbent::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let inc = Arc::clone(&inc);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let score = t * 1000 + i;
                        inc.strengthen(score, &score);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(inc.best_score(), Some(3999));
        let (s, n) = inc.snapshot().unwrap();
        assert_eq!(s, n, "witness must correspond to its score");
    }

    #[test]
    fn seed_respects_existing_stronger_incumbent() {
        let inc: Incumbent<u32, u32> = Incumbent::new();
        inc.strengthen(10, &1);
        inc.seed(2, &2);
        assert_eq!(inc.snapshot(), Some((10, 1)));
    }
}
