//! Sequential search coordination (paper Listing 2).
//!
//! A single worker performs a depth-first traversal from the root using a
//! stack of lazy node generators.  This module also provides
//! [`explore_subtree`], the sequential inner loop reused by the parallel
//! coordinations once a task is small enough (or deep enough) to be explored
//! without further splitting.

use std::time::{Duration, Instant};

use super::driver::{Action, Driver};
use crate::genstack::GenStack;
use crate::metrics::WorkerMetrics;
use crate::node::SearchProblem;
use crate::termination::Termination;

/// How a (sub)search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// The subtree was fully explored (or pruned away).
    Completed,
    /// A short-circuit was requested: the caller must stop the whole search.
    ShortCircuited,
}

/// Run the Sequential skeleton: process the root and explore its subtree in
/// a single worker.
pub(crate) fn run<P, D>(problem: &P, driver: &D) -> (Vec<WorkerMetrics>, Duration)
where
    P: SearchProblem,
    D: Driver<P>,
{
    let start = Instant::now();
    let mut metrics = WorkerMetrics::default();
    let mut partial = driver.new_partial();
    let root = problem.root();
    let _ = explore_subtree(problem, driver, &mut partial, &mut metrics, None, &root, 0);
    driver.merge(partial);
    (vec![metrics], start.elapsed())
}

/// Depth-first exploration of the subtree rooted at `node` (which is
/// processed first), with no work splitting.
///
/// If `term` is provided the loop polls its short-circuit flag so that a
/// decision target found by another worker stops this worker promptly.
pub(crate) fn explore_subtree<P, D>(
    problem: &P,
    driver: &D,
    partial: &mut D::Partial,
    metrics: &mut WorkerMetrics,
    term: Option<&Termination>,
    node: &P::Node,
    node_depth: usize,
) -> Flow
where
    P: SearchProblem,
    D: Driver<P>,
{
    metrics.nodes += 1;
    metrics.max_depth = metrics.max_depth.max(node_depth as u64);
    match driver.process(problem, node, partial) {
        Action::Expand => {}
        Action::Prune | Action::PruneSiblings => {
            metrics.prunes += 1;
            return Flow::Completed;
        }
        Action::ShortCircuit => return Flow::ShortCircuited,
    }

    let mut stack = GenStack::new();
    stack.push(problem, node, node_depth);
    while !stack.is_empty() {
        if let Some(term) = term {
            if term.short_circuited() {
                return Flow::ShortCircuited;
            }
        }
        match stack.next_child() {
            Some((child, depth)) => {
                metrics.nodes += 1;
                metrics.max_depth = metrics.max_depth.max(depth as u64);
                match driver.process(problem, &child, partial) {
                    Action::Expand => stack.push(problem, &child, depth),
                    Action::Prune => metrics.prunes += 1,
                    Action::PruneSiblings => {
                        // The generator yields children in non-increasing
                        // bound order: the failed check also disposes of the
                        // unexplored later siblings.
                        metrics.prunes += 1;
                        stack.pop();
                        metrics.backtracks += 1;
                    }
                    Action::ShortCircuit => return Flow::ShortCircuited,
                }
            }
            None => {
                stack.pop();
                metrics.backtracks += 1;
            }
        }
    }
    Flow::Completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;
    use crate::objective::{Decide, Enumerate, Optimise};
    use crate::skeleton::driver::{DecideDriver, EnumDriver, OptimDriver};

    /// Complete binary tree of a fixed depth; node = (depth, label).
    struct Bin {
        depth: usize,
    }

    impl SearchProblem for Bin {
        type Node = (usize, u64);
        type Gen<'a> = std::vec::IntoIter<(usize, u64)>;
        fn root(&self) -> (usize, u64) {
            (0, 1)
        }
        fn generator(&self, node: &(usize, u64)) -> Self::Gen<'_> {
            if node.0 < self.depth {
                vec![(node.0 + 1, node.1 * 2), (node.0 + 1, node.1 * 2 + 1)].into_iter()
            } else {
                vec![].into_iter()
            }
        }
    }

    impl Enumerate for Bin {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u64)) -> Sum<u64> {
            Sum(1)
        }
    }

    impl Optimise for Bin {
        type Score = u64;
        fn objective(&self, node: &(usize, u64)) -> u64 {
            node.1
        }
    }

    impl Decide for Bin {
        fn target(&self) -> u64 {
            6
        }
    }

    #[test]
    fn sequential_counts_complete_binary_tree() {
        let p = Bin { depth: 10 };
        let driver = EnumDriver::<Bin>::new();
        let (metrics, _) = run(&p, &driver);
        assert_eq!(driver.into_value(), Sum(2u64.pow(11) - 1));
        assert_eq!(metrics[0].nodes, 2u64.pow(11) - 1);
        assert_eq!(metrics[0].max_depth, 10);
        assert!(metrics[0].backtracks > 0);
    }

    #[test]
    fn sequential_finds_the_maximum_label() {
        let p = Bin { depth: 6 };
        let driver = OptimDriver::<Bin>::new();
        let (_, _) = run(&p, &driver);
        // Deepest-rightmost label is 2^(d+1) - 1.
        assert_eq!(driver.into_best().map(|(_, s)| s), Some(2u64.pow(7) - 1));
    }

    #[test]
    fn sequential_decision_short_circuits_before_visiting_everything() {
        let p = Bin { depth: 12 };
        let driver = DecideDriver::<Bin>::new(6);
        let (metrics, _) = run(&p, &driver);
        let witness = driver.into_witness().expect("label 6 exists in the tree");
        assert!(witness.1 >= 6);
        // Label 6 is found on the left-ish side of the tree quickly: the
        // short-circuit must avoid exploring the vast majority of nodes.
        assert!(
            metrics[0].nodes < 100,
            "expected early termination, visited {} nodes",
            metrics[0].nodes
        );
    }

    #[test]
    fn explore_subtree_respects_external_short_circuit() {
        let p = Bin { depth: 16 };
        let driver = EnumDriver::<Bin>::new();
        let mut partial = driver.new_partial();
        let mut metrics = WorkerMetrics::default();
        let term = Termination::new(1);
        term.short_circuit();
        let flow = explore_subtree(&p, &driver, &mut partial, &mut metrics, Some(&term), &p.root(), 0);
        assert_eq!(flow, Flow::ShortCircuited);
        assert!(metrics.nodes <= 2, "the poll happens before each expansion");
    }
}
