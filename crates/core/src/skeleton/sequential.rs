//! Sequential search coordination (paper Listing 2).
//!
//! The degenerate instance of the unified engine (`crate::engine`): one
//! worker, a work source holding exactly the root task, and a policy that
//! never spawns.  The engine's generic task loop then *is* the classic
//! depth-first traversal over a stack of lazy node generators.

use std::time::Duration;

use crate::engine::{self, NoSpawn, RootSource};
use crate::lifecycle::Lifecycle;
use crate::metrics::WorkerMetrics;
use crate::node::SearchProblem;
use crate::skeleton::driver::Driver;
use crate::termination::Termination;

/// Run the Sequential skeleton: explore the whole tree in a single worker.
pub(crate) fn run<P, D>(
    problem: &P,
    driver: &D,
    term: &Termination,
    lifecycle: &Lifecycle,
) -> (Vec<WorkerMetrics>, Duration)
where
    P: SearchProblem,
    D: Driver<P>,
{
    engine::run(
        problem,
        driver,
        1,
        RootSource::new(),
        NoSpawn,
        term,
        lifecycle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;
    use crate::objective::{Decide, Enumerate, Optimise};
    use crate::skeleton::driver::{DecideDriver, EnumDriver, OptimDriver};

    fn run_plain<P, D>(problem: &P, driver: &D) -> (Vec<WorkerMetrics>, Duration)
    where
        P: SearchProblem,
        D: Driver<P>,
    {
        run(problem, driver, &Termination::new(1), &Lifecycle::inert())
    }

    /// Complete binary tree of a fixed depth; node = (depth, label).
    struct Bin {
        depth: usize,
    }

    impl SearchProblem for Bin {
        type Node = (usize, u64);
        type Gen<'a> = std::vec::IntoIter<(usize, u64)>;
        fn root(&self) -> (usize, u64) {
            (0, 1)
        }
        fn generator(&self, node: &(usize, u64)) -> Self::Gen<'_> {
            if node.0 < self.depth {
                vec![(node.0 + 1, node.1 * 2), (node.0 + 1, node.1 * 2 + 1)].into_iter()
            } else {
                vec![].into_iter()
            }
        }
    }

    impl Enumerate for Bin {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u64)) -> Sum<u64> {
            Sum(1)
        }
    }

    impl Optimise for Bin {
        type Score = u64;
        fn objective(&self, node: &(usize, u64)) -> u64 {
            node.1
        }
    }

    impl Decide for Bin {
        fn target(&self) -> u64 {
            6
        }
    }

    #[test]
    fn sequential_counts_complete_binary_tree() {
        let p = Bin { depth: 10 };
        let driver = EnumDriver::<Bin>::new();
        let (metrics, _) = run_plain(&p, &driver);
        assert_eq!(driver.into_value(), Sum(2u64.pow(11) - 1));
        assert_eq!(metrics[0].nodes, 2u64.pow(11) - 1);
        assert_eq!(metrics[0].max_depth, 10);
        assert!(metrics[0].backtracks > 0);
    }

    #[test]
    fn sequential_finds_the_maximum_label() {
        let p = Bin { depth: 6 };
        let driver = OptimDriver::<Bin>::new();
        let (_, _) = run_plain(&p, &driver);
        // Deepest-rightmost label is 2^(d+1) - 1.
        assert_eq!(driver.into_best().map(|(_, s)| s), Some(2u64.pow(7) - 1));
    }

    #[test]
    fn sequential_decision_short_circuits_before_visiting_everything() {
        let p = Bin { depth: 12 };
        let driver = DecideDriver::<Bin>::new(6);
        let (metrics, _) = run_plain(&p, &driver);
        let witness = driver.into_witness().expect("label 6 exists in the tree");
        assert!(witness.1 >= 6);
        // Label 6 is found on the left-ish side of the tree quickly: the
        // short-circuit must avoid exploring the vast majority of nodes.
        assert!(
            metrics[0].nodes < 100,
            "expected early termination, visited {} nodes",
            metrics[0].nodes
        );
    }

    #[test]
    fn sequential_never_spawns_or_steals() {
        let p = Bin { depth: 8 };
        let driver = EnumDriver::<Bin>::new();
        let (metrics, _) = run_plain(&p, &driver);
        assert_eq!(metrics[0].spawns, 0);
        assert_eq!(metrics[0].steals, 0);
    }
}
