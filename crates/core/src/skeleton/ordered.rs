//! Ordered (replicable) search coordination.
//!
//! The four PR-1 coordinations trade search order for load balance: whichever
//! worker is free grabs whatever task the heuristic ranks best *right now*,
//! so the set of expanded nodes varies run to run and worker count to worker
//! count (the paper's §2.1 performance anomalies).  The Ordered coordination
//! instead processes subtrees in **sequential (discrepancy) order** and
//! commits decision short-circuits in that order, making the expanded-node
//! count of a decision search a pure function of the instance — identical
//! across 1, 2, 4, … workers, and identical to the Sequential skeleton.
//!
//! Three mechanisms cooperate:
//!
//! 1. **Sequence-keyed spawning** ([`OrderedPolicy`] + [`OrderedSource`]):
//!    the children of every node shallower than `spawn_depth` become tasks
//!    tagged with their [`SeqKey`] (path of heuristic child indices).  The
//!    tasks live in a global [`OrderedPool`], and every pop takes the
//!    smallest key — so the leftmost (sequential-order) frontier task is
//!    always the next one issued, and the worker holding the smallest
//!    in-flight key plays the role of the pinned sequential worker at any
//!    instant.  With one worker the pop sequence *is* depth-first preorder.
//! 2. **Speculation with in-order commit**: spare workers run later subtrees
//!    speculatively.  A witness found by a task does **not** stop the search
//!    immediately; it is recorded, and the stop is committed only once every
//!    task with a smaller sequence key has retired without finding an
//!    earlier witness.  Tasks sequentially after the committed witness are
//!    aborted and their partial work is reported as
//!    [`speculative_nodes`](crate::metrics::WorkerMetrics::speculative_nodes)
//!    instead of `nodes` — committed metrics never exceed the Sequential
//!    skeleton's on a decision search.
//! 3. **Deterministic task traces**: a decision search prunes against the
//!    fixed target (never the racy incumbent), so each task's committed
//!    trace — full subtree, pruned, or stopped at its first witness — is a
//!    pure function of the task.  Summing committed traces is therefore
//!    replicable.
//!
//! A fourth mechanism reclaims the cores speculation would otherwise waste:
//!
//! 4. **Key-scoped cancellation** (on by default,
//!    [`SearchConfig::cancel_speculation`]): the moment a pending witness is
//!    recorded, every *queued* task with a later sequence key is purged from
//!    the pool, and the witness key is broadcast so every *in-flight* task
//!    with a later key observes it on its next traversal step (the engine's
//!    per-step poll) and exits with [`Flow::Cancelled`].  Cancelled work is
//!    reported via
//!    [`cancelled_tasks`](crate::metrics::WorkerMetrics::cancelled_tasks)
//!    and its partial node count via `speculative_nodes`; the committed
//!    count is untouched because only keys strictly after the pending
//!    witness — which can only move *earlier* — are ever cancelled, and
//!    those are exactly the tasks the commit would discard anyway.
//!
//! The coordination reuses the engine's [`run_task`] traversal (so the
//! (expand)/(backtrack)/(prune)/(shortcircuit) rules, spawn accounting and
//! per-step polling stay identical to every other coordination) but drives
//! its own worker loop: the engine's loop applies short-circuits instantly,
//! which is precisely what Ordered must not do.
//!
//! [`run_task`]: crate::engine::run_task
//! [`SearchConfig::cancel_speculation`]: crate::params::SearchConfig::cancel_speculation

use crate::sync::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::engine::{self, Flow, IdleBackoff, SpawnPolicy, UnwindGuard, WorkSource};
use crate::lifecycle::{Lifecycle, LifecycleLocal};
use crate::metrics::WorkerMetrics;
use crate::node::SearchProblem;
use crate::params::SearchConfig;
use crate::skeleton::driver::Driver;
use crate::termination::Termination;
use crate::trace::{TraceEvent, Tracer};
use crate::workpool::{KeyArena, OrderedPool, SeqKey, Task};

/// Spawn the children of every node shallower than `spawn_depth`, exactly
/// like the Depth-Bounded policy — the ordering lives in the source, not
/// the policy.
pub(crate) struct OrderedPolicy {
    spawn_depth: usize,
}

impl<P: SearchProblem, S: WorkSource<P>> SpawnPolicy<P, S> for OrderedPolicy {
    fn spawn_children(&self, depth: usize) -> bool {
        depth < self.spawn_depth
    }
}

/// What one finished task leaves behind for the commit log.
struct TaskRecord {
    key: SeqKey,
    worker: usize,
    metrics: WorkerMetrics,
}

/// Shared commit state: which tasks are running, which witness (if any) is
/// pending, and the per-task metrics needed to assemble the committed totals.
struct CommitLog {
    /// Sequence keys of issued-but-not-retired tasks.
    in_flight: std::collections::BTreeSet<SeqKey>,
    /// Smallest sequence key that produced a decision witness so far.
    witness: Option<SeqKey>,
    /// True once the witness has been committed and the search stopped.
    committed: bool,
    /// Per-task metrics of every retired task, speculative or not.
    records: Vec<TaskRecord>,
}

/// Per-worker state of the ordered source.
pub(crate) struct OrderedLocal {
    /// The [`OrderedPool`] insertion shard this worker releases through, so
    /// concurrent spawn bursts never contend on one insertion lock.
    shard: usize,
    /// Recycling arena for [`SeqKey`] path allocations: every key this
    /// worker retires (skipped task, replaced `current`) feeds the next
    /// batch of minted child keys.
    arena: KeyArena,
    /// Sequence key of the task this worker is currently executing.
    current: SeqKey,
    /// Child index counter for tasks released by the current task.
    next_child: u32,
    /// Pops that ran ahead of a smaller in-flight key.
    inversions: u64,
    /// Tasks this worker released with a sequence key.
    ordered_spawns: u64,
    /// Speculative tasks this worker reclaimed: queued tasks it purged or
    /// skipped at pop time, plus its own in-flight tasks that exited early.
    cancelled: u64,
    /// The [`CancelSignal`] epoch this worker last synchronised with
    /// (0 = never; the signal starts at epoch 0 = no witness).
    cancel_epoch: u64,
    /// This worker's cached copy of the broadcast witness frontier, valid
    /// for `cancel_epoch`.
    cancel_frontier: Option<SeqKey>,
}

/// The broadcast half of speculation cancellation: the smallest pending
/// witness key, readable with one atomic epoch load on the per-step poll.
/// Workers cache the frontier in their [`OrderedLocal`] and re-read the
/// mutex-protected key only when the epoch moves, so the commit-critical
/// tasks (the ones the pending witness is waiting on) never contend on a
/// shared lock per node expansion — at worst they cancel one epoch late,
/// which costs a few speculative steps, never correctness.
struct CancelSignal {
    /// The on/off knob ([`SearchConfig::cancel_speculation`]).
    ///
    /// [`SearchConfig::cancel_speculation`]: crate::params::SearchConfig::cancel_speculation
    enabled: bool,
    /// Bumped after every frontier move; 0 means no witness broadcast yet.
    epoch: AtomicU64,
    /// The smallest witness key broadcast so far.  Only ever moves earlier,
    /// so a key observed as "after the frontier" stays after every later
    /// frontier — cancellation can never hit a task the commit would keep.
    frontier: Mutex<Option<SeqKey>>,
}

impl CancelSignal {
    fn new(enabled: bool) -> Self {
        CancelSignal {
            enabled,
            epoch: AtomicU64::new(0),
            frontier: Mutex::new(None),
        }
    }

    /// Publish `key` as the pending witness (keeps the smallest seen).
    fn broadcast(&self, key: &SeqKey) {
        if !self.enabled {
            return;
        }
        let mut frontier = self.frontier.lock();
        if frontier.as_ref().map_or(true, |w| key < w) {
            *frontier = Some(key.clone());
        }
        drop(frontier);
        // Bump *after* the frontier is in place: a reader that observes the
        // new epoch is guaranteed to read (at least) this frontier.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Should the task `local` is executing abandon its subtree?  One atomic
    /// load on the fast path; the frontier mutex is touched only on an epoch
    /// change (i.e. O(witness updates) times per worker, not O(nodes)).
    fn should_cancel(&self, local: &mut OrderedLocal) -> bool {
        if !self.enabled {
            return false;
        }
        let epoch = self.epoch.load(Ordering::Acquire);
        if epoch == 0 {
            return false;
        }
        if local.cancel_epoch != epoch {
            local.cancel_epoch = epoch;
            local.cancel_frontier = self.frontier.lock().clone();
        }
        local
            .cancel_frontier
            .as_ref()
            .is_some_and(|w| local.current > *w)
    }
}

/// The Ordered coordination's work source: a global priority-ordered pool,
/// the in-order commit log, and the speculation-cancellation signal.
pub(crate) struct OrderedSource<N> {
    pool: OrderedPool<Task<N>>,
    commit: Mutex<CommitLog>,
    cancel: CancelSignal,
}

impl<N> OrderedSource<N> {
    pub(crate) fn new(cancel_speculation: bool, workers: usize) -> Self {
        OrderedSource {
            pool: OrderedPool::with_shards(workers),
            commit: Mutex::new(CommitLog {
                in_flight: std::collections::BTreeSet::new(),
                witness: None,
                committed: false,
                records: Vec::new(),
            }),
            cancel: CancelSignal::new(cancel_speculation),
        }
    }

    /// Pop the smallest-key task and atomically mark it in flight (the
    /// commit lock spans the pool pop, so the commit check can never observe
    /// a task that is neither queued nor in flight).
    ///
    /// With cancellation enabled and a witness pending, tasks with keys
    /// after the witness are skipped instead of issued: children of
    /// committed-side tasks can legitimately land in the pool *after* the
    /// witness purge (a parent's key sorts before the witness but a child's
    /// may sort after), and issuing them would only create work the commit
    /// discards.  Each skip is retired on the spot — counted in
    /// `cancelled_tasks` and drained from the termination counter — which
    /// requires the `term` handle; the trait-level [`WorkSource::pop`] has
    /// no such handle and passes `None`, falling back to plain issue (safe:
    /// the per-step poll cancels the task right after it starts).
    fn issue(&self, local: &mut OrderedLocal, term: Option<&Termination>) -> Option<Task<N>> {
        let mut commit = self.commit.lock();
        loop {
            let (key, task) = self.pool.pop()?;
            if let (Some(term), true, Some(w)) =
                (term, self.cancel.enabled, commit.witness.as_ref())
            {
                if !commit.committed && key > *w {
                    // The task never runs: drain it as discarded, exactly
                    // like the purge and commit-clear disposal paths.
                    local.cancelled += 1;
                    local.arena.recycle(key);
                    term.tasks_discarded(1);
                    continue;
                }
            }
            if commit.in_flight.iter().next().is_some_and(|min| *min < key) {
                local.inversions += 1;
            }
            commit.in_flight.insert(key.clone());
            let previous = std::mem::replace(&mut local.current, key);
            local.arena.recycle(previous);
            local.next_child = 0;
            return Some(task);
        }
    }

    /// Retire a finished task: log its metrics, fold a genuine witness into
    /// the pending minimum (purging and broadcasting against the new
    /// frontier), and commit the stop once nothing sequentially earlier
    /// remains.  Aborted tasks (post-commit `ShortCircuited` flows) always
    /// carry keys after the witness, so folding them is a no-op.
    fn retire(
        &self,
        key: SeqKey,
        worker: usize,
        metrics: WorkerMetrics,
        flow: Flow,
        term: &Termination,
        local: &mut OrderedLocal,
    ) {
        let mut commit = self.commit.lock();
        commit.in_flight.remove(&key);
        if flow == Flow::ShortCircuited && commit.witness.as_ref().map_or(true, |w| key < *w) {
            commit.witness = Some(key.clone());
            if self.cancel.enabled && !commit.committed {
                // Reclaim speculation beyond the new frontier: purge the
                // queue now, and broadcast the key so in-flight tasks with
                // later keys exit at their next traversal step.
                self.cancel.broadcast(&key);
                let purged = self.pool.purge_after(&key) as u64;
                local.cancelled += purged;
                term.tasks_discarded(purged);
            }
        }
        commit.records.push(TaskRecord {
            key,
            worker,
            metrics,
        });
        if commit.committed {
            return;
        }
        let ready = match commit.witness.clone() {
            None => false,
            Some(w) => {
                commit.in_flight.iter().next().map_or(true, |min| *min >= w)
                    && self.pool.min_key().map_or(true, |min| min >= w)
            }
        };
        if ready {
            commit.committed = true;
            term.short_circuit();
            term.tasks_discarded(self.pool.clear() as u64);
        }
    }

    /// Assemble the final per-worker metrics: committed task records merge
    /// into `nodes`/`prunes`/…, speculative records (sequentially after the
    /// committed witness) surface only as `speculative_nodes`.
    ///
    /// When a witness decided the run and tracing is on, the commit/discard
    /// split is also recorded on the flight recorder's control ring (two
    /// aggregate events, not one per task, so the bounded control ring is
    /// never at risk from large runs).
    fn finalize(&self, base: &mut [WorkerMetrics], tracer: &Tracer) {
        let commit = self.commit.lock();
        let mut committed_nodes = 0u64;
        let mut discarded_nodes = 0u64;
        for record in &commit.records {
            let committed = match &commit.witness {
                None => true,
                Some(w) => record.key <= *w,
            };
            if committed {
                committed_nodes += record.metrics.nodes;
                base[record.worker].merge(&record.metrics);
            } else {
                discarded_nodes += record.metrics.nodes;
                base[record.worker].speculative_nodes += record.metrics.nodes;
            }
        }
        if tracer.enabled() && commit.witness.is_some() {
            tracer.control(TraceEvent::SpeculationCommit {
                nodes: committed_nodes,
            });
            if discarded_nodes > 0 {
                tracer.control(TraceEvent::SpeculationDiscard {
                    nodes: discarded_nodes,
                });
            }
        }
    }
}

impl<P: SearchProblem> WorkSource<P> for OrderedSource<P::Node> {
    type Local = OrderedLocal;

    fn register(&self, worker: usize) -> OrderedLocal {
        OrderedLocal {
            shard: worker % self.pool.shards(),
            arena: KeyArena::new(),
            current: SeqKey::root(),
            next_child: 0,
            inversions: 0,
            ordered_spawns: 0,
            cancelled: 0,
            cancel_epoch: 0,
            cancel_frontier: None,
        }
    }

    fn seed(&self, task: Task<P::Node>) {
        self.pool.push_from(0, SeqKey::root(), task);
    }

    fn pop(&self, local: &mut OrderedLocal) -> Option<Task<P::Node>> {
        self.issue(local, None)
    }

    /// There is no separate steal path: the pool is global and every pop
    /// already takes the globally best (smallest-key) task.
    fn acquire(
        &self,
        _local: &mut OrderedLocal,
        _term: &Termination,
        _metrics: &mut WorkerMetrics,
    ) -> Option<Task<P::Node>> {
        None
    }

    /// Batched release: one generator burst becomes one insertion-shard lock
    /// acquisition, with child keys minted from the worker's recycling
    /// arena instead of fresh per-key allocations.
    fn release(
        &self,
        local: &mut OrderedLocal,
        tasks: &mut Vec<Task<P::Node>>,
        _metrics: &mut WorkerMetrics,
    ) {
        if tasks.is_empty() {
            return;
        }
        let base = local.next_child;
        local.next_child += tasks.len() as u32;
        local.ordered_spawns += tasks.len() as u64;
        let OrderedLocal {
            shard,
            arena,
            current,
            ..
        } = local;
        self.pool.push_batch_from(
            *shard,
            tasks
                .drain(..)
                .enumerate()
                .map(|(i, task)| (arena.child_of(current, base + i as u32), task)),
        );
    }

    /// The engine's per-step cancellation poll: cancel the executing task as
    /// soon as a broadcast witness key sorts before it.
    fn cancelled(&self, local: &mut OrderedLocal) -> bool {
        self.cancel.should_cancel(local)
    }

    // `discard` keeps its default: only the engine's worker loop calls it on
    // a short-circuit, and this source is driven by the ordered loop, whose
    // commit path clears the pool itself (see `retire`).
}

/// Run the Ordered coordination with the given spawn depth.
pub(crate) fn run<P, D>(
    problem: &P,
    driver: &D,
    config: &SearchConfig,
    spawn_depth: usize,
    term: &Termination,
    lifecycle: &Lifecycle,
) -> (Vec<WorkerMetrics>, Duration)
where
    P: SearchProblem,
    D: Driver<P>,
{
    run_with_term(problem, driver, config, spawn_depth, term, lifecycle)
}

/// [`run`] against a caller-supplied termination handle, so tests can verify
/// the outstanding-task accounting after the run (every spawned task must be
/// drained — completed, purged, skipped or cleared — even when the commit
/// short-circuits the search).
pub(crate) fn run_with_term<P, D>(
    problem: &P,
    driver: &D,
    config: &SearchConfig,
    spawn_depth: usize,
    term: &Termination,
    lifecycle: &Lifecycle,
) -> (Vec<WorkerMetrics>, Duration)
where
    P: SearchProblem,
    D: Driver<P>,
{
    let start = Instant::now();
    let workers = lifecycle.worker_count(config);
    // Under an elastic grant the dispatcher can lease extra workers onto the
    // live search, so shared structures are sized for every worker id the
    // grant could ever mint, not just the initial count.
    let capacity = lifecycle.worker_capacity(config);
    let source = OrderedSource::new(config.cancel_speculation, capacity);
    let policy = OrderedPolicy { spawn_depth };
    WorkSource::<P>::seed(&source, Task::new(problem.root(), 0));

    let mut all_metrics = engine::spawn_and_join(lifecycle, workers, |worker| {
        worker_loop(problem, driver, &source, &policy, term, lifecycle, worker)
    });
    source.finalize(&mut all_metrics, &lifecycle.tracer);
    // Stragglers: a post-commit in-flight task may still have released
    // children after the commit cleared the pool.  Those tasks never run, so
    // drain them here — after this, `outstanding() == 0` holds on every
    // non-panicking run, short-circuited, cancelled or timed out alike.
    term.tasks_discarded(source.pool.clear() as u64);
    debug_assert_eq!(
        term.outstanding(),
        0,
        "an ordered run must account for every spawned task"
    );
    (all_metrics, start.elapsed())
}

/// One ordered worker: issue smallest-key tasks, run them through the shared
/// engine traversal with *per-task* metrics, and retire each into the commit
/// log instead of short-circuiting on the spot.
fn worker_loop<P, D>(
    problem: &P,
    driver: &D,
    source: &OrderedSource<P::Node>,
    policy: &OrderedPolicy,
    term: &Termination,
    lifecycle: &Lifecycle,
    worker: usize,
) -> WorkerMetrics
where
    P: SearchProblem,
    D: Driver<P>,
{
    let _guard = UnwindGuard(term);
    let mut local = WorkSource::<P>::register(source, worker);
    let mut partial = driver.new_partial();
    let mut backoff = IdleBackoff::new();
    let mut lstate = LifecycleLocal::default();
    let mut spawn_buf = Vec::new();
    let mut retiring = false;
    let trace = lifecycle.tracer.handle(worker as u32);

    loop {
        // External stop conditions are polled between tasks too, so idle
        // speculating workers observe a deadline promptly.
        lifecycle.poll(term);
        if term.finished() {
            break;
        }
        // Cooperative revocation: Ordered workers leave only *between* tasks
        // — offloading a task's subtree mid-run would mint sequence keys
        // under the wrong parent and corrupt the replicable commit order.
        // The local holds no tasks, so there is nothing to hand back.
        if lifecycle.try_claim_retire(worker) {
            retiring = true;
            break;
        }
        match source.issue(&mut local, Some(term)) {
            Some(task) => {
                backoff.reset();
                let key = local.current.clone();
                let mut task_metrics = WorkerMetrics::default();
                if let Some(trace) = &trace {
                    trace.emit(TraceEvent::TaskStart {
                        depth: task.depth as u32,
                    });
                }
                let flow = engine::run_task(
                    problem,
                    driver,
                    &mut partial,
                    &mut task_metrics,
                    term,
                    lifecycle,
                    &mut lstate,
                    source,
                    &mut local,
                    policy,
                    task,
                    &mut spawn_buf,
                    trace.as_ref(),
                    worker,
                    None,
                );
                if let Some(trace) = &trace {
                    trace.emit(TraceEvent::TaskEnd {
                        nodes: task_metrics.nodes,
                        prunes: task_metrics.prunes,
                        backtracks: task_metrics.backtracks,
                        spawns: task_metrics.spawns,
                        batch_pushes: task_metrics.batch_pushes,
                        poll_checks: task_metrics.poll_checks,
                        max_depth: task_metrics.max_depth,
                    });
                    if flow == Flow::Cancelled {
                        trace.emit(TraceEvent::SpeculationCancel {
                            nodes: task_metrics.nodes,
                        });
                    }
                }
                if flow == Flow::Cancelled {
                    local.cancelled += 1;
                }
                source.retire(key, worker, task_metrics, flow, term, &mut local);
                term.task_completed();
            }
            None => {
                if term.all_done() {
                    break;
                }
                // Same idle backoff as the engine's loop: spin, then yield,
                // then bounded sleeps so speculating workers neither starve
                // the busy ones nor burn a core while the frontier drains.
                backoff.wait();
            }
        }
    }

    driver.merge(partial);
    if retiring {
        // Ack last, after the partial is merged, so the dispatcher observing
        // the released slot can never race an unmerged result.
        lifecycle.ack_retire(worker);
    }
    WorkerMetrics {
        priority_inversions: local.inversions,
        ordered_spawns: local.ordered_spawns,
        cancelled_tasks: local.cancelled,
        ..WorkerMetrics::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;
    use crate::objective::{Decide, Enumerate, Optimise};
    use crate::params::Coordination;
    use crate::skeleton::Skeleton;

    /// Deterministic irregular tree; node = (depth, seed).
    struct Irregular {
        depth: usize,
    }

    impl SearchProblem for Irregular {
        type Node = (usize, u64);
        type Gen<'a> = std::vec::IntoIter<(usize, u64)>;
        fn root(&self) -> (usize, u64) {
            (0, 1)
        }
        fn generator(&self, node: &(usize, u64)) -> Self::Gen<'_> {
            let (depth, seed) = *node;
            if depth >= self.depth {
                return vec![].into_iter();
            }
            let fanout = (seed % 4) as usize + 1;
            (0..fanout)
                .map(|i| {
                    (
                        depth + 1,
                        seed.wrapping_mul(6364136223846793005)
                            .wrapping_add(i as u64),
                    )
                })
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    impl Enumerate for Irregular {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u64)) -> Sum<u64> {
            Sum(1)
        }
    }

    impl Optimise for Irregular {
        type Score = u64;
        fn objective(&self, node: &(usize, u64)) -> u64 {
            node.1 % 1000
        }
        fn bound(&self, _node: &(usize, u64)) -> Option<u64> {
            Some(1000)
        }
    }

    impl Decide for Irregular {
        fn target(&self) -> u64 {
            990
        }
    }

    #[test]
    fn enumeration_counts_match_sequential_for_various_spawn_depths() {
        let p = Irregular { depth: 8 };
        let expected = crate::node::subtree_size(&p, &p.root());
        for spawn_depth in [0, 1, 3, 100] {
            for workers in [1, 4] {
                let out = Skeleton::new(Coordination::ordered(spawn_depth))
                    .workers(workers)
                    .enumerate(&p);
                assert_eq!(
                    out.value.0, expected,
                    "spawn_depth={spawn_depth} workers={workers}"
                );
                assert_eq!(out.metrics.nodes(), expected);
                assert_eq!(out.metrics.totals.speculative_nodes, 0);
            }
        }
    }

    #[test]
    fn optimisation_agrees_with_sequential() {
        let p = Irregular { depth: 7 };
        let seq = Skeleton::new(Coordination::Sequential).maximise(&p);
        let out = Skeleton::new(Coordination::ordered(3))
            .workers(4)
            .maximise(&p);
        assert_eq!(out.try_score(), seq.try_score());
    }

    #[test]
    fn decision_node_counts_are_replicable_across_worker_counts() {
        let p = Irregular { depth: 9 };
        let seq = Skeleton::new(Coordination::Sequential).decide(&p);
        let reference = Skeleton::new(Coordination::ordered(3))
            .workers(1)
            .decide(&p);
        assert_eq!(reference.found(), seq.found());
        assert_eq!(
            reference.metrics.nodes(),
            seq.metrics.nodes(),
            "one ordered worker must replay the sequential visit order"
        );
        for workers in [2, 4, 8] {
            let out = Skeleton::new(Coordination::ordered(3))
                .workers(workers)
                .decide(&p);
            assert_eq!(out.found(), seq.found(), "workers={workers}");
            assert_eq!(
                out.metrics.nodes(),
                reference.metrics.nodes(),
                "committed node count diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn single_worker_never_records_a_priority_inversion() {
        let p = Irregular { depth: 7 };
        let out = Skeleton::new(Coordination::ordered(2))
            .workers(1)
            .enumerate(&p);
        assert_eq!(out.metrics.totals.priority_inversions, 0);
        assert!(
            out.metrics.totals.ordered_spawns > 0,
            "spawn_depth 2 must create keyed tasks"
        );
        assert_eq!(
            out.metrics.totals.ordered_spawns,
            out.metrics.spawns(),
            "with no discarded work the two spawn counters coincide"
        );
    }

    #[test]
    fn spawn_depth_zero_degenerates_to_a_single_task() {
        let p = Irregular { depth: 6 };
        let expected = crate::node::subtree_size(&p, &p.root());
        let out = Skeleton::new(Coordination::ordered(0))
            .workers(3)
            .enumerate(&p);
        assert_eq!(out.value.0, expected);
        assert_eq!(out.metrics.spawns(), 0);
        assert_eq!(out.metrics.totals.ordered_spawns, 0);
    }

    /// Force speculation: the decision witness sits near the top of the
    /// *second* subtree, so the sequential prefix (the whole first subtree,
    /// ~30k nodes) keeps the commit frontier busy long enough for spare
    /// workers to expand later tasks that the commit then discards.  The
    /// committed count must stay put while the discarded work shows up in
    /// `speculative_nodes`.
    struct LeftWitness;

    impl SearchProblem for LeftWitness {
        type Node = Vec<u32>;
        type Gen<'a> = std::vec::IntoIter<Vec<u32>>;
        fn root(&self) -> Vec<u32> {
            Vec::new()
        }
        fn generator(&self, node: &Vec<u32>) -> Self::Gen<'_> {
            if node.len() >= 10 {
                return vec![].into_iter();
            }
            (0..3u32)
                .map(|i| {
                    let mut child = node.clone();
                    child.push(i);
                    child
                })
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    impl Optimise for LeftWitness {
        type Score = u64;
        fn objective(&self, node: &Vec<u32>) -> u64 {
            // Only the path 1.0.0.0.0.0.0 reaches the target.
            if node.len() == 7 && node[0] == 1 && node[1..].iter().all(|&i| i == 0) {
                100
            } else {
                0
            }
        }
    }

    impl Decide for LeftWitness {
        fn target(&self) -> u64 {
            100
        }
    }

    #[test]
    fn speculative_work_is_reported_but_never_committed() {
        let seq = Skeleton::new(Coordination::Sequential).decide(&LeftWitness);
        assert!(seq.found());
        let reference = seq.metrics.nodes();
        for workers in [1, 4, 8] {
            let out = Skeleton::new(Coordination::ordered(2))
                .workers(workers)
                .decide(&LeftWitness);
            assert!(out.found(), "workers={workers}");
            assert_eq!(
                out.metrics.nodes(),
                reference,
                "committed nodes must equal the sequential count at {workers} workers"
            );
            if workers == 1 {
                assert_eq!(out.metrics.totals.speculative_nodes, 0);
            }
        }
        // Whether spare workers win any speculative task before the commit
        // is OS-scheduling nondeterminism; retry a few runs before declaring
        // that speculation accounting never fires.  Cancellation is switched
        // off here on purpose: with it on, post-witness tasks are reclaimed
        // before they can accumulate the nodes this test wants to observe
        // (that reclamation has its own test below).
        let mut saw_speculation = false;
        for _attempt in 0..5 {
            let out = Skeleton::new(Coordination::ordered(2))
                .workers(8)
                .cancel_speculation(false)
                .decide(&LeftWitness);
            assert_eq!(out.metrics.nodes(), reference);
            if out.metrics.totals.speculative_nodes > 0 {
                saw_speculation = true;
                break;
            }
        }
        assert!(
            saw_speculation,
            "8-worker runs of a left-witness tree must have speculated"
        );
    }

    /// Regression (satellite of the cancellation PR): the commit path clears
    /// the workpool, and every cleared/purged task must still drain the
    /// outstanding-task counter — otherwise `all_done()` stays false forever
    /// and only the stop flag masks the leak.
    #[test]
    fn short_circuited_run_drains_the_outstanding_counter() {
        use crate::skeleton::driver::DecideDriver;
        for cancel in [true, false] {
            for workers in [1usize, 4, 8] {
                let driver = DecideDriver::<LeftWitness>::new(100);
                let term = Termination::new(1);
                let config = SearchConfig {
                    coordination: Coordination::ordered(2),
                    workers,
                    cancel_speculation: cancel,
                    ..SearchConfig::default()
                };
                let (_metrics, _elapsed) = run_with_term(
                    &LeftWitness,
                    &driver,
                    &config,
                    2,
                    &term,
                    &Lifecycle::inert(),
                );
                assert_eq!(
                    term.outstanding(),
                    0,
                    "cancel={cancel} workers={workers}: purged tasks leaked"
                );
                assert!(
                    term.all_done(),
                    "cancel={cancel} workers={workers}: all_done must not be masked by the stop flag"
                );
                assert!(term.short_circuited());
            }
        }
    }

    /// Cancellation is purely an efficiency knob: committed node counts are
    /// identical with it on and off, at every worker count, and with it on a
    /// contended run reclaims speculative tasks (`cancelled_tasks > 0`).
    #[test]
    fn cancellation_preserves_committed_counts_and_reclaims_speculation() {
        let seq = Skeleton::new(Coordination::Sequential).decide(&LeftWitness);
        let reference = seq.metrics.nodes();
        for cancel in [true, false] {
            for workers in [1usize, 2, 4, 8] {
                let out = Skeleton::new(Coordination::ordered(2))
                    .workers(workers)
                    .cancel_speculation(cancel)
                    .decide(&LeftWitness);
                assert!(out.found(), "cancel={cancel} workers={workers}");
                assert_eq!(
                    out.metrics.nodes(),
                    reference,
                    "cancel={cancel} workers={workers}: committed count diverged"
                );
                if !cancel {
                    assert_eq!(
                        out.metrics.totals.cancelled_tasks, 0,
                        "the off knob must record no cancellations"
                    );
                }
                if workers == 1 {
                    // A single worker runs strictly in preorder, so nothing
                    // speculative ever *executes* — purged queued tasks may
                    // still be counted as cancelled, but they carry no work.
                    assert_eq!(
                        out.metrics.totals.speculative_nodes, 0,
                        "one worker must not record speculative work"
                    );
                }
            }
        }
        // Whether spare workers start speculative tasks before the witness
        // is OS-scheduling nondeterminism; retry a few runs before declaring
        // that cancellation never fires.
        let mut saw_cancellation = false;
        for _attempt in 0..5 {
            let out = Skeleton::new(Coordination::ordered(2))
                .workers(8)
                .decide(&LeftWitness);
            assert_eq!(out.metrics.nodes(), reference);
            if out.metrics.totals.cancelled_tasks > 0 {
                saw_cancellation = true;
                break;
            }
        }
        assert!(
            saw_cancellation,
            "8-worker left-witness runs must reclaim some speculation"
        );
    }

    /// Enumeration never records a witness, so the cancel signal must stay
    /// inert: no cancellations, no speculative nodes, exact counts.
    #[test]
    fn cancellation_is_inert_without_a_witness() {
        let p = Irregular { depth: 8 };
        let expected = crate::node::subtree_size(&p, &p.root());
        let out = Skeleton::new(Coordination::ordered(3))
            .workers(4)
            .cancel_speculation(true)
            .enumerate(&p);
        assert_eq!(out.value.0, expected);
        assert_eq!(out.metrics.totals.cancelled_tasks, 0);
        assert_eq!(out.metrics.totals.speculative_nodes, 0);
    }

    #[test]
    #[should_panic(expected = "a search worker panicked")]
    fn multi_worker_panic_is_reraised() {
        struct Bomb;
        impl SearchProblem for Bomb {
            type Node = u32;
            type Gen<'a> = std::vec::IntoIter<u32>;
            fn root(&self) -> u32 {
                0
            }
            fn generator(&self, node: &u32) -> Self::Gen<'_> {
                match *node {
                    0 => (1..=8).collect::<Vec<_>>().into_iter(),
                    5 => panic!("poisoned subtree"),
                    _ => vec![].into_iter(),
                }
            }
        }
        impl Enumerate for Bomb {
            type Value = Sum<u64>;
            fn value(&self, _n: &u32) -> Sum<u64> {
                Sum(1)
            }
        }
        let _ = Skeleton::new(Coordination::ordered(1))
            .workers(4)
            .enumerate(&Bomb);
    }
}
