//! The 15 search skeletons: {Sequential, Depth-Bounded, Stack-Stealing,
//! Budget, Ordered} × {Enumeration, Decision, Optimisation}.
//!
//! A [`Skeleton`] is configured with a [`Coordination`] (and optionally a
//! worker count and steal seed) and then applied to a search problem through
//! one of three entry points, one per search type:
//!
//! * [`Skeleton::enumerate`] — fold the whole tree into a monoid,
//! * [`Skeleton::maximise`] — branch-and-bound optimisation returning the
//!   best node found and its objective value,
//! * [`Skeleton::decide`] — decision search returning a witness node as soon
//!   as the target objective is reached.
//!
//! This mirrors the paper's composition model (Fig. 3 and Listing 5): the
//! user picks a coordination, supplies a lazy node generator (a
//! [`SearchProblem`] impl) and chooses the search type; everything else is
//! generic library code.

pub(crate) mod budget;
pub(crate) mod depth_bounded;
pub(crate) mod driver;
pub(crate) mod ordered;
pub(crate) mod sequential;
pub(crate) mod stack_stealing;

use std::sync::Arc;
use std::time::Duration;

use crate::lifecycle::{CancelToken, Lifecycle, ProgressSender, SearchStatus};
use crate::metrics::{Metrics, WorkerMetrics};
use crate::node::SearchProblem;
use crate::objective::{Decide, Enumerate, Optimise};
use crate::params::{Coordination, SearchConfig};
use crate::runtime::WorkerPool;
use crate::termination::{StopCause, Termination};
use crate::trace::{TraceBuffer, TraceRecord, Tracer};

use driver::{DecideDriver, Driver, EnumDriver, OptimDriver};

/// Result of an enumeration search.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumOutcome<V> {
    /// The monoid fold of the objective over every node of the search tree —
    /// or, when [`status`](EnumOutcome::status) is not
    /// [`SearchStatus::Complete`], over every node processed before the
    /// search was stopped (a partial fold).
    pub value: V,
    /// How the search ended.
    pub status: SearchStatus,
    /// Execution metrics (nodes, prunes, spawns, steals, elapsed time, …).
    pub metrics: Metrics,
}

/// Result of an optimisation search.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimOutcome<N, S> {
    /// The maximal node found and its objective value.  With
    /// [`status`](OptimOutcome::status) [`SearchStatus::Complete`] this is
    /// the proven optimum; on a cancelled or timed-out search it is the
    /// *partial incumbent* — the best node found before the stop (anytime
    /// semantics).  `None` only when the search was stopped before its root
    /// task committed any node.
    pub best: Option<(N, S)>,
    /// How the search ended.
    pub status: SearchStatus,
    /// Execution metrics.
    pub metrics: Metrics,
}

impl<N, S> OptimOutcome<N, S> {
    /// The best node found, if any node was recorded.
    pub fn try_node(&self) -> Option<&N> {
        self.best.as_ref().map(|(n, _)| n)
    }

    /// The best objective value found, if any node was recorded.
    pub fn try_score(&self) -> Option<&S> {
        self.best.as_ref().map(|(_, s)| s)
    }

    /// The witness node (panics if the search recorded no node).
    #[deprecated(
        since = "0.1.0",
        note = "with anytime statuses an empty `best` is a reachable, legitimate state \
                (cancelled before the root committed); use `try_node()` instead"
    )]
    pub fn node(&self) -> &N {
        self.try_node()
            .expect("optimisation search recorded no node (stopped before the root committed)")
    }

    /// The maximal objective value (panics if the search recorded no node).
    #[deprecated(
        since = "0.1.0",
        note = "with anytime statuses an empty `best` is a reachable, legitimate state \
                (cancelled before the root committed); use `try_score()` instead"
    )]
    pub fn score(&self) -> &S {
        self.try_score()
            .expect("optimisation search recorded no node (stopped before the root committed)")
    }
}

/// Result of a decision search.
#[derive(Debug, Clone, PartialEq)]
pub struct DecideOutcome<N> {
    /// A node witnessing the target objective, or `None` if the whole tree
    /// was explored without reaching the target — or, when
    /// [`status`](DecideOutcome::status) is not [`SearchStatus::Complete`],
    /// if no witness had been found before the search was stopped.
    pub witness: Option<N>,
    /// How the search ended.
    pub status: SearchStatus,
    /// Execution metrics.
    pub metrics: Metrics,
}

impl<N> DecideOutcome<N> {
    /// True if the target objective was reached.
    pub fn found(&self) -> bool {
        self.witness.is_some()
    }
}

/// A configured search skeleton (coordination + worker count), the blocking
/// facade over the unified engine.  For a persistent pool with non-blocking
/// handles, submit through [`Runtime`](crate::runtime::Runtime) instead —
/// it drives this same facade internally.
///
/// ```
/// use yewpar::{Coordination, Skeleton};
/// let skel = Skeleton::new(Coordination::budget(1_000)).workers(4);
/// assert_eq!(skel.config().workers, 4);
/// ```
#[derive(Debug, Clone)]
pub struct Skeleton {
    config: SearchConfig,
    /// External cancellation flag checked by every worker's per-step poll.
    cancel: Option<CancelToken>,
    /// Progress sink for incumbent updates, heartbeats and the final
    /// status (runtime submissions attach one; the plain facade has none).
    progress: Option<ProgressSender>,
    /// Persistent pool to run workers on instead of spawning scoped
    /// threads (runtime submissions only).
    pool: Option<Arc<WorkerPool>>,
    /// The scheduler's worker allotment (runtime submissions only): the
    /// effective worker count and the leased pool-thread slots, granted at
    /// dispatch time rather than config time.
    grant: Option<crate::runtime::ExecutionGrant>,
    /// The flight recorder's store, present when
    /// [`SearchConfig::trace`] is set.  Clones of the skeleton share it, so
    /// drain between searches ([`take_trace`](Skeleton::take_trace)) to keep
    /// runs separate.
    trace: Option<Arc<TraceBuffer>>,
    /// Heartbeat-time runtime-stats snapshotter (runtime submissions only).
    stats_probe: Option<crate::lifecycle::StatsProbe>,
}

impl Skeleton {
    /// A skeleton for the given coordination with a default worker count
    /// (one worker for Sequential, all available cores otherwise).
    pub fn new(coordination: Coordination) -> Self {
        Skeleton::from_config(SearchConfig::new(coordination))
    }

    /// A skeleton from a full [`SearchConfig`].
    pub fn from_config(config: SearchConfig) -> Self {
        let trace = config
            .trace
            .then(|| Arc::new(TraceBuffer::new(TraceBuffer::DEFAULT_CAPACITY)));
        Skeleton {
            config,
            cancel: None,
            progress: None,
            pool: None,
            grant: None,
            trace,
            stats_probe: None,
        }
    }

    /// Set the number of worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Set the seed used for random victim selection.
    pub fn steal_seed(mut self, seed: u64) -> Self {
        self.config.steal_seed = seed;
        self
    }

    /// Enable or disable the Ordered coordination's speculation cancellation
    /// (on by default; see [`SearchConfig::cancel_speculation`]).  A no-op
    /// for every other coordination — kept on the builder so A/B sweeps can
    /// toggle it without constructing a full config.
    pub fn cancel_speculation(mut self, on: bool) -> Self {
        self.config.cancel_speculation = on;
        self
    }

    /// Set a wall-clock deadline for each search run through this skeleton
    /// (see [`SearchConfig::deadline`]): the run stops once the budget
    /// elapses and the outcome reports
    /// [`SearchStatus::DeadlineExceeded`] with the partial incumbent.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.config.deadline = Some(budget);
        self
    }

    /// Attach an external cancellation token: pulling it (from any thread)
    /// stops the search at its next per-step poll, and the outcome reports
    /// [`SearchStatus::Cancelled`] with the partial incumbent.  Tokens are
    /// single-use — attach a fresh one per search.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Switch the flight recorder on or off (see [`SearchConfig::trace`]),
    /// (re)allocating per-worker rings of [`TraceBuffer::DEFAULT_CAPACITY`]
    /// records.  Use [`trace_capacity`](Skeleton::trace_capacity) to size
    /// the rings explicitly.
    pub fn trace(self, on: bool) -> Self {
        if on {
            self.trace_capacity(TraceBuffer::DEFAULT_CAPACITY)
        } else {
            let mut skel = self;
            skel.config.trace = false;
            skel.trace = None;
            skel
        }
    }

    /// Switch the flight recorder on with rings of `capacity` records per
    /// worker (overflow beyond that is counted, keep-first, in
    /// [`trace_dropped`](Skeleton::trace_dropped)).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.config.trace = true;
        self.trace = Some(Arc::new(TraceBuffer::new(capacity)));
        self
    }

    /// Drain the flight recorder: every event recorded since the last drain,
    /// merged across workers and sorted by timestamp.  Empty when tracing is
    /// off.  Call between searches — the buffer is shared by consecutive
    /// runs of the same skeleton.
    pub fn take_trace(&self) -> Vec<TraceRecord> {
        self.trace.as_ref().map(|b| b.drain()).unwrap_or_default()
    }

    /// Events dropped to ring overflow so far (0 when tracing is off).  A
    /// non-zero value marks every drained trace as lossy; it is never reset,
    /// so "no drops" can be asserted after the fact.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.as_ref().map(|b| b.dropped()).unwrap_or(0)
    }

    /// Attach a progress sink (runtime submissions).
    pub(crate) fn attach_progress(mut self, progress: ProgressSender) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Attach a runtime-stats snapshotter for `ProgressEvent::Stats`
    /// heartbeats (runtime submissions).
    pub(crate) fn attach_stats_probe(mut self, probe: crate::lifecycle::StatsProbe) -> Self {
        self.stats_probe = Some(probe);
        self
    }

    /// Attach an externally owned flight-recorder buffer (runtime
    /// submissions record into the runtime-wide buffer so dispatcher and
    /// search events share one timeline).
    pub(crate) fn attach_trace_buffer(mut self, buffer: Arc<TraceBuffer>) -> Self {
        self.trace = Some(buffer);
        self
    }

    /// Attach a persistent worker pool (runtime submissions).
    pub(crate) fn attach_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attach the scheduler's worker grant (runtime submissions): the
    /// engine then runs with the granted worker count on the leased slots
    /// instead of the configured count on the whole pool.
    pub(crate) fn attach_grant(mut self, grant: crate::runtime::ExecutionGrant) -> Self {
        self.grant = Some(grant);
        self
    }

    /// The effective configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The per-execution lifecycle: external stop conditions, progress
    /// sink, pool, and the resolved absolute deadline.
    fn lifecycle(&self) -> Lifecycle {
        let mut lifecycle = Lifecycle {
            cancel: self.cancel.clone(),
            progress: self.progress.clone(),
            pool: self.pool.clone(),
            grant: self.grant.clone(),
            tracer: match &self.trace {
                Some(buffer) => Tracer::new(Arc::clone(buffer)),
                None => Tracer::off(),
            },
            stats_probe: self.stats_probe.clone(),
            ..Lifecycle::inert()
        };
        lifecycle.begin(self.config.deadline);
        lifecycle
    }

    /// Run an enumeration search: fold the objective of every node of the
    /// search tree into the accumulator monoid.
    pub fn enumerate<P: Enumerate>(&self, problem: &P) -> EnumOutcome<P::Value> {
        let lifecycle = self.lifecycle();
        let driver = EnumDriver::<P>::new();
        let run = run_coordination(problem, &driver, &self.config, &lifecycle);
        lifecycle.finish(run.status);
        EnumOutcome {
            value: driver.into_value(),
            status: run.status,
            metrics: run.metrics,
        }
    }

    /// Run an optimisation search: find a node maximising the objective,
    /// pruning subtrees whose bound cannot beat the incumbent.  On a
    /// cancelled or timed-out run the outcome carries the partial incumbent.
    pub fn maximise<P: Optimise>(&self, problem: &P) -> OptimOutcome<P::Node, P::Score> {
        let lifecycle = self.lifecycle();
        let driver =
            OptimDriver::<P>::with_progress(lifecycle.progress_sender(), lifecycle.tracer.clone());
        let mut run = run_coordination(problem, &driver, &self.config, &lifecycle);
        run.metrics.totals.incumbent_updates = driver.incumbent_updates();
        lifecycle.finish(run.status);
        OptimOutcome {
            best: driver.into_best(),
            status: run.status,
            metrics: run.metrics,
        }
    }

    /// Run a decision search: stop as soon as a node reaches the target
    /// objective and return it as a witness.
    pub fn decide<P: Decide>(&self, problem: &P) -> DecideOutcome<P::Node> {
        let lifecycle = self.lifecycle();
        let driver = DecideDriver::<P>::with_progress(
            problem.target(),
            lifecycle.progress_sender(),
            lifecycle.tracer.clone(),
        );
        let mut run = run_coordination(problem, &driver, &self.config, &lifecycle);
        run.metrics.totals.incumbent_updates = driver.incumbent_updates();
        lifecycle.finish(run.status);
        DecideOutcome {
            witness: driver.into_witness(),
            status: run.status,
            metrics: run.metrics,
        }
    }
}

/// What one coordinated execution hands back to the outcome constructors.
struct RunOutput {
    metrics: Metrics,
    status: SearchStatus,
}

/// Dispatch a driver over the configured coordination, under the given
/// lifecycle (external stops, progress, pool).
fn run_coordination<P, D>(
    problem: &P,
    driver: &D,
    config: &SearchConfig,
    lifecycle: &Lifecycle,
) -> RunOutput
where
    P: SearchProblem,
    D: Driver<P>,
{
    config.validate().expect("invalid skeleton configuration");
    let term = Termination::new(1);
    // An already-expired deadline or pre-pulled token stops the run before
    // any worker starts; the seeded root is then drained by the source
    // discard, so even a zero-budget run exits with clean accounting.
    lifecycle.poll(&term);
    let (workers, elapsed): (Vec<WorkerMetrics>, Duration) = match config.coordination {
        Coordination::Sequential => sequential::run(problem, driver, &term, lifecycle),
        Coordination::DepthBounded { dcutoff } => {
            depth_bounded::run(problem, driver, config, dcutoff, &term, lifecycle)
        }
        Coordination::StackStealing { chunked } => {
            stack_stealing::run(problem, driver, config, chunked, &term, lifecycle)
        }
        Coordination::Budget { backtracks } => {
            budget::run(problem, driver, config, backtracks, &term, lifecycle)
        }
        Coordination::Ordered { spawn_depth } => {
            ordered::run(problem, driver, config, spawn_depth, &term, lifecycle)
        }
    };
    let status = match term.stop_cause() {
        Some(StopCause::Cancelled) => SearchStatus::Cancelled,
        Some(StopCause::Deadline) => SearchStatus::DeadlineExceeded,
        // A decision short-circuit *is* a completed search.
        Some(StopCause::ShortCircuit) | None => SearchStatus::Complete,
    };
    let mut metrics = Metrics::from_workers(workers, elapsed);
    metrics.outstanding_tasks = term.outstanding();
    // Tag the outcome with the scheduler's grant so per-search dashboards
    // (and the disjointness tests) can see what this search actually ran on.
    if let Some(grant) = &lifecycle.grant {
        metrics.search_id = grant.search_id;
        metrics.granted_workers = grant.workers;
        metrics.granted_slots = grant.slots.clone();
        metrics.queue_wait = grant.queue_wait;
        // Elastic grants can change the live worker set mid-run, so the
        // per-worker vec length is scheduling-dependent; report the
        // *granted* count (deterministic) plus the lease-change counters.
        if let Some(core) = &grant.core {
            use crate::sync::Ordering;
            metrics.workers = grant.workers.max(1);
            // ordering: read after every worker joined (the scoped run has
            // returned), so the join supplies the happens-before; the
            // counters themselves are advisory tallies.
            metrics.grant_changes = core.grant_changes.load(Ordering::Relaxed);
            metrics.workers_preempted = core.workers_preempted.load(Ordering::Relaxed);
            // ordering: as above — post-join advisory read.
            metrics.revocation_latency =
                Duration::from_nanos(core.revocation_ns.load(Ordering::Relaxed));
        }
    }
    RunOutput { metrics, status }
}

/// All five coordinations, convenient for "try every skeleton" sweeps such as
/// the Table 2 experiment.  `dcutoff` doubles as the Ordered spawn depth —
/// both bound the eager-spawn region of the tree.
pub fn all_coordinations(dcutoff: usize, budget: u64, chunked: bool) -> Vec<Coordination> {
    vec![
        Coordination::Sequential,
        Coordination::DepthBounded { dcutoff },
        Coordination::StackStealing { chunked },
        Coordination::Budget { backtracks: budget },
        Coordination::Ordered {
            spawn_depth: dcutoff,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;

    /// An irregular synthetic tree: node value is a state, children shrink.
    struct Irregular {
        depth: usize,
    }

    impl SearchProblem for Irregular {
        type Node = (usize, u64);
        type Gen<'a> = std::vec::IntoIter<(usize, u64)>;
        fn root(&self) -> (usize, u64) {
            (0, 1)
        }
        fn generator(&self, node: &(usize, u64)) -> Self::Gen<'_> {
            let (depth, seed) = *node;
            if depth >= self.depth {
                return vec![].into_iter();
            }
            let fanout = (seed % 4) as usize + 1;
            (0..fanout)
                .map(|i| {
                    (
                        depth + 1,
                        seed.wrapping_mul(6364136223846793005)
                            .wrapping_add(i as u64),
                    )
                })
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    impl Enumerate for Irregular {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u64)) -> Sum<u64> {
            Sum(1)
        }
    }

    impl Optimise for Irregular {
        type Score = u64;
        fn objective(&self, node: &(usize, u64)) -> u64 {
            node.1 % 1000
        }
        fn bound(&self, _node: &(usize, u64)) -> Option<u64> {
            Some(1000)
        }
    }

    impl Decide for Irregular {
        fn target(&self) -> u64 {
            990
        }
    }

    fn reference_count(p: &Irregular) -> u64 {
        crate::node::subtree_size(p, &p.root())
    }

    #[test]
    fn all_skeletons_count_the_same_tree() {
        let p = Irregular { depth: 8 };
        let expected = reference_count(&p);
        for coord in all_coordinations(2, 50, true) {
            let out = Skeleton::new(coord).workers(3).enumerate(&p);
            assert_eq!(
                out.value.0, expected,
                "coordination {coord} returned a wrong count"
            );
            assert_eq!(
                out.metrics.nodes(),
                expected,
                "every node must be processed exactly once"
            );
        }
    }

    #[test]
    fn all_skeletons_agree_on_the_optimum() {
        let p = Irregular { depth: 7 };
        let seq = Skeleton::new(Coordination::Sequential).maximise(&p);
        for coord in all_coordinations(3, 25, false) {
            let out = Skeleton::new(coord).workers(3).maximise(&p);
            assert_eq!(
                out.try_score(),
                seq.try_score(),
                "coordination {coord} found a different optimum"
            );
            assert!(out.status.is_complete());
        }
    }

    #[test]
    fn decision_finds_a_witness_with_every_skeleton() {
        let p = Irregular { depth: 9 };
        for coord in all_coordinations(2, 10, true) {
            let out = Skeleton::new(coord).workers(3).decide(&p);
            if let Some(w) = &out.witness {
                assert!(p.objective(w) >= 990, "witness does not reach the target");
            }
            // The witness existence must agree with the sequential result.
            let seq = Skeleton::new(Coordination::Sequential).decide(&p);
            assert_eq!(
                out.found(),
                seq.found(),
                "coordination {coord} disagrees on decidability"
            );
        }
    }

    /// The sharded-workpool acceptance check: at 8 workers on the synthetic
    /// irregular tree, the pooled coordinations must put the shards to work
    /// (at least one recorded cross-shard steal) while still processing
    /// every node exactly once.
    #[test]
    fn eight_workers_steal_across_shards_and_count_exactly() {
        let p = Irregular { depth: 12 };
        let seq = Skeleton::new(Coordination::Sequential).enumerate(&p);
        for coord in [Coordination::depth_bounded(3), Coordination::budget(40)] {
            let mut steals = 0;
            // Whether thieves win a task is pure OS-scheduling
            // nondeterminism (steal_seed does not influence the pooled
            // coordinations' shard scan); on a fast machine one worker
            // routinely finishes alone, so keep retrying until some run
            // records a steal — each run is a couple of milliseconds.
            for _attempt in 0..50 {
                let out = Skeleton::new(coord).workers(8).enumerate(&p);
                assert_eq!(
                    out.value.0, seq.value.0,
                    "coordination {coord} count diverged"
                );
                assert_eq!(out.metrics.nodes(), seq.metrics.nodes());
                steals += out.metrics.totals.steals;
                if steals > 0 {
                    break;
                }
            }
            assert!(
                steals >= 1,
                "coordination {coord} recorded no steal at 8 workers"
            );
        }
    }

    #[test]
    fn outcome_accessors() {
        let p = Irregular { depth: 4 };
        let out = Skeleton::new(Coordination::Sequential).maximise(&p);
        let node = out.try_node().expect("complete search records the root");
        let score = out.try_score().expect("complete search records the root");
        assert_eq!(p.objective(node), *score);
        assert!(out.status.is_complete());
        // The deprecated panicking accessors still work on a non-empty best.
        #[allow(deprecated)]
        {
            assert_eq!(out.node(), node);
            assert_eq!(out.score(), score);
        }
        let dec = Skeleton::new(Coordination::Sequential).decide(&p);
        assert_eq!(dec.found(), dec.witness.is_some());
        assert!(dec.status.is_complete());
    }

    #[test]
    fn skeleton_builder_clamps_zero_workers() {
        let skel = Skeleton::new(Coordination::depth_bounded(1)).workers(0);
        assert_eq!(skel.config().workers, 1);
    }
}
