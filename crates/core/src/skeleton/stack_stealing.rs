//! Stack-Stealing search coordination (the (spawn-stack) rule, paper
//! Listing 3).
//!
//! Work is split *on demand*: an idle worker (thief) sends a steal request
//! over a channel to a randomly chosen victim; the victim polls its request
//! channel on every expansion step and, when asked, scans its generator
//! stack bottom-up and gives away its lowest-depth unexplored subtree (or
//! every sibling at that depth when the `chunked` flag is set).  There is no
//! shared workpool — tasks travel directly from victim to thief, with the
//! termination counter tracking tasks in flight.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender, TryRecvError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::driver::{Action, Driver};
use crate::genstack::GenStack;
use super::sequential::Flow;
use crate::metrics::WorkerMetrics;
use crate::node::SearchProblem;
use crate::params::SearchConfig;
use crate::termination::Termination;
use crate::workpool::Task;

/// A steal request carrying the channel on which the victim should reply.
struct StealRequest<N> {
    reply: Sender<Vec<Task<N>>>,
}

/// Run the Stack-Stealing coordination.
pub(crate) fn run<P, D>(
    problem: &P,
    driver: &D,
    config: &SearchConfig,
    chunked: bool,
) -> (Vec<WorkerMetrics>, Duration)
where
    P: SearchProblem,
    D: Driver<P>,
{
    let start = Instant::now();
    let workers = config.workers.max(1);
    let term = Termination::new(1);
    let poisoned = AtomicBool::new(false);

    // One steal-request channel per worker.  Requests are bounded so thieves
    // cannot pile up unbounded requests on a busy victim.
    let mut senders = Vec::with_capacity(workers);
    let mut receivers = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = bounded::<StealRequest<P::Node>>(workers);
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let mut all_metrics = vec![WorkerMetrics::default(); workers];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (id, slot) in receivers.iter_mut().enumerate() {
            let rx = slot.take().expect("receiver taken once");
            let senders = senders.clone();
            let term = &term;
            let initial = if id == 0 { Some(Task::new(problem.root(), 0)) } else { None };
            handles.push(scope.spawn(move || {
                worker_loop(
                    problem,
                    driver,
                    term,
                    WorkerLinks {
                        id,
                        rx,
                        senders,
                        chunked,
                        seed: config.steal_seed,
                    },
                    initial,
                )
            }));
        }
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(metrics) => all_metrics[i] = metrics,
                Err(_) => poisoned.store(true, Ordering::Relaxed),
            }
        }
    });
    if poisoned.load(Ordering::Relaxed) {
        panic!("a stack-stealing search worker panicked");
    }
    (all_metrics, start.elapsed())
}

/// The communication endpoints of one worker.
struct WorkerLinks<N> {
    id: usize,
    rx: Receiver<StealRequest<N>>,
    senders: Vec<Sender<StealRequest<N>>>,
    chunked: bool,
    seed: u64,
}

fn worker_loop<P, D>(
    problem: &P,
    driver: &D,
    term: &Termination,
    links: WorkerLinks<P::Node>,
    initial: Option<Task<P::Node>>,
) -> WorkerMetrics
where
    P: SearchProblem,
    D: Driver<P>,
{
    let mut metrics = WorkerMetrics::default();
    let mut partial = driver.new_partial();
    let mut rng = SmallRng::seed_from_u64(links.seed ^ (links.id as u64).wrapping_mul(0x9E3779B97F4A7C15));
    // Tasks this worker owns but has not started yet (stolen chunks, or work
    // it failed to hand over to a thief).
    let mut backlog: Vec<Task<P::Node>> = Vec::new();
    if let Some(task) = initial {
        backlog.push(task);
    }

    loop {
        if term.finished() {
            break;
        }
        if let Some(task) = pop_front(&mut backlog) {
            let flow = execute_task(problem, driver, &mut partial, &mut metrics, term, &links, &mut backlog, task);
            if flow == Flow::ShortCircuited {
                term.short_circuit();
            }
            term.task_completed();
            continue;
        }
        // Idle: answer any pending requests with "no work", then try to steal.
        drain_requests_empty(&links.rx);
        if term.finished() || links.senders.len() <= 1 {
            if links.senders.len() <= 1 {
                // Single worker: no one to steal from; if our backlog is
                // empty the search must be over (or short-circuited).
                if term.finished() {
                    break;
                }
                std::thread::sleep(Duration::from_micros(20));
                continue;
            }
            break;
        }
        match attempt_steal(term, &links, &mut rng) {
            Some(tasks) => {
                metrics.steals += 1;
                backlog.extend(tasks);
            }
            None => {
                metrics.failed_steals += 1;
                std::thread::sleep(Duration::from_micros(20));
            }
        }
    }

    driver.merge(partial);
    metrics
}

fn pop_front<T>(backlog: &mut Vec<T>) -> Option<T> {
    if backlog.is_empty() {
        None
    } else {
        Some(backlog.remove(0))
    }
}

/// Reply "no work" to any queued requests so thieves do not wait for the
/// full timeout when the victim is itself idle.
fn drain_requests_empty<N>(rx: &Receiver<StealRequest<N>>) {
    while let Ok(req) = rx.try_recv() {
        let _ = req.reply.send(Vec::new());
    }
}

/// Pick a random victim and ask it for work.
fn attempt_steal<N>(
    term: &Termination,
    links: &WorkerLinks<N>,
    rng: &mut SmallRng,
) -> Option<Vec<Task<N>>> {
    let n = links.senders.len();
    let victim = {
        let mut v = rng.gen_range(0..n - 1);
        if v >= links.id {
            v += 1;
        }
        v
    };
    let (reply_tx, reply_rx) = bounded(1);
    if links.senders[victim].try_send(StealRequest { reply: reply_tx }).is_err() {
        return None;
    }
    // Wait briefly for the victim to respond; victims poll their channel on
    // every expansion step so the latency is typically a handful of node
    // expansions.
    let deadline = Instant::now() + Duration::from_millis(2);
    loop {
        match reply_rx.recv_timeout(Duration::from_micros(200)) {
            Ok(tasks) if tasks.is_empty() => return None,
            Ok(tasks) => return Some(tasks),
            Err(_) => {
                if term.finished() || Instant::now() >= deadline {
                    return None;
                }
            }
        }
    }
}

/// Execute one task, answering steal requests on every expansion step.
#[allow(clippy::too_many_arguments)]
fn execute_task<P, D>(
    problem: &P,
    driver: &D,
    partial: &mut D::Partial,
    metrics: &mut WorkerMetrics,
    term: &Termination,
    links: &WorkerLinks<P::Node>,
    backlog: &mut Vec<Task<P::Node>>,
    task: Task<P::Node>,
) -> Flow
where
    P: SearchProblem,
    D: Driver<P>,
{
    metrics.nodes += 1;
    metrics.max_depth = metrics.max_depth.max(task.depth as u64);
    match driver.process(problem, &task.node, partial) {
        Action::Expand => {}
        Action::Prune | Action::PruneSiblings => {
            metrics.prunes += 1;
            return Flow::Completed;
        }
        Action::ShortCircuit => return Flow::ShortCircuited,
    }

    let mut stack = GenStack::new();
    stack.push(problem, &task.node, task.depth);

    while !stack.is_empty() {
        if term.short_circuited() {
            return Flow::ShortCircuited;
        }
        // Serve at most one steal request per expansion step (mirrors the
        // per-iteration check in Listing 3).
        match links.rx.try_recv() {
            Ok(request) => serve_steal(term, metrics, backlog, &mut stack, request, links.chunked),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => {}
        }
        match stack.next_child() {
            Some((child, depth)) => {
                metrics.nodes += 1;
                metrics.max_depth = metrics.max_depth.max(depth as u64);
                match driver.process(problem, &child, partial) {
                    Action::Expand => stack.push(problem, &child, depth),
                    Action::Prune => metrics.prunes += 1,
                    Action::PruneSiblings => {
                        metrics.prunes += 1;
                        stack.pop();
                        metrics.backtracks += 1;
                    }
                    Action::ShortCircuit => return Flow::ShortCircuited,
                }
            }
            None => {
                stack.pop();
                metrics.backtracks += 1;
            }
        }
    }
    Flow::Completed
}

/// Give the requester the lowest-depth unexplored subtree(s) of `stack`.
fn serve_steal<N>(
    term: &Termination,
    metrics: &mut WorkerMetrics,
    backlog: &mut Vec<Task<N>>,
    stack: &mut GenStack<'_, impl SearchProblem<Node = N>>,
    request: StealRequest<N>,
    chunked: bool,
) where
    N: Clone + Send + 'static,
{
    let stolen = stack.split_lowest(chunked);
    if stolen.is_empty() {
        let _ = request.reply.send(Vec::new());
        return;
    }
    // Register the new tasks before they leave this worker so the
    // termination counter never under-counts live work.
    term.task_spawned(stolen.len() as u64);
    metrics.spawns += stolen.len() as u64;
    if let Err(send_err) = request.reply.send(stolen) {
        // The thief gave up waiting (or the search is finishing).  The
        // subtrees were already removed from our generator stack, so keep
        // them in our own backlog; they remain registered as outstanding
        // tasks and will be completed when we execute them ourselves.
        backlog.extend(send_err.into_inner());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;
    use crate::objective::{Decide, Enumerate, Optimise};
    use crate::skeleton::driver::{DecideDriver, EnumDriver};

    struct Wide {
        depth: usize,
    }

    impl SearchProblem for Wide {
        type Node = (usize, u64);
        type Gen<'a> = std::vec::IntoIter<(usize, u64)>;
        fn root(&self) -> (usize, u64) {
            (0, 7)
        }
        fn generator(&self, node: &(usize, u64)) -> Self::Gen<'_> {
            let (depth, seed) = *node;
            if depth >= self.depth {
                return vec![].into_iter();
            }
            let width = (seed % 3 + 2) as usize;
            (0..width)
                .map(|i| (depth + 1, seed.wrapping_mul(2862933555777941757).wrapping_add(i as u64)))
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    impl Enumerate for Wide {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u64)) -> Sum<u64> {
            Sum(1)
        }
    }

    impl Optimise for Wide {
        type Score = u64;
        fn objective(&self, node: &(usize, u64)) -> u64 {
            node.1 % 101
        }
    }

    impl Decide for Wide {
        fn target(&self) -> u64 {
            100
        }
    }

    fn config(workers: usize) -> SearchConfig {
        SearchConfig {
            workers,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn single_worker_stack_stealing_degenerates_to_sequential() {
        let p = Wide { depth: 6 };
        let expected = crate::node::subtree_size(&p, &p.root());
        let driver = EnumDriver::<Wide>::new();
        let (metrics, _) = run(&p, &driver, &config(1), false);
        assert_eq!(driver.into_value(), Sum(expected));
        assert_eq!(metrics[0].steals, 0);
    }

    #[test]
    fn multi_worker_counts_match_with_and_without_chunking() {
        let p = Wide { depth: 8 };
        let expected = crate::node::subtree_size(&p, &p.root());
        for chunked in [false, true] {
            let driver = EnumDriver::<Wide>::new();
            let (metrics, _) = run(&p, &driver, &config(4), chunked);
            assert_eq!(driver.into_value(), Sum(expected), "chunked={chunked}");
            let total: u64 = metrics.iter().map(|m| m.nodes).sum();
            assert_eq!(total, expected);
        }
    }

    #[test]
    fn decision_short_circuit_terminates_all_workers() {
        let p = Wide { depth: 20 };
        let driver = DecideDriver::<Wide>::new(100);
        let (_, elapsed) = run(&p, &driver, &config(3), true);
        // A value ≡ 100 (mod 101) appears quickly in this pseudo-random
        // labelling; the whole (enormous) tree is certainly not explored.
        assert!(elapsed < Duration::from_secs(30));
        assert!(driver.into_witness().is_some());
    }
}
