//! Stack-Stealing search coordination (the (spawn-stack) rule, paper
//! Listing 3).
//!
//! Work is split *on demand*: an idle worker (thief) sends a steal request
//! over a channel to a randomly chosen victim; the victim polls its request
//! channel on every expansion step (the engine's per-step `poll` hook) and,
//! when asked, scans its generator stack bottom-up and gives away its
//! lowest-depth unexplored subtree (or every sibling at that depth when the
//! `chunked` flag is set).  There is no shared workpool — tasks travel
//! directly from victim to thief, with the termination counter tracking
//! tasks in flight.  All worker-loop machinery lives in `crate::engine`;
//! this module is only the steal-channel [`WorkSource`].

use crate::sync::{AtomicUsize, Ordering};
use std::collections::VecDeque;
use std::time::Duration;

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::{self, NoSpawn, WorkSource};
use crate::genstack::GenStack;
use crate::lifecycle::Lifecycle;
use crate::metrics::WorkerMetrics;
use crate::node::SearchProblem;
use crate::params::SearchConfig;
use crate::skeleton::driver::Driver;
use crate::termination::Termination;
use crate::trace::{TraceEvent, TraceHandle, Tracer, UNKNOWN_VICTIM};
use crate::workpool::{LocalityGauges, Mailbox, Task, PUSH_BATCH};

/// Cap on the back-off exponent: a locality that keeps missing is skipped
/// for at most `2^BACKOFF_CAP` routing decisions before being retried.
const BACKOFF_CAP: u32 = 5;

/// How many expansion steps a busy worker waits between starvation scans
/// (the work-pushing trigger).  Each scan reads two relaxed gauges per
/// remote locality, so the stride keeps the per-node cost negligible.
const PUSH_CHECK_STRIDE: u32 = 64;

/// A steal request carrying the channel on which the victim should reply.
struct StealRequest<N> {
    reply: Sender<Vec<Task<N>>>,
}

/// Per-worker state: the request receiver, the private task backlog and the
/// victim-selection generator.
pub(crate) struct StealLocal<N> {
    id: usize,
    /// The locality this worker belongs to (`id / workers_per_locality`).
    locality: usize,
    rx: Receiver<StealRequest<N>>,
    backlog: VecDeque<Task<N>>,
    rng: SmallRng,
    /// The work-hint depth this worker last published (avoids a shared
    /// atomic store on every expansion step — only changes write).
    /// `NO_WORK_HINT` when the worker is advertised idle.
    advertised: usize,
    /// Reused candidate buffer for hint-guided victim selection.
    scratch: Vec<usize>,
    /// The victim targeted by the most recent steal attempt
    /// ([`UNKNOWN_VICTIM`] when no candidate was advertised), so the
    /// hit/miss events recorded in `acquire` carry the real victim id.
    last_victim: u32,
    /// True while this worker is counted in its locality's idle gauge.
    idle: bool,
    /// Per-remote-locality consecutive-miss streaks (the back-off input).
    miss_streak: Vec<u32>,
    /// Per-remote-locality back-off budgets: while `skip[l] > 0`, routing
    /// decisions skip locality `l` (decrementing), so a thief that keeps
    /// missing a locality probes it exponentially less often.
    skip: Vec<u32>,
    /// Set when the most recent attempt was gauge-routed to a remote
    /// locality: `(locality, observed load)` for the `StealRouted` event.
    routed: Option<(u32, u64)>,
    /// Set when routing found candidates but all were in back-off:
    /// `(locality, misses)` of the best skipped one, for `StealBackoff`.
    pending_backoff: Option<(u32, u32)>,
    /// Reused buffer for mailbox drains.
    mail_buf: Vec<Task<N>>,
    /// Expansion-step counter gating the starvation scan in `poll`.
    push_gate: u32,
    /// Flight-recorder handle for this worker (`None` when tracing is off).
    trace: Option<TraceHandle>,
}

/// Hint value meaning "this worker has nothing to steal".
const NO_WORK_HINT: usize = usize::MAX;

/// One worker's published steal-depth hint — `NO_WORK_HINT` when idle,
/// otherwise the depth of the bottom of its generator stack (a lower bound
/// on what `split_lowest` would hand out) — padded to a cache line so
/// thieves scanning the hint array never false-share with the victims
/// updating it.  (The vendored crossbeam shim has no `CachePadded`, hence
/// the local wrapper.)
#[repr(align(64))]
struct WorkHint(AtomicUsize);

/// The steal-channel work source: one bounded request channel per worker,
/// every worker holding a sender to every other, plus a per-worker *work
/// hint*.
///
/// The hints fix the blind-victim ramp-up cost: a thief used to pick a
/// victim uniformly at random and then block up to the reply timeout on a
/// worker that might never have held work (during start-up, everyone but the
/// root owner is idle — steal attempts mostly hit other thieves).  Now a
/// worker advertises the depth of the bottom of its generator stack while it
/// is traversing a task (one hint store per task, not per step) and thieves
/// target the *shallowest* advertised victim — heuristically the biggest
/// stealable subtree — breaking ties at random, and failing in nanoseconds
/// when nobody has work instead of serialising on 200 µs timeouts.
pub(crate) struct StealSource<N> {
    /// Request senders, one per worker slot.  Wrapped in a mutex so a worker
    /// *re*-registering a slot vacated by a retired worker (elastic grants
    /// recycle worker ids) can swap in a fresh channel; the steal path locks
    /// per attempt, never per step.
    senders: Vec<Mutex<Sender<StealRequest<N>>>>,
    locals: Mutex<Vec<Option<StealLocal<N>>>>,
    hints: Vec<WorkHint>,
    /// Backlogs handed back by retiring workers (cooperative revocation):
    /// there is no shared pool to push to, so the tasks park here and idle
    /// survivors adopt them before attempting any steal.
    parked: Mutex<VecDeque<Task<N>>>,
    /// Victim-selection seed, kept so re-registered slots get a fresh
    /// deterministic generator.
    seed: u64,
    chunked: bool,
    /// How long a waiting thief blocks on a victim's reply before
    /// re-answering its own request channel and re-checking termination
    /// ([`SearchConfig::steal_reply_timeout`]; historically hard-coded to
    /// 200 µs, hoisted so deadline tests on loaded CI machines can widen
    /// it).
    ///
    /// [`SearchConfig::steal_reply_timeout`]: crate::params::SearchConfig::steal_reply_timeout
    reply_timeout: Duration,
    /// Number of localities the worker slots are grouped into (contiguous
    /// blocks of `wpl` ids).  1 = the classic single-locality topology.
    localities: usize,
    /// Worker slots per locality.
    wpl: usize,
    /// Gauge-directed remote routing (off: blind global hint scan).
    routing: bool,
    /// Starvation-triggered work pushing into remote mailboxes.
    pushing: bool,
    /// Per-locality aggregate load gauges: `queued` counts workers of the
    /// locality currently advertising a stealable stack (the remote
    /// routing signal — per-worker *hints* stay locality-private), `idle`
    /// counts workers probing for work (the starvation signal).
    gauges: LocalityGauges,
    /// One starvation mailbox per locality, drained by that locality's
    /// workers in `acquire` before any steal attempt.
    mailboxes: Vec<Mailbox<N>>,
    /// Flight recorder shared by every worker (off by default).
    tracer: Tracer,
}

/// The locality-layer knobs of `SearchConfig`, grouped so construction
/// sites read as one unit.
pub(crate) struct LocalityKnobs {
    pub localities: usize,
    pub routing: bool,
    pub pushing: bool,
}

impl<N> StealSource<N> {
    pub(crate) fn new(
        workers: usize,
        seed: u64,
        chunked: bool,
        reply_timeout: Duration,
        knobs: LocalityKnobs,
        tracer: Tracer,
    ) -> Self {
        let LocalityKnobs {
            localities,
            routing,
            pushing,
        } = knobs;
        let localities = localities.clamp(1, workers.max(1));
        let wpl = workers.max(1).div_ceil(localities);
        // Requests are bounded so thieves cannot pile up unbounded requests
        // on a busy victim.
        let mut senders = Vec::with_capacity(workers);
        let mut locals = Vec::with_capacity(workers);
        for id in 0..workers {
            let (tx, rx) = bounded::<StealRequest<N>>(workers);
            senders.push(Mutex::new(tx));
            locals.push(Some(Self::fresh_local(
                id, rx, seed, workers, localities, wpl,
            )));
        }
        StealSource {
            senders,
            locals: Mutex::new(locals),
            hints: (0..workers)
                .map(|_| WorkHint(AtomicUsize::new(NO_WORK_HINT)))
                .collect(),
            parked: Mutex::new(VecDeque::new()),
            seed,
            chunked,
            reply_timeout,
            localities,
            wpl,
            routing,
            pushing,
            gauges: LocalityGauges::new(localities),
            mailboxes: (0..localities).map(|_| Mailbox::new()).collect(),
            tracer,
        }
    }

    fn fresh_local(
        id: usize,
        rx: Receiver<StealRequest<N>>,
        seed: u64,
        workers: usize,
        localities: usize,
        wpl: usize,
    ) -> StealLocal<N> {
        StealLocal {
            id,
            locality: (id / wpl).min(localities - 1),
            rx,
            backlog: VecDeque::new(),
            rng: SmallRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15)),
            advertised: NO_WORK_HINT,
            scratch: Vec::with_capacity(workers),
            last_victim: UNKNOWN_VICTIM,
            idle: false,
            miss_streak: vec![0; localities],
            skip: vec![0; localities],
            routed: None,
            pending_backoff: None,
            mail_buf: Vec::new(),
            push_gate: 0,
            trace: None,
        }
    }

    /// The contiguous worker-slot span `[start, end)` of a locality.
    fn locality_span(&self, locality: usize) -> (usize, usize) {
        let start = locality * self.wpl;
        let end = (start + self.wpl).min(self.senders.len());
        (start, end)
    }

    /// Publish or retract (`NO_WORK_HINT`) this worker's steal-depth hint
    /// (idempotent; the `advertised` cache keeps stores off the steady path —
    /// the hint only changes between tasks).  Hint transitions feed the
    /// locality's queued gauge: a worker advertising a stealable stack
    /// counts as one unit of remotely visible work, incremented *before*
    /// the hint becomes visible and decremented *after* it is retracted
    /// (the over-approximation protocol of [`LocalityGauges`]).
    fn advertise(&self, local: &mut StealLocal<N>, depth: usize) {
        if local.advertised != depth {
            if local.advertised == NO_WORK_HINT {
                self.gauges.tasks_queued(local.locality, 1);
            }
            // ordering: advisory steal hint — a stale value only sends a
            // thief to a worse victim; actual work moves over channels.
            self.hints[local.id].0.store(depth, Ordering::Relaxed);
            if depth == NO_WORK_HINT {
                self.gauges.tasks_taken(local.locality, 1);
            }
            local.advertised = depth;
        }
    }

    /// Count the worker into its locality's idle gauge (idempotent per
    /// idle episode).
    fn mark_idle(&self, local: &mut StealLocal<N>) {
        if !local.idle {
            self.gauges.worker_idle(local.locality);
            local.idle = true;
        }
    }

    /// Take the worker back out of the idle gauge, paired with
    /// [`mark_idle`](Self::mark_idle).
    fn mark_busy(&self, local: &mut StealLocal<N>) {
        if local.idle {
            self.gauges.worker_busy(local.locality);
            local.idle = false;
        }
    }

    /// Reply "no work" to any queued requests so thieves do not wait for the
    /// full timeout when the victim is itself idle.
    fn drain_requests_empty(rx: &Receiver<StealRequest<N>>) {
        while let Ok(req) = rx.try_recv() {
            let _ = req.reply.send(Vec::new());
        }
    }

    /// Scan the hints of worker slots `[start, end)` for the *shallowest*
    /// advertised victim (ties broken at random), excluding the thief
    /// itself.  `None` when nobody in the span advertises work.
    fn pick_shallowest(
        &self,
        local: &mut StealLocal<N>,
        start: usize,
        end: usize,
    ) -> Option<usize> {
        local.scratch.clear();
        let mut best = NO_WORK_HINT;
        for v in start..end {
            if v == local.id {
                continue;
            }
            // ordering: advisory hint read; see advertise() — staleness
            // only degrades victim choice, never correctness.
            let depth = self.hints[v].0.load(Ordering::Relaxed);
            match depth.cmp(&best) {
                std::cmp::Ordering::Less => {
                    best = depth;
                    local.scratch.clear();
                    local.scratch.push(v);
                }
                std::cmp::Ordering::Equal if depth != NO_WORK_HINT => local.scratch.push(v),
                _ => {}
            }
        }
        if local.scratch.is_empty() {
            return None;
        }
        Some(local.scratch[local.rng.gen_range(0..local.scratch.len())])
    }

    /// Pick a victim and ask it for work.  With one locality (or routing
    /// off) this is the classic global hint scan: shallowest advertised
    /// victim, ties random, failing immediately when nobody advertises —
    /// which is what keeps idle workers cheap while the search ramps up or
    /// drains.  With routing on, the scan is two-level: hints are consulted
    /// only *within* the thief's own locality; a remote attempt instead
    /// reads the per-locality load gauges, targets the least-loaded
    /// non-empty remote locality (skipping any in back-off) and asks a
    /// blind-random victim inside it — aggregates route, hints never leave
    /// their locality, and the blind victim pick preserves the
    /// anti-strip-mining invariant.
    fn attempt_steal(&self, local: &mut StealLocal<N>) -> Option<Vec<Task<N>>> {
        local.last_victim = UNKNOWN_VICTIM;
        local.routed = None;
        local.pending_backoff = None;
        if !self.routing || self.localities <= 1 {
            let victim = self.pick_shallowest(local, 0, self.senders.len())?;
            return self.request_from(local, victim);
        }
        // Level 1: own locality, hint-ranked (cheap, cache-local).
        let (start, end) = self.locality_span(local.locality);
        if let Some(victim) = self.pick_shallowest(local, start, end) {
            return self.request_from(local, victim);
        }
        // Level 2: gauge-routed remote locality, honouring back-off.
        let mut best: Option<(u64, usize)> = None;
        let mut skipped: Option<(u32, u32)> = None;
        for l in 0..self.localities {
            if l == local.locality {
                continue;
            }
            let load = self.gauges.queued(l);
            if load == 0 {
                continue;
            }
            if local.skip[l] > 0 {
                local.skip[l] -= 1;
                if skipped.is_none() {
                    skipped = Some((l as u32, local.miss_streak[l]));
                }
                continue;
            }
            if best.map_or(true, |(bl, bi)| (load, l) < (bl, bi)) {
                best = Some((load, l));
            }
        }
        let Some((load, target)) = best else {
            // Every non-empty remote locality is in back-off: this probe
            // becomes a nap, attributed in `acquire`.
            local.pending_backoff = skipped;
            return None;
        };
        let (rstart, rend) = self.locality_span(target);
        let victim = rstart + local.rng.gen_range(0..rend - rstart);
        local.routed = Some((target as u32, load));
        let stolen = self.request_from(local, victim);
        if stolen.is_some() {
            local.miss_streak[target] = 0;
        } else {
            let streak = &mut local.miss_streak[target];
            *streak = streak.saturating_add(1);
            // Capped exponential back-off: skip this locality for the next
            // 2^min(streak, CAP) routing decisions.
            local.skip[target] = 1u32 << (*streak).min(BACKOFF_CAP);
        }
        stolen
    }

    /// Deliver a steal request to `victim` and await its resolution.
    fn request_from(&self, local: &mut StealLocal<N>, victim: usize) -> Option<Vec<Task<N>>> {
        local.last_victim = victim as u32;
        if let Some(trace) = &local.trace {
            trace.emit(TraceEvent::StealRequest {
                victim: victim as u32,
            });
        }
        // Never deliver a request to a victim that has not registered yet:
        // it cannot answer, and on a persistent runtime pool smaller than
        // the search's worker count the victim's worker job may be queued
        // *behind this thief's own pool thread* — waiting on its reply
        // would then deadlock the search.  (Registering between this check
        // and the send is benign: a registered victim answers.)
        if self.locals.lock()[victim].is_some() {
            return None;
        }
        let (reply_tx, reply_rx) = bounded(1);
        if self.senders[victim]
            .lock()
            .try_send(StealRequest { reply: reply_tx })
            .is_err()
        {
            return None;
        }
        // Once the request is delivered the thief must not abandon it: the
        // victim may already have removed subtrees from its generator stack
        // and registered them with the termination counter — dropping
        // `reply_rx` at that instant would destroy them and hang the
        // search, or (after a stop) leak them from the outstanding counter.
        // Waiting until the request *resolves* is safe and bounded: victims
        // poll their channel on every expansion step, answer "no work"
        // whenever they are idle (including below, so waiting thieves
        // cannot deadlock each other), and drop their endpoints on exit —
        // a stopped search therefore resolves every pending request as
        // either a buffered reply (kept, then drained by `drain_local`) or
        // a disconnect, and `Termination::outstanding()` reaches zero even
        // for cancelled or timed-out Stack-Stealing runs.
        loop {
            match reply_rx.recv_timeout(self.reply_timeout) {
                Ok(tasks) if tasks.is_empty() => return None,
                Ok(tasks) => return Some(tasks),
                Err(RecvTimeoutError::Disconnected) => return None,
                Err(RecvTimeoutError::Timeout) => {
                    // Answer anyone asking *us* while we wait; we hold no
                    // work, so "empty" is always the right reply.  Even
                    // when `term.finished()` we keep waiting for the
                    // resolution — it arrives promptly (the victim either
                    // replies on its next step or exits and disconnects).
                    Self::drain_requests_empty(&local.rx);
                }
            }
        }
    }
}

impl<P: SearchProblem> WorkSource<P> for StealSource<P::Node> {
    type Local = StealLocal<P::Node>;

    fn register(&self, worker: usize) -> Self::Local {
        let mut local = match self.locals.lock()[worker].take() {
            Some(local) => local,
            None => {
                // The slot's previous occupant retired (elastic grants
                // recycle worker ids).  Give the new occupant a fresh
                // channel: the old receiver died with the retiree, so any
                // raced request on the old sender resolves on the thief's
                // side as a disconnect (a failed steal), never a hang.
                let workers = self.senders.len();
                let (tx, rx) = bounded::<StealRequest<P::Node>>(workers);
                *self.senders[worker].lock() = tx;
                Self::fresh_local(worker, rx, self.seed, workers, self.localities, self.wpl)
            }
        };
        local.trace = self.tracer.handle(worker as u32);
        local
    }

    fn seed(&self, task: Task<P::Node>) {
        // The root starts on worker 0's backlog; everyone else steals.
        let mut locals = self.locals.lock();
        locals[0]
            .as_mut()
            .expect("seed before registration")
            .backlog
            .push_back(task);
    }

    fn pop(&self, local: &mut Self::Local) -> Option<Task<P::Node>> {
        match local.backlog.pop_front() {
            Some(task) => {
                self.mark_busy(local);
                Some(task)
            }
            None => None,
        }
    }

    fn acquire(
        &self,
        local: &mut Self::Local,
        _term: &Termination,
        metrics: &mut WorkerMetrics,
    ) -> Option<Task<P::Node>> {
        // Idle: retract the work hint, count into the locality's idle gauge
        // (the starvation signal pushers react to), answer any pending
        // requests with "no work", then adopt any backlog parked by a
        // retired worker and drain the locality mailbox before bothering a
        // victim (single worker: no one to steal from).
        self.advertise(local, NO_WORK_HINT);
        self.mark_idle(local);
        Self::drain_requests_empty(&local.rx);
        {
            let mut parked = self.parked.lock();
            if !parked.is_empty() {
                local.backlog.extend(parked.drain(..));
            }
        }
        if self.mailboxes[local.locality].drain(&mut local.mail_buf) > 0 {
            // Pushed work arrived addressed to this locality: adopting it
            // also resets the remote back-off — the cluster's load picture
            // just changed.
            local.backlog.extend(local.mail_buf.drain(..));
            for l in 0..self.localities {
                local.skip[l] = 0;
                local.miss_streak[l] = 0;
            }
        }
        if let Some(task) = local.backlog.pop_front() {
            self.mark_busy(local);
            return Some(task);
        }
        if self.senders.len() <= 1 {
            return None;
        }
        match self.attempt_steal(local) {
            Some(tasks) => {
                metrics.steals += 1;
                if let Some(trace) = &local.trace {
                    trace.emit(TraceEvent::StealHit {
                        victim: local.last_victim,
                        tasks: tasks.len() as u32,
                        remote: local.routed.is_some(),
                    });
                }
                if let Some((locality, load)) = local.routed.take() {
                    // A gauge-directed cross-locality steal that landed.
                    metrics.routed_steals += 1;
                    if let Some(trace) = &local.trace {
                        trace.emit(TraceEvent::StealRouted { locality, load });
                    }
                }
                self.mark_busy(local);
                local.backlog.extend(tasks);
                local.backlog.pop_front()
            }
            None => {
                metrics.failed_steals += 1;
                if let Some(trace) = &local.trace {
                    trace.emit(TraceEvent::StealMiss {
                        victim: local.last_victim,
                    });
                }
                if let Some((locality, misses)) = local.pending_backoff.take() {
                    // Routing saw work but every candidate was in back-off:
                    // this idle round is a deliberate nap, not a miss.
                    metrics.backoff_naps += 1;
                    if let Some(trace) = &local.trace {
                        trace.emit(TraceEvent::StealBackoff { locality, misses });
                    }
                }
                None
            }
        }
    }

    fn release(
        &self,
        local: &mut Self::Local,
        tasks: &mut Vec<Task<P::Node>>,
        _metrics: &mut WorkerMetrics,
    ) {
        local.backlog.extend(tasks.drain(..));
    }

    fn poll(
        &self,
        local: &mut Self::Local,
        stack: &mut GenStack<'_, P>,
        term: &Termination,
        metrics: &mut WorkerMetrics,
    ) {
        // This worker is mid-traversal: make it a steal candidate at the
        // depth of its stack base (a store only when the hint changes —
        // once per task, since the base frame is fixed for the task's
        // lifetime).
        self.advertise(local, stack.base_depth().unwrap_or(NO_WORK_HINT));
        // Work pushing: every PUSH_CHECK_STRIDE expansion steps, a busy
        // worker scans the gauges for a starved remote locality (idle
        // workers, zero queued signal, empty mailbox) and proactively
        // pushes a bounded chunk of its own lowest-depth subtrees into that
        // locality's mailbox — the victim-initiated dual of a steal, which
        // closes the ramp-up gap where a blind remote probe would only find
        // the work with probability 1/workers.
        if self.pushing && self.localities > 1 {
            local.push_gate = local.push_gate.wrapping_add(1);
            if local.push_gate % PUSH_CHECK_STRIDE == 0 {
                let start = local.rng.gen_range(0..self.localities);
                for i in 0..self.localities {
                    let target = (start + i) % self.localities;
                    if target == local.locality
                        || !self.gauges.starved(target, 1)
                        || self.mailboxes[target].is_occupied()
                    {
                        continue;
                    }
                    let mut burst = stack.split_lowest(true);
                    if burst.is_empty() {
                        break;
                    }
                    // Bound the pushed batch; overflow stays local (it is
                    // registered either way).
                    let overflow = burst.split_off(burst.len().min(PUSH_BATCH));
                    term.task_spawned((burst.len() + overflow.len()) as u64);
                    metrics.spawns += (burst.len() + overflow.len()) as u64;
                    metrics.pushed_tasks += burst.len() as u64;
                    if let Some(trace) = &local.trace {
                        trace.emit(TraceEvent::WorkPushed {
                            locality: target as u32,
                            tasks: burst.len() as u32,
                        });
                    }
                    self.mailboxes[target].push(&mut burst);
                    local.backlog.extend(overflow);
                    break;
                }
            }
        }
        // Serve at most one steal request per expansion step (mirrors the
        // per-iteration check in Listing 3).
        let request = match local.rx.try_recv() {
            Ok(request) => request,
            Err(_) => return,
        };
        let stolen = stack.split_lowest(self.chunked);
        if stolen.is_empty() {
            let _ = request.reply.send(Vec::new());
            return;
        }
        // Register the new tasks before they leave this worker so the
        // termination counter never under-counts live work.
        term.task_spawned(stolen.len() as u64);
        metrics.spawns += stolen.len() as u64;
        if let Err(send_err) = request.reply.send(stolen) {
            // The thief gave up waiting (or the search is finishing).  The
            // subtrees were already removed from our generator stack, so
            // keep them in our own backlog; they remain registered as
            // outstanding tasks and will be completed when we execute them
            // ourselves.
            local.backlog.extend(send_err.into_inner());
        }
    }

    /// Tasks abandoned in this worker's private backlog by a stop
    /// (short-circuit, cancel, deadline) never run; the engine drains them
    /// from the outstanding counter as the worker exits.
    fn drain_local(&self, local: &mut Self::Local) -> usize {
        self.advertise(local, NO_WORK_HINT);
        // Leave the idle gauge balanced on exit so no phantom idle worker
        // keeps attracting pushed work.
        self.mark_busy(local);
        let n = local.backlog.len();
        local.backlog.clear();
        n
    }

    /// Tasks parked by retired workers and never adopted — plus mailbox
    /// batches no worker drained — are dropped when the search stops (the
    /// engine calls this after the join and on short-circuits), keeping the
    /// outstanding counter exact on cancel/deadline exits too.
    fn discard(&self) -> usize {
        let mailed: usize = self.mailboxes.iter().map(|m| m.clear()).sum();
        let mut parked = self.parked.lock();
        let n = parked.len();
        parked.clear();
        n + mailed
    }

    /// Cooperative revocation: retract the hint (thieves stop targeting this
    /// slot), flush pending requests, and park the backlog for the survivors
    /// — the tasks stay registered with the termination counter throughout.
    fn retire(&self, local: &mut Self::Local) {
        self.advertise(local, NO_WORK_HINT);
        self.mark_busy(local);
        Self::drain_requests_empty(&local.rx);
        if !local.backlog.is_empty() {
            self.parked.lock().extend(local.backlog.drain(..));
        }
    }
}

/// Run the Stack-Stealing coordination.
pub(crate) fn run<P, D>(
    problem: &P,
    driver: &D,
    config: &SearchConfig,
    chunked: bool,
    term: &Termination,
    lifecycle: &Lifecycle,
) -> (Vec<WorkerMetrics>, Duration)
where
    P: SearchProblem,
    D: Driver<P>,
{
    let workers = lifecycle.worker_count(config);
    // Channels, hints and locals exist for every worker id an elastic grant
    // could mint, not just the initial count.
    let capacity = lifecycle.worker_capacity(config);
    engine::run(
        problem,
        driver,
        workers,
        StealSource::new(
            capacity,
            config.steal_seed,
            chunked,
            config.steal_reply_timeout,
            LocalityKnobs {
                localities: config.localities,
                routing: config.steal_routing,
                pushing: config.work_pushing,
            },
            lifecycle.tracer.clone(),
        ),
        NoSpawn,
        term,
        lifecycle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;
    use crate::objective::{Decide, Enumerate, Optimise};
    use crate::skeleton::driver::{DecideDriver, EnumDriver};

    struct Wide {
        depth: usize,
    }

    impl SearchProblem for Wide {
        type Node = (usize, u64);
        type Gen<'a> = std::vec::IntoIter<(usize, u64)>;
        fn root(&self) -> (usize, u64) {
            (0, 7)
        }
        fn generator(&self, node: &(usize, u64)) -> Self::Gen<'_> {
            let (depth, seed) = *node;
            if depth >= self.depth {
                return vec![].into_iter();
            }
            let width = (seed % 3 + 2) as usize;
            (0..width)
                .map(|i| {
                    (
                        depth + 1,
                        seed.wrapping_mul(2862933555777941757)
                            .wrapping_add(i as u64),
                    )
                })
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    impl Enumerate for Wide {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u64)) -> Sum<u64> {
            Sum(1)
        }
    }

    impl Optimise for Wide {
        type Score = u64;
        fn objective(&self, node: &(usize, u64)) -> u64 {
            node.1 % 101
        }
    }

    impl Decide for Wide {
        fn target(&self) -> u64 {
            100
        }
    }

    fn config(workers: usize) -> SearchConfig {
        SearchConfig {
            workers,
            ..SearchConfig::default()
        }
    }

    fn run_plain<P, D>(
        problem: &P,
        driver: &D,
        config: &SearchConfig,
        chunked: bool,
    ) -> (Vec<WorkerMetrics>, Duration)
    where
        P: SearchProblem,
        D: Driver<P>,
    {
        run(
            problem,
            driver,
            config,
            chunked,
            &Termination::new(1),
            &Lifecycle::inert(),
        )
    }

    #[test]
    fn single_worker_stack_stealing_degenerates_to_sequential() {
        let p = Wide { depth: 6 };
        let expected = crate::node::subtree_size(&p, &p.root());
        let driver = EnumDriver::<Wide>::new();
        let (metrics, _) = run_plain(&p, &driver, &config(1), false);
        assert_eq!(driver.into_value(), Sum(expected));
        assert_eq!(metrics[0].steals, 0);
    }

    #[test]
    fn multi_worker_counts_match_with_and_without_chunking() {
        let p = Wide { depth: 8 };
        let expected = crate::node::subtree_size(&p, &p.root());
        for chunked in [false, true] {
            let driver = EnumDriver::<Wide>::new();
            let (metrics, _) = run_plain(&p, &driver, &config(4), chunked);
            assert_eq!(driver.into_value(), Sum(expected), "chunked={chunked}");
            let total: u64 = metrics.iter().map(|m| m.nodes).sum();
            assert_eq!(total, expected);
        }
    }

    #[test]
    fn decision_short_circuit_terminates_all_workers() {
        let p = Wide { depth: 20 };
        let driver = DecideDriver::<Wide>::new(100);
        let (_, elapsed) = run_plain(&p, &driver, &config(3), true);
        // A value ≡ 100 (mod 101) appears quickly in this pseudo-random
        // labelling; the whole (enormous) tree is certainly not explored.
        assert!(elapsed < Duration::from_secs(30));
        assert!(driver.into_witness().is_some());
    }
}
