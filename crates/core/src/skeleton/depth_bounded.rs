//! Depth-Bounded search coordination (the (spawn-depth) rule).
//!
//! Every node shallower than the cutoff depth has its children converted to
//! tasks, queued in heuristic order on the worker's own shard of the sharded
//! depth pool; nodes at or below the cutoff are explored sequentially by the
//! worker that picked them up.  Spawns happen as tasks execute (not all
//! up-front), just as in the YewPar implementation.  All worker-loop
//! machinery lives in `crate::engine`; this module is only the eager spawn
//! policy.

use std::time::Duration;

use crate::engine::{self, PoolSource, SpawnPolicy, WorkSource};
use crate::lifecycle::Lifecycle;
use crate::metrics::WorkerMetrics;
use crate::node::SearchProblem;
use crate::params::SearchConfig;
use crate::skeleton::driver::Driver;
use crate::termination::Termination;

/// Spawn the children of every node shallower than `dcutoff`.
pub(crate) struct DepthPolicy {
    dcutoff: usize,
}

impl<P: SearchProblem, S: WorkSource<P>> SpawnPolicy<P, S> for DepthPolicy {
    fn spawn_children(&self, depth: usize) -> bool {
        depth < self.dcutoff
    }
}

/// Run the Depth-Bounded coordination with the given cutoff depth.
pub(crate) fn run<P, D>(
    problem: &P,
    driver: &D,
    config: &SearchConfig,
    dcutoff: usize,
    term: &Termination,
    lifecycle: &Lifecycle,
) -> (Vec<WorkerMetrics>, Duration)
where
    P: SearchProblem,
    D: Driver<P>,
{
    let workers = lifecycle.worker_count(config);
    // Shard the pool for every worker id an elastic grant could mint, not
    // just the initial count, so grown workers get their own shard.
    let capacity = lifecycle.worker_capacity(config);
    engine::run(
        problem,
        driver,
        workers,
        PoolSource::configured(
            capacity,
            config.localities,
            config.steal_routing,
            config.work_pushing,
            config.steal_seed,
            lifecycle.tracer.clone(),
        ),
        DepthPolicy { dcutoff },
        term,
        lifecycle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;
    use crate::objective::Enumerate;
    use crate::skeleton::driver::EnumDriver;

    fn run_plain<P, D>(
        problem: &P,
        driver: &D,
        config: &SearchConfig,
        param: usize,
    ) -> (Vec<WorkerMetrics>, Duration)
    where
        P: SearchProblem,
        D: Driver<P>,
    {
        run(
            problem,
            driver,
            config,
            param,
            &Termination::new(1),
            &Lifecycle::inert(),
        )
    }

    struct Fanout {
        depth: usize,
        width: usize,
    }

    impl SearchProblem for Fanout {
        type Node = usize;
        type Gen<'a> = std::vec::IntoIter<usize>;
        fn root(&self) -> usize {
            0
        }
        fn generator(&self, node: &usize) -> Self::Gen<'_> {
            if *node < self.depth {
                vec![node + 1; self.width].into_iter()
            } else {
                vec![].into_iter()
            }
        }
    }

    impl Enumerate for Fanout {
        type Value = Sum<u64>;
        fn value(&self, _n: &usize) -> Sum<u64> {
            Sum(1)
        }
    }

    fn expected_nodes(depth: usize, width: usize) -> u64 {
        (0..=depth).map(|d| (width as u64).pow(d as u32)).sum()
    }

    #[test]
    fn counts_match_for_various_cutoffs() {
        let p = Fanout { depth: 5, width: 3 };
        let cfg = SearchConfig {
            workers: 3,
            ..SearchConfig::default()
        };
        for dcutoff in [0, 1, 2, 5, 10] {
            let driver = EnumDriver::<Fanout>::new();
            let (metrics, _) = run_plain(&p, &driver, &cfg, dcutoff);
            assert_eq!(
                driver.into_value(),
                Sum(expected_nodes(5, 3)),
                "dcutoff={dcutoff}"
            );
            let total: u64 = metrics.iter().map(|m| m.nodes).sum();
            assert_eq!(total, expected_nodes(5, 3));
        }
    }

    #[test]
    fn cutoff_zero_spawns_nothing() {
        let p = Fanout { depth: 4, width: 2 };
        let cfg = SearchConfig {
            workers: 2,
            ..SearchConfig::default()
        };
        let driver = EnumDriver::<Fanout>::new();
        let (metrics, _) = run_plain(&p, &driver, &cfg, 0);
        assert_eq!(metrics.iter().map(|m| m.spawns).sum::<u64>(), 0);
        assert_eq!(driver.into_value(), Sum(expected_nodes(4, 2)));
    }

    #[test]
    fn deep_cutoff_spawns_every_internal_node_expansion() {
        let p = Fanout { depth: 3, width: 2 };
        let cfg = SearchConfig {
            workers: 2,
            ..SearchConfig::default()
        };
        let driver = EnumDriver::<Fanout>::new();
        let (metrics, _) = run_plain(&p, &driver, &cfg, 100);
        // Every node except the root is spawned as a task.
        assert_eq!(
            metrics.iter().map(|m| m.spawns).sum::<u64>(),
            expected_nodes(3, 2) - 1
        );
        assert_eq!(driver.into_value(), Sum(expected_nodes(3, 2)));
    }
}
