//! Depth-Bounded search coordination (the (spawn-depth) rule).
//!
//! Every node shallower than the cutoff depth has its children converted to
//! tasks, queued in heuristic order in the shared order-preserving workpool;
//! nodes at or below the cutoff are explored sequentially by the worker that
//! picked them up.  Spawns happen as tasks execute (not all up-front), just
//! as in the YewPar implementation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use super::driver::{Action, Driver};
use super::sequential::{explore_subtree, Flow};
use crate::metrics::WorkerMetrics;
use crate::node::SearchProblem;
use crate::params::SearchConfig;
use crate::termination::Termination;
use crate::workpool::{DepthPool, Task};

/// Run the Depth-Bounded coordination with the given cutoff depth.
pub(crate) fn run<P, D>(
    problem: &P,
    driver: &D,
    config: &SearchConfig,
    dcutoff: usize,
) -> (Vec<WorkerMetrics>, Duration)
where
    P: SearchProblem,
    D: Driver<P>,
{
    let start = Instant::now();
    let workers = config.workers.max(1);
    let pool: DepthPool<P::Node> = DepthPool::new();
    let term = Termination::new(1);
    let poisoned = AtomicBool::new(false);
    pool.push(Task::new(problem.root(), 0));

    let mut all_metrics = vec![WorkerMetrics::default(); workers];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| worker_loop(problem, driver, &pool, &term, dcutoff)));
        }
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(metrics) => all_metrics[i] = metrics,
                Err(_) => poisoned.store(true, Ordering::Relaxed),
            }
        }
    });
    if poisoned.load(Ordering::Relaxed) {
        panic!("a depth-bounded search worker panicked");
    }
    (all_metrics, start.elapsed())
}

fn worker_loop<P, D>(
    problem: &P,
    driver: &D,
    pool: &DepthPool<P::Node>,
    term: &Termination,
    dcutoff: usize,
) -> WorkerMetrics
where
    P: SearchProblem,
    D: Driver<P>,
{
    let mut metrics = WorkerMetrics::default();
    let mut partial = driver.new_partial();
    let mut idle_spins: u32 = 0;

    loop {
        if term.finished() {
            break;
        }
        match pool.pop() {
            Some(task) => {
                idle_spins = 0;
                let flow = execute_task(problem, driver, &mut partial, &mut metrics, pool, term, dcutoff, task);
                if flow == Flow::ShortCircuited {
                    term.short_circuit();
                }
                term.task_completed();
            }
            None => {
                if term.all_done() {
                    break;
                }
                // Exponential-ish backoff: spin briefly, then sleep so idle
                // workers do not starve the busy ones on small machines.
                idle_spins = idle_spins.saturating_add(1);
                if idle_spins < 16 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    driver.merge(partial);
    metrics
}

/// Execute one task: process its root; above the cutoff spawn children as
/// new tasks, otherwise explore the subtree sequentially.
#[allow(clippy::too_many_arguments)]
fn execute_task<P, D>(
    problem: &P,
    driver: &D,
    partial: &mut D::Partial,
    metrics: &mut WorkerMetrics,
    pool: &DepthPool<P::Node>,
    term: &Termination,
    dcutoff: usize,
    task: Task<P::Node>,
) -> Flow
where
    P: SearchProblem,
    D: Driver<P>,
{
    if task.depth < dcutoff {
        metrics.nodes += 1;
        metrics.max_depth = metrics.max_depth.max(task.depth as u64);
        match driver.process(problem, &task.node, partial) {
            Action::Expand => {}
            Action::Prune | Action::PruneSiblings => {
                metrics.prunes += 1;
                return Flow::Completed;
            }
            Action::ShortCircuit => return Flow::ShortCircuited,
        }
        // Spawn each child as a task, preserving heuristic order.  Register
        // the spawns before pushing so the termination counter can never
        // observe an empty system while tasks exist.
        let children: Vec<Task<P::Node>> = problem
            .generator(&task.node)
            .map(|child| Task::new(child, task.depth + 1))
            .collect();
        term.task_spawned(children.len() as u64);
        metrics.spawns += children.len() as u64;
        pool.push_all(children);
        Flow::Completed
    } else {
        explore_subtree(problem, driver, partial, metrics, Some(term), &task.node, task.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;
    use crate::objective::Enumerate;
    use crate::skeleton::driver::EnumDriver;

    struct Fanout {
        depth: usize,
        width: usize,
    }

    impl SearchProblem for Fanout {
        type Node = usize;
        type Gen<'a> = std::vec::IntoIter<usize>;
        fn root(&self) -> usize {
            0
        }
        fn generator(&self, node: &usize) -> Self::Gen<'_> {
            if *node < self.depth {
                vec![node + 1; self.width].into_iter()
            } else {
                vec![].into_iter()
            }
        }
    }

    impl Enumerate for Fanout {
        type Value = Sum<u64>;
        fn value(&self, _n: &usize) -> Sum<u64> {
            Sum(1)
        }
    }

    fn expected_nodes(depth: usize, width: usize) -> u64 {
        (0..=depth).map(|d| (width as u64).pow(d as u32)).sum()
    }

    #[test]
    fn counts_match_for_various_cutoffs() {
        let p = Fanout { depth: 5, width: 3 };
        let cfg = SearchConfig {
            workers: 3,
            ..SearchConfig::default()
        };
        for dcutoff in [0, 1, 2, 5, 10] {
            let driver = EnumDriver::<Fanout>::new();
            let (metrics, _) = run(&p, &driver, &cfg, dcutoff);
            assert_eq!(driver.into_value(), Sum(expected_nodes(5, 3)), "dcutoff={dcutoff}");
            let total: u64 = metrics.iter().map(|m| m.nodes).sum();
            assert_eq!(total, expected_nodes(5, 3));
        }
    }

    #[test]
    fn cutoff_zero_spawns_nothing() {
        let p = Fanout { depth: 4, width: 2 };
        let cfg = SearchConfig {
            workers: 2,
            ..SearchConfig::default()
        };
        let driver = EnumDriver::<Fanout>::new();
        let (metrics, _) = run(&p, &driver, &cfg, 0);
        assert_eq!(metrics.iter().map(|m| m.spawns).sum::<u64>(), 0);
        assert_eq!(driver.into_value(), Sum(expected_nodes(4, 2)));
    }

    #[test]
    fn deep_cutoff_spawns_every_internal_node_expansion() {
        let p = Fanout { depth: 3, width: 2 };
        let cfg = SearchConfig {
            workers: 2,
            ..SearchConfig::default()
        };
        let driver = EnumDriver::<Fanout>::new();
        let (metrics, _) = run(&p, &driver, &cfg, 100);
        // Every node except the root is spawned as a task.
        assert_eq!(
            metrics.iter().map(|m| m.spawns).sum::<u64>(),
            expected_nodes(3, 2) - 1
        );
        assert_eq!(driver.into_value(), Sum(expected_nodes(3, 2)));
    }
}
