//! Budget search coordination (the (spawn-budget) rule, paper Listing 4).
//!
//! Workers search their task sequentially until they have backtracked as
//! many times as the user-supplied budget allows.  A task that exhausts its
//! budget is assumed to hold a significant amount of work, so all of its
//! lowest-depth unexplored subtrees are spawned into the shared workpool (in
//! heuristic order) and the backtrack counter is reset.  This implements
//! asynchronous periodic load balancing similar to the `mts` framework the
//! paper cites.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use super::driver::{Action, Driver};
use crate::genstack::GenStack;
use super::sequential::Flow;
use crate::metrics::WorkerMetrics;
use crate::node::SearchProblem;
use crate::params::SearchConfig;
use crate::termination::Termination;
use crate::workpool::{DepthPool, Task};

/// Run the Budget coordination with the given backtrack budget.
pub(crate) fn run<P, D>(
    problem: &P,
    driver: &D,
    config: &SearchConfig,
    budget: u64,
) -> (Vec<WorkerMetrics>, Duration)
where
    P: SearchProblem,
    D: Driver<P>,
{
    let start = Instant::now();
    let workers = config.workers.max(1);
    let pool: DepthPool<P::Node> = DepthPool::new();
    let term = Termination::new(1);
    let poisoned = AtomicBool::new(false);
    pool.push(Task::new(problem.root(), 0));

    let mut all_metrics = vec![WorkerMetrics::default(); workers];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| worker_loop(problem, driver, &pool, &term, budget)));
        }
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(metrics) => all_metrics[i] = metrics,
                Err(_) => poisoned.store(true, Ordering::Relaxed),
            }
        }
    });
    if poisoned.load(Ordering::Relaxed) {
        panic!("a budget search worker panicked");
    }
    (all_metrics, start.elapsed())
}

fn worker_loop<P, D>(
    problem: &P,
    driver: &D,
    pool: &DepthPool<P::Node>,
    term: &Termination,
    budget: u64,
) -> WorkerMetrics
where
    P: SearchProblem,
    D: Driver<P>,
{
    let mut metrics = WorkerMetrics::default();
    let mut partial = driver.new_partial();
    let mut idle_spins: u32 = 0;

    loop {
        if term.finished() {
            break;
        }
        match pool.pop() {
            Some(task) => {
                idle_spins = 0;
                let flow = execute_task(problem, driver, &mut partial, &mut metrics, pool, term, budget, task);
                if flow == Flow::ShortCircuited {
                    term.short_circuit();
                }
                term.task_completed();
            }
            None => {
                if term.all_done() {
                    break;
                }
                idle_spins = idle_spins.saturating_add(1);
                if idle_spins < 16 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    driver.merge(partial);
    metrics
}

/// Execute one task with a backtrack budget (paper Listing 4).
#[allow(clippy::too_many_arguments)]
fn execute_task<P, D>(
    problem: &P,
    driver: &D,
    partial: &mut D::Partial,
    metrics: &mut WorkerMetrics,
    pool: &DepthPool<P::Node>,
    term: &Termination,
    budget: u64,
    task: Task<P::Node>,
) -> Flow
where
    P: SearchProblem,
    D: Driver<P>,
{
    metrics.nodes += 1;
    metrics.max_depth = metrics.max_depth.max(task.depth as u64);
    match driver.process(problem, &task.node, partial) {
        Action::Expand => {}
        Action::Prune | Action::PruneSiblings => {
            metrics.prunes += 1;
            return Flow::Completed;
        }
        Action::ShortCircuit => return Flow::ShortCircuited,
    }

    let mut stack = GenStack::new();
    stack.push(problem, &task.node, task.depth);
    let mut backtracks_since_spawn: u64 = 0;

    while !stack.is_empty() {
        if term.short_circuited() {
            return Flow::ShortCircuited;
        }
        if backtracks_since_spawn >= budget {
            // Offload all unexplored subtrees at the lowest depth of this
            // task's stack, preserving heuristic order, then keep searching
            // with a fresh budget.
            let offload = stack.split_lowest(true);
            if !offload.is_empty() {
                term.task_spawned(offload.len() as u64);
                metrics.spawns += offload.len() as u64;
                pool.push_all(offload);
            }
            backtracks_since_spawn = 0;
        }
        match stack.next_child() {
            Some((child, depth)) => {
                metrics.nodes += 1;
                metrics.max_depth = metrics.max_depth.max(depth as u64);
                match driver.process(problem, &child, partial) {
                    Action::Expand => stack.push(problem, &child, depth),
                    Action::Prune => metrics.prunes += 1,
                    Action::PruneSiblings => {
                        metrics.prunes += 1;
                        stack.pop();
                        metrics.backtracks += 1;
                        backtracks_since_spawn += 1;
                    }
                    Action::ShortCircuit => return Flow::ShortCircuited,
                }
            }
            None => {
                stack.pop();
                metrics.backtracks += 1;
                backtracks_since_spawn += 1;
            }
        }
    }
    Flow::Completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;
    use crate::objective::Enumerate;
    use crate::skeleton::driver::EnumDriver;

    /// Left-heavy irregular tree to force mid-task splitting.
    struct Skewed {
        depth: usize,
    }

    impl SearchProblem for Skewed {
        type Node = (usize, u32);
        type Gen<'a> = std::vec::IntoIter<(usize, u32)>;
        fn root(&self) -> (usize, u32) {
            (0, 0)
        }
        fn generator(&self, node: &(usize, u32)) -> Self::Gen<'_> {
            let (depth, kind) = *node;
            if depth >= self.depth {
                return vec![].into_iter();
            }
            // The leftmost child is "heavy" (kind 0 keeps branching), the
            // others are lighter.
            let width = if kind == 0 { 4 } else { 2 };
            (0..width).map(|i| (depth + 1, i)).collect::<Vec<_>>().into_iter()
        }
    }

    impl Enumerate for Skewed {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u32)) -> Sum<u64> {
            Sum(1)
        }
    }

    #[test]
    fn counts_match_sequential_for_various_budgets() {
        let p = Skewed { depth: 7 };
        let expected = crate::node::subtree_size(&p, &p.root());
        let cfg = SearchConfig {
            workers: 3,
            ..SearchConfig::default()
        };
        for budget in [1, 5, 50, 10_000] {
            let driver = EnumDriver::<Skewed>::new();
            let (metrics, _) = run(&p, &driver, &cfg, budget);
            assert_eq!(driver.into_value(), Sum(expected), "budget={budget}");
            let total: u64 = metrics.iter().map(|m| m.nodes).sum();
            assert_eq!(total, expected);
        }
    }

    #[test]
    fn small_budget_spawns_more_tasks_than_large_budget() {
        let p = Skewed { depth: 7 };
        let cfg = SearchConfig {
            workers: 2,
            ..SearchConfig::default()
        };
        let spawns_for = |budget| {
            let driver = EnumDriver::<Skewed>::new();
            let (metrics, _) = run(&p, &driver, &cfg, budget);
            metrics.iter().map(|m| m.spawns).sum::<u64>()
        };
        let small = spawns_for(2);
        let large = spawns_for(1_000_000);
        assert!(small > large, "budget 2 spawned {small}, budget 1e6 spawned {large}");
        assert_eq!(large, 0, "a budget larger than the tree never triggers a spawn");
    }
}
