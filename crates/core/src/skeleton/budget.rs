//! Budget search coordination (the (spawn-budget) rule, paper Listing 4).
//!
//! Workers search their task sequentially until they have backtracked as
//! many times as the user-supplied budget allows.  A task that exhausts its
//! budget is assumed to hold a significant amount of work, so all of its
//! lowest-depth unexplored subtrees are spawned onto the worker's shard of
//! the sharded depth pool (in heuristic order) and the backtrack counter is
//! reset.  This implements asynchronous periodic load balancing similar to
//! the `mts` framework the paper cites.  All worker-loop machinery lives in
//! `crate::engine`; this module is only the per-step offload policy.

use std::time::Duration;

use crate::engine::{self, PoolSource, SpawnPolicy, StepEnv, WorkSource};
use crate::genstack::GenStack;
use crate::lifecycle::Lifecycle;
use crate::metrics::WorkerMetrics;
use crate::node::SearchProblem;
use crate::params::SearchConfig;
use crate::skeleton::driver::Driver;
use crate::termination::Termination;

/// Offload the lowest-depth unexplored subtrees after `budget` backtracks.
pub(crate) struct BudgetPolicy {
    budget: u64,
}

impl<P: SearchProblem, S: WorkSource<P>> SpawnPolicy<P, S> for BudgetPolicy {
    fn on_step(
        &self,
        env: &mut StepEnv<'_, P, S>,
        stack: &mut GenStack<'_, P>,
        task_backtracks: &mut u64,
    ) {
        if *task_backtracks >= self.budget {
            // Offload all unexplored subtrees at the lowest depth of this
            // task's stack, preserving heuristic order, then keep searching
            // with a fresh budget.
            env.spawn(&mut stack.split_lowest(true));
            *task_backtracks = 0;
        }
    }
}

/// Run the Budget coordination with the given backtrack budget.
pub(crate) fn run<P, D>(
    problem: &P,
    driver: &D,
    config: &SearchConfig,
    budget: u64,
    term: &Termination,
    lifecycle: &Lifecycle,
) -> (Vec<WorkerMetrics>, Duration)
where
    P: SearchProblem,
    D: Driver<P>,
{
    let workers = lifecycle.worker_count(config);
    // Shard the pool for every worker id an elastic grant could mint, not
    // just the initial count, so grown workers get their own shard.
    let capacity = lifecycle.worker_capacity(config);
    engine::run(
        problem,
        driver,
        workers,
        PoolSource::configured(
            capacity,
            config.localities,
            config.steal_routing,
            config.work_pushing,
            config.steal_seed,
            lifecycle.tracer.clone(),
        ),
        BudgetPolicy { budget },
        term,
        lifecycle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;
    use crate::objective::Enumerate;
    use crate::skeleton::driver::EnumDriver;

    fn run_plain<P, D>(
        problem: &P,
        driver: &D,
        config: &SearchConfig,
        param: u64,
    ) -> (Vec<WorkerMetrics>, Duration)
    where
        P: SearchProblem,
        D: Driver<P>,
    {
        run(
            problem,
            driver,
            config,
            param,
            &Termination::new(1),
            &Lifecycle::inert(),
        )
    }

    /// Left-heavy irregular tree to force mid-task splitting.
    struct Skewed {
        depth: usize,
    }

    impl SearchProblem for Skewed {
        type Node = (usize, u32);
        type Gen<'a> = std::vec::IntoIter<(usize, u32)>;
        fn root(&self) -> (usize, u32) {
            (0, 0)
        }
        fn generator(&self, node: &(usize, u32)) -> Self::Gen<'_> {
            let (depth, kind) = *node;
            if depth >= self.depth {
                return vec![].into_iter();
            }
            // The leftmost child is "heavy" (kind 0 keeps branching), the
            // others are lighter.
            let width = if kind == 0 { 4 } else { 2 };
            (0..width)
                .map(|i| (depth + 1, i))
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    impl Enumerate for Skewed {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u32)) -> Sum<u64> {
            Sum(1)
        }
    }

    #[test]
    fn counts_match_sequential_for_various_budgets() {
        let p = Skewed { depth: 7 };
        let expected = crate::node::subtree_size(&p, &p.root());
        let cfg = SearchConfig {
            workers: 3,
            ..SearchConfig::default()
        };
        for budget in [1, 5, 50, 10_000] {
            let driver = EnumDriver::<Skewed>::new();
            let (metrics, _) = run_plain(&p, &driver, &cfg, budget);
            assert_eq!(driver.into_value(), Sum(expected), "budget={budget}");
            let total: u64 = metrics.iter().map(|m| m.nodes).sum();
            assert_eq!(total, expected);
        }
    }

    #[test]
    fn small_budget_spawns_more_tasks_than_large_budget() {
        let p = Skewed { depth: 7 };
        let cfg = SearchConfig {
            workers: 2,
            ..SearchConfig::default()
        };
        let spawns_for = |budget| {
            let driver = EnumDriver::<Skewed>::new();
            let (metrics, _) = run_plain(&p, &driver, &cfg, budget);
            metrics.iter().map(|m| m.spawns).sum::<u64>()
        };
        let small = spawns_for(2);
        let large = spawns_for(1_000_000);
        assert!(
            small > large,
            "budget 2 spawned {small}, budget 1e6 spawned {large}"
        );
        assert_eq!(
            large, 0,
            "a budget larger than the tree never triggers a spawn"
        );
    }
}
