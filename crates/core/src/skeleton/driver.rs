//! Search-type drivers: the node-processing rules of the semantics.
//!
//! A [`Driver`] encapsulates what happens when a worker visits a node — the
//! (accumulate), (strengthen)/(skip) and (prune)/(shortcircuit) rules of
//! Fig. 2 — independently of *how* the tree is traversed and split, which is
//! the coordination's job.  One driver exists per search type.

use std::time::Instant;

use parking_lot::Mutex;

use crate::knowledge::{BoundCache, Incumbent};
use crate::lifecycle::{ProgressEvent, ProgressSender};
use crate::monoid::Monoid;
use crate::node::SearchProblem;
use crate::objective::{Decide, Enumerate, Optimise, PruneLevel};
use crate::trace::{TraceEvent, Tracer};

/// Shared helper: report a successful incumbent strengthening on the
/// progress stream and the flight recorder (no-ops without a subscriber /
/// with tracing off; the `Debug` rendering is only paid when a progress
/// sink is attached).  Incumbent updates come from whichever worker won
/// the strengthen race, so they are recorded on the shared control ring
/// rather than a per-worker ring.
fn emit_incumbent<S: std::fmt::Debug>(
    progress: &Option<(ProgressSender, Instant)>,
    tracer: &Tracer,
    version: u64,
    score: &S,
) {
    tracer.control(TraceEvent::IncumbentUpdate { version });
    if let Some((sender, started)) = progress {
        sender.emit(ProgressEvent::Incumbent {
            version,
            score: format!("{score:?}"),
            elapsed: started.elapsed(),
        });
    }
}

/// What the traversal should do after processing a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Action {
    /// Explore the node's children.
    Expand,
    /// Skip the node's children: the subtree cannot contribute (the (prune) rule).
    Prune,
    /// Skip the node's children *and* its not-yet-generated later siblings
    /// (only returned when the problem declares [`PruneLevel::Siblings`]).
    PruneSiblings,
    /// Stop the entire search: the decision target has been witnessed
    /// (the (shortcircuit) rule).
    ShortCircuit,
}

/// Node-processing behaviour of one search type.
pub(crate) trait Driver<P: SearchProblem>: Send + Sync {
    /// Per-worker mutable state (e.g. a partial accumulator or bound cache).
    type Partial: Send;

    /// Fresh per-worker state.
    fn new_partial(&self) -> Self::Partial;

    /// Process a node: update knowledge and decide whether to expand it.
    fn process(&self, problem: &P, node: &P::Node, partial: &mut Self::Partial) -> Action;

    /// Fold a worker's partial state into the global result when the worker
    /// finishes.
    fn merge(&self, partial: Self::Partial);
}

/// Enumeration: sum the objective of every node into the accumulator monoid.
pub(crate) struct EnumDriver<P: Enumerate> {
    total: Mutex<P::Value>,
}

impl<P: Enumerate> EnumDriver<P> {
    pub(crate) fn new() -> Self {
        EnumDriver {
            total: Mutex::new(P::Value::empty()),
        }
    }

    /// The final accumulated value (call after all workers have merged).
    pub(crate) fn into_value(self) -> P::Value {
        self.total.into_inner()
    }
}

impl<P: Enumerate> Driver<P> for EnumDriver<P> {
    type Partial = P::Value;

    fn new_partial(&self) -> P::Value {
        P::Value::empty()
    }

    fn process(&self, problem: &P, node: &P::Node, partial: &mut P::Value) -> Action {
        let current = std::mem::replace(partial, P::Value::empty());
        *partial = current.combine(problem.value(node));
        Action::Expand
    }

    fn merge(&self, partial: P::Value) {
        let mut total = self.total.lock();
        let current = std::mem::replace(&mut *total, P::Value::empty());
        *total = current.combine(partial);
    }
}

/// Optimisation: strengthen a shared incumbent and prune via the bound.
pub(crate) struct OptimDriver<P: Optimise> {
    incumbent: Incumbent<P::Node, P::Score>,
    /// Progress sink plus the moment it was armed (event timestamps).
    progress: Option<(ProgressSender, Instant)>,
    /// Flight recorder for incumbent-update events (off by default).
    tracer: Tracer,
}

impl<P: Optimise> OptimDriver<P> {
    /// A driver with no progress sink (unit tests; the skeleton facade
    /// always goes through [`with_progress`](OptimDriver::with_progress)).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new() -> Self {
        Self::with_progress(None, Tracer::off())
    }

    /// A driver that reports incumbent improvements on `progress` and the
    /// flight recorder.
    pub(crate) fn with_progress(progress: Option<ProgressSender>, tracer: Tracer) -> Self {
        OptimDriver {
            incumbent: Incumbent::new(),
            progress: progress.map(|p| (p, Instant::now())),
            tracer,
        }
    }

    pub(crate) fn incumbent_updates(&self) -> u64 {
        self.incumbent.version()
    }

    pub(crate) fn into_best(self) -> Option<(P::Node, P::Score)> {
        self.incumbent.snapshot().map(|(s, n)| (n, s))
    }
}

impl<P: Optimise> Driver<P> for OptimDriver<P> {
    type Partial = BoundCache<P::Score>;

    fn new_partial(&self) -> Self::Partial {
        BoundCache::new()
    }

    fn process(&self, problem: &P, node: &P::Node, cache: &mut Self::Partial) -> Action {
        let score = problem.objective(node);
        // Cheap local check before contending on the shared incumbent.
        let locally_better = match cache.refresh(&self.incumbent) {
            Some(best) => score > *best,
            None => true,
        };
        if locally_better && self.incumbent.strengthen(score.clone(), node) {
            emit_incumbent(
                &self.progress,
                &self.tracer,
                self.incumbent.version(),
                &score,
            );
        }
        // Branch-and-bound pruning: if even the most optimistic completion of
        // this subtree cannot beat the incumbent, do not expand it.
        if let Some(bound) = problem.bound(node) {
            if let Some(best) = cache.refresh(&self.incumbent) {
                if bound <= *best {
                    return match problem.prune_level() {
                        PruneLevel::Node => Action::Prune,
                        PruneLevel::Siblings => Action::PruneSiblings,
                    };
                }
            }
        }
        Action::Expand
    }

    fn merge(&self, _partial: Self::Partial) {}
}

/// Decision: optimisation over a bounded order that stops at the target.
pub(crate) struct DecideDriver<P: Decide> {
    incumbent: Incumbent<P::Node, P::Score>,
    target: P::Score,
    /// Progress sink plus the moment it was armed (event timestamps).
    progress: Option<(ProgressSender, Instant)>,
    /// Flight recorder for incumbent-update events (off by default).
    tracer: Tracer,
}

impl<P: Decide> DecideDriver<P> {
    /// A driver with no progress sink (unit tests; the skeleton facade
    /// always goes through [`with_progress`](DecideDriver::with_progress)).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(target: P::Score) -> Self {
        Self::with_progress(target, None, Tracer::off())
    }

    /// A driver that reports incumbent improvements on `progress` and the
    /// flight recorder.
    pub(crate) fn with_progress(
        target: P::Score,
        progress: Option<ProgressSender>,
        tracer: Tracer,
    ) -> Self {
        DecideDriver {
            incumbent: Incumbent::new(),
            target,
            progress: progress.map(|p| (p, Instant::now())),
            tracer,
        }
    }

    pub(crate) fn incumbent_updates(&self) -> u64 {
        self.incumbent.version()
    }

    /// The witness node, if the target was reached.
    pub(crate) fn into_witness(self) -> Option<P::Node> {
        match self.incumbent.snapshot() {
            Some((score, node)) if score >= self.target => Some(node),
            _ => None,
        }
    }
}

impl<P: Decide> Driver<P> for DecideDriver<P> {
    type Partial = BoundCache<P::Score>;

    fn new_partial(&self) -> Self::Partial {
        BoundCache::new()
    }

    fn process(&self, problem: &P, node: &P::Node, cache: &mut Self::Partial) -> Action {
        let score = problem.objective(node);
        if score >= self.target {
            if self.incumbent.strengthen(score.clone(), node) {
                emit_incumbent(
                    &self.progress,
                    &self.tracer,
                    self.incumbent.version(),
                    &score,
                );
            }
            return Action::ShortCircuit;
        }
        // Keep the incumbent up to date so the "best seen" is reported even
        // when the target is never reached (useful for diagnostics), and so
        // bound-based pruning below can also use it.
        let locally_better = match cache.refresh(&self.incumbent) {
            Some(best) => score > *best,
            None => true,
        };
        if locally_better && self.incumbent.strengthen(score.clone(), node) {
            emit_incumbent(
                &self.progress,
                &self.tracer,
                self.incumbent.version(),
                &score,
            );
        }
        if let Some(bound) = problem.bound(node) {
            // A subtree that cannot reach the target is useless to a decision
            // search even if it could improve the incumbent.
            if bound < self.target {
                return match problem.prune_level() {
                    PruneLevel::Node => Action::Prune,
                    PruneLevel::Siblings => Action::PruneSiblings,
                };
            }
        }
        Action::Expand
    }

    fn merge(&self, _partial: Self::Partial) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Sum;

    /// A path graph 0 -> 1 -> ... -> 9, objective = node value.
    struct Path;

    impl SearchProblem for Path {
        type Node = u32;
        type Gen<'a> = std::vec::IntoIter<u32>;
        fn root(&self) -> u32 {
            0
        }
        fn generator(&self, node: &u32) -> Self::Gen<'_> {
            if *node < 9 {
                vec![node + 1].into_iter()
            } else {
                vec![].into_iter()
            }
        }
    }

    impl Enumerate for Path {
        type Value = Sum<u64>;
        fn value(&self, _n: &u32) -> Sum<u64> {
            Sum(1)
        }
    }

    impl Optimise for Path {
        type Score = u32;
        fn objective(&self, node: &u32) -> u32 {
            *node
        }
        fn bound(&self, _node: &u32) -> Option<u32> {
            Some(9)
        }
    }

    impl Decide for Path {
        fn target(&self) -> u32 {
            5
        }
    }

    #[test]
    fn enum_driver_accumulates_and_merges() {
        let d = EnumDriver::<Path>::new();
        let mut a = d.new_partial();
        let mut b = d.new_partial();
        for n in 0..4 {
            d.process(&Path, &n, &mut a);
        }
        for n in 4..10 {
            d.process(&Path, &n, &mut b);
        }
        d.merge(a);
        d.merge(b);
        assert_eq!(d.into_value(), Sum(10));
    }

    #[test]
    fn optim_driver_tracks_maximum_and_prunes_dominated_bounds() {
        let d = OptimDriver::<Path>::new();
        let mut cache = d.new_partial();
        assert_eq!(d.process(&Path, &3, &mut cache), Action::Expand);
        assert_eq!(
            d.process(&Path, &9, &mut cache),
            Action::Prune,
            "bound 9 <= incumbent 9 prunes"
        );
        assert_eq!(d.incumbent_updates(), 2);
        assert_eq!(d.into_best(), Some((9, 9)));
    }

    #[test]
    fn decide_driver_short_circuits_at_target() {
        let d = DecideDriver::<Path>::new(5);
        let mut cache = d.new_partial();
        assert_eq!(d.process(&Path, &2, &mut cache), Action::Expand);
        assert_eq!(d.process(&Path, &7, &mut cache), Action::ShortCircuit);
        assert_eq!(d.into_witness(), Some(7));
    }

    #[test]
    fn decide_driver_without_witness_returns_none() {
        let d = DecideDriver::<Path>::new(100);
        let mut cache = d.new_partial();
        for n in 0..10 {
            assert_ne!(d.process(&Path, &n, &mut cache), Action::ShortCircuit);
        }
        assert_eq!(d.into_witness(), None);
    }

    /// A problem whose bound is below the decision target everywhere except
    /// the root: every child must be pruned.
    struct Hopeless;
    impl SearchProblem for Hopeless {
        type Node = u32;
        type Gen<'a> = std::vec::IntoIter<u32>;
        fn root(&self) -> u32 {
            0
        }
        fn generator(&self, node: &u32) -> Self::Gen<'_> {
            if *node == 0 {
                vec![1, 2, 3].into_iter()
            } else {
                vec![].into_iter()
            }
        }
    }
    impl Optimise for Hopeless {
        type Score = u32;
        fn objective(&self, n: &u32) -> u32 {
            *n
        }
        fn bound(&self, _n: &u32) -> Option<u32> {
            Some(3)
        }
    }
    impl Decide for Hopeless {
        fn target(&self) -> u32 {
            10
        }
    }

    #[test]
    fn decide_driver_prunes_subtrees_that_cannot_reach_target() {
        let d = DecideDriver::<Hopeless>::new(10);
        let mut cache = d.new_partial();
        assert_eq!(d.process(&Hopeless, &0, &mut cache), Action::Prune);
        assert_eq!(d.into_witness(), None);
    }
}
