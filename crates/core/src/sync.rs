//! Cfg-gated synchronisation-primitive selection.
//!
//! The runtime's concurrency protocols import their atomics from this
//! module instead of `std::sync::atomic` directly.  In the default build
//! these are plain re-exports — zero indirection, zero overhead (the
//! `components/check_shim` benchmark pins this).  Under the `model-check`
//! feature they resolve to the `yewpar-check` shims, whose operations are
//! handed to the deterministic-interleaving scheduler when executed inside
//! `yewpar_check::sched::run` and fall back to the real std primitives
//! otherwise.
//!
//! Lock-based protocol state (`Mutex`/`Condvar`) stays on std throughout:
//! those protocols are verified through the extracted models in
//! `crates/check/src/models/`, which mirror the lock choreography against
//! the shimmed `check::sync::{Mutex, Condvar}` instead.

#[cfg(feature = "model-check")]
pub use yewpar_check::sync::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize};

#[cfg(not(feature = "model-check"))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize};

pub use std::sync::atomic::Ordering;
