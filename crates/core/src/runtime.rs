//! A persistent search runtime: long-lived workers, job queueing and
//! non-blocking anytime-search handles.
//!
//! The [`Skeleton`] entry point is a one-shot batch call: it spawns scoped
//! worker threads, runs the search to completion, joins, and returns.  A
//! production service running many searches for many users on one machine
//! wants none of that per-call ceremony: it wants a [`Runtime`] that owns a
//! **long-lived worker pool** (workers park between jobs instead of being
//! respawned per search), accepts submissions from any thread, and hands
//! back a [`SearchHandle`] that can be waited on, polled, cancelled from
//! another thread, or observed mid-run through a progress stream.
//!
//! ```
//! use std::time::Duration;
//! use yewpar::{Coordination, Runtime, RuntimeConfig, SearchConfig, SearchStatus};
//! use yewpar::{Enumerate, SearchProblem, monoid::Sum};
//!
//! struct BinTree { depth: usize }
//! impl SearchProblem for BinTree {
//!     type Node = usize;
//!     type Gen<'a> = std::vec::IntoIter<usize>;
//!     fn root(&self) -> usize { 0 }
//!     fn generator(&self, node: &usize) -> Self::Gen<'_> {
//!         if *node < self.depth { vec![node + 1, node + 1].into_iter() } else { vec![].into_iter() }
//!     }
//! }
//! impl Enumerate for BinTree {
//!     type Value = Sum<u64>;
//!     fn value(&self, _node: &usize) -> Sum<u64> { Sum(1) }
//! }
//!
//! let runtime = Runtime::new(RuntimeConfig::default().workers(2));
//! let mut config = SearchConfig::new(Coordination::depth_bounded(2));
//! config.workers = 2;
//! let handle = runtime.enumerate(BinTree { depth: 10 }, &config);
//! let outcome = handle.wait();
//! assert_eq!(outcome.status, SearchStatus::Complete);
//! assert_eq!(outcome.value.0, 2u64.pow(11) - 1);
//! ```
//!
//! **Scheduling model.**  Submissions queue FIFO; the runtime executes one
//! search at a time over the whole pool (the submitting search gets every
//! pool worker).  Multiplexing several concurrent searches across disjoint
//! worker subsets is deliberately left as a follow-up: it needs a worker-
//! count negotiation and fairness policy that deserve their own design,
//! while FIFO-over-the-pool already gives a service the two properties it
//! cannot fake — no per-search thread churn and non-blocking handles.
//!
//! **Anytime semantics.**  A handle's search obeys the same lifecycle rules
//! as the blocking facade: [`SearchConfig::deadline`] bounds its wall-clock
//! budget (counted from when the job *starts executing*, not from
//! submission), [`SearchHandle::cancel`] stops it from outside, and either
//! way the outcome reports an honest [`SearchStatus`](crate::lifecycle::SearchStatus) with the partial
//! incumbent preserved.
//!
//! [`Skeleton`]: crate::skeleton::Skeleton
//! [`SearchConfig::deadline`]: crate::params::SearchConfig::deadline

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crossbeam_channel::{bounded, Receiver, Sender};

use crate::lifecycle::{progress_channel, CancelToken, ProgressStream};
use crate::metrics::WorkerMetrics;
use crate::objective::{Decide, Enumerate, Optimise};
use crate::params::SearchConfig;
use crate::skeleton::{DecideOutcome, EnumOutcome, OptimOutcome, Skeleton};

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// A search-worker closure with its lifetime erased so it can cross into a
/// persistent pool thread.  Soundness rests on the latch protocol of
/// [`WorkerPool::scoped_run`]: the caller does not return (and therefore the
/// borrowed closure cannot die) until every job has signalled completion,
/// and a job never touches the pointer after signalling.
struct ScopedJob {
    f: *const (dyn Fn(usize) -> WorkerMetrics + Sync),
    index: usize,
    state: Arc<ScopedState>,
}

// SAFETY: the raw closure pointer is only dereferenced while the
// `scoped_run` caller is blocked on the completion latch, which keeps the
// referent alive; the closure itself is `Sync`, so shared calls from
// several pool threads are fine.
unsafe impl Send for ScopedJob {}

/// Completion latch + result slots shared between one `scoped_run` call and
/// the pool threads executing its jobs.
struct ScopedState {
    /// Jobs not yet completed; guarded by the mutex so the condvar wait is
    /// race-free.
    remaining: Mutex<usize>,
    done: Condvar,
    /// One slot per worker index (index 0 is the inline caller's).
    results: Mutex<Vec<Option<WorkerMetrics>>>,
    /// Set when any job panicked; the caller re-raises after the join.
    poisoned: AtomicBool,
}

/// A pool of persistent, parked worker threads that scoped search workers
/// run on — the engine-facing half of [`Runtime`].  Public only to the
/// crate; the public API is `Runtime`.
pub struct WorkerPool {
    /// One job channel per thread: the vendored channel shim is single-
    /// consumer, and per-thread queues also keep dispatch deterministic.
    senders: Vec<Sender<ScopedJob>>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `threads` parked worker threads.
    pub(crate) fn new(threads: usize) -> Self {
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            // Deep enough that an oversubscribed search (more workers than
            // pool threads) can queue all its extra jobs without blocking
            // the dispatching thread.
            let (tx, rx) = bounded::<ScopedJob>(1024);
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("yewpar-pool-{i}"))
                    .spawn(move || pool_thread(rx))
                    .expect("spawn pool worker"),
            );
        }
        WorkerPool {
            senders,
            threads: handles,
        }
    }

    /// Number of pool threads.
    pub(crate) fn size(&self) -> usize {
        self.senders.len()
    }

    /// Run `count` scoped search workers: worker 0 inline on the calling
    /// thread, workers 1.. on the pool's parked threads (round-robin; with
    /// more workers than threads the surplus run after earlier ones retire,
    /// which is safe — search termination never requires a minimum worker
    /// count, late workers simply find the search finished).  Blocks until
    /// every worker has completed; a panic in any worker is re-raised as
    /// "a search worker panicked", matching the scoped-thread path.
    pub(crate) fn scoped_run<F>(&self, count: usize, worker_fn: &F) -> Vec<WorkerMetrics>
    where
        F: Fn(usize) -> WorkerMetrics + Sync,
    {
        assert!(count >= 1);
        assert!(
            !self.senders.is_empty(),
            "scoped_run on a zero-thread pool (callers fall back to scoped threads)"
        );
        let state = Arc::new(ScopedState {
            remaining: Mutex::new(count - 1),
            done: Condvar::new(),
            results: Mutex::new((0..count).map(|_| None).collect()),
            poisoned: AtomicBool::new(false),
        });
        // SAFETY: erase the borrow's lifetime so the pointer can cross into
        // 'static pool threads.  The latch below guarantees this function
        // does not return — and `worker_fn` therefore stays alive — until
        // every job has finished dereferencing it.
        let erased: *const (dyn Fn(usize) -> WorkerMetrics + Sync) = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize) -> WorkerMetrics + Sync + '_),
                *const (dyn Fn(usize) -> WorkerMetrics + Sync + 'static),
            >(worker_fn)
        };
        for index in 1..count {
            let job = ScopedJob {
                f: erased,
                index,
                state: Arc::clone(&state),
            };
            let target = (index - 1) % self.senders.len();
            if self.senders[target].send(job).is_err() {
                // The pool is shutting down; run the worker inline instead
                // of losing it (the latch still expects its completion).
                run_scoped_inline(erased, index, &state);
            }
        }
        // The calling thread is worker 0 — it would otherwise just block.
        let inline = catch_unwind(AssertUnwindSafe(|| worker_fn(0)));
        let inline = match inline {
            Ok(metrics) => Some(metrics),
            Err(_) => {
                state.poisoned.store(true, Ordering::Relaxed);
                None
            }
        };
        // Wait for the helpers before touching the results (and before the
        // borrowed closure can go out of scope).
        let mut remaining = state.remaining.lock().expect("latch lock");
        while *remaining > 0 {
            remaining = state.done.wait(remaining).expect("latch wait");
        }
        drop(remaining);
        let mut results = state.results.lock().expect("results lock");
        results[0] = inline;
        let all: Vec<WorkerMetrics> = results
            .iter_mut()
            .map(|slot| slot.take().unwrap_or_default())
            .collect();
        drop(results);
        if state.poisoned.load(Ordering::Relaxed) {
            panic!("a search worker panicked");
        }
        all
    }

    /// Close the job channels and join every thread.  Called by
    /// [`Runtime`]'s drop after the dispatcher has drained.
    fn shutdown(&mut self) {
        self.senders.clear();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Execute one scoped job, recording its result (or the poison flag) and
/// signalling the latch even on panic.
fn run_scoped_inline(
    f: *const (dyn Fn(usize) -> WorkerMetrics + Sync),
    index: usize,
    state: &Arc<ScopedState>,
) {
    // SAFETY: see `ScopedJob` — the referent outlives the latch.
    let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*f)(index) }));
    let result = match outcome {
        Ok(metrics) => Some(metrics),
        Err(_) => {
            state.poisoned.store(true, Ordering::Relaxed);
            None
        }
    };
    let mut results = state.results.lock().expect("results lock");
    results[index] = result;
    drop(results);
    let mut remaining = state.remaining.lock().expect("latch lock");
    *remaining -= 1;
    if *remaining == 0 {
        state.done.notify_all();
    }
}

/// A pool thread: park on the job channel, run scoped jobs as they arrive,
/// survive job panics (they are reported through the latch, not by killing
/// the thread).
fn pool_thread(rx: Receiver<ScopedJob>) {
    while let Ok(job) = rx.recv() {
        run_scoped_inline(job.f, job.index, &job.state);
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Maximum search workers that can run in parallel.  The pool keeps
    /// `workers - 1` persistent threads (the dispatching thread itself runs
    /// worker 0 of each search), so a search configured with up to this
    /// many workers executes with zero thread spawns.
    pub workers: usize,
    /// Capacity of each handle's bounded progress channel; events beyond a
    /// lagging consumer are dropped, never blocked on.
    pub progress_capacity: usize,
    /// Capacity of the FIFO submission queue.  Submitting beyond it blocks
    /// the submitter until the dispatcher catches up (backpressure, not an
    /// error).
    pub queue_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            progress_capacity: 1024,
            queue_capacity: 256,
        }
    }
}

impl RuntimeConfig {
    /// Set the maximum parallel search workers.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the per-handle progress-channel capacity.
    pub fn progress_capacity(mut self, capacity: usize) -> Self {
        self.progress_capacity = capacity.max(1);
        self
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent search runtime: a long-lived worker pool plus a FIFO job
/// queue.  See the [module docs](self) for the full model.
pub struct Runtime {
    jobs: Option<Sender<Job>>,
    dispatcher: Option<JoinHandle<()>>,
    pool: Arc<WorkerPool>,
    config: RuntimeConfig,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.config.workers)
            .finish()
    }
}

impl Runtime {
    /// Start a runtime: spawn the worker pool and the dispatcher thread.
    pub fn new(config: RuntimeConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.workers.saturating_sub(1)));
        let (tx, rx) = bounded::<Job>(config.queue_capacity.max(1));
        let dispatcher = std::thread::Builder::new()
            .name("yewpar-dispatch".into())
            .spawn(move || {
                // FIFO, one search at a time; a panicking search is caught
                // (its handle re-raises) so the dispatcher survives.
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
            .expect("spawn runtime dispatcher");
        Runtime {
            jobs: Some(tx),
            dispatcher: Some(dispatcher),
            pool,
            config,
        }
    }

    /// The effective configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Submit an enumeration search; returns immediately with a handle.
    pub fn enumerate<P>(
        &self,
        problem: P,
        config: &SearchConfig,
    ) -> SearchHandle<EnumOutcome<P::Value>>
    where
        P: Enumerate + Send + Sync + 'static,
        P::Value: Send + 'static,
    {
        self.submit(problem, config, |skeleton, problem| {
            skeleton.enumerate(problem)
        })
    }

    /// Submit an optimisation search; returns immediately with a handle.
    /// On cancel or deadline the outcome carries the partial incumbent.
    pub fn maximise<P>(
        &self,
        problem: P,
        config: &SearchConfig,
    ) -> SearchHandle<OptimOutcome<P::Node, P::Score>>
    where
        P: Optimise + Send + Sync + 'static,
        P::Node: 'static,
    {
        self.submit(problem, config, |skeleton, problem| {
            skeleton.maximise(problem)
        })
    }

    /// Submit a decision search; returns immediately with a handle.
    pub fn decide<P>(
        &self,
        problem: P,
        config: &SearchConfig,
    ) -> SearchHandle<DecideOutcome<P::Node>>
    where
        P: Decide + Send + Sync + 'static,
        P::Node: 'static,
    {
        self.submit(problem, config, |skeleton, problem| {
            skeleton.decide(problem)
        })
    }

    fn submit<P, T>(
        &self,
        problem: P,
        config: &SearchConfig,
        run: impl FnOnce(&Skeleton, &P) -> T + Send + 'static,
    ) -> SearchHandle<T>
    where
        P: Send + Sync + 'static,
        T: Send + 'static,
    {
        let cancel = CancelToken::new();
        let (progress_tx, progress_rx) = progress_channel(self.config.progress_capacity);
        let shared: Arc<HandleState<T>> = Arc::new(HandleState::new());
        let skeleton = Skeleton::from_config(config.clone())
            .cancel_token(cancel.clone())
            .attach_progress(progress_tx)
            .attach_pool(Arc::clone(&self.pool));
        let job_state = Arc::clone(&shared);
        let job: Job = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| run(&skeleton, &problem)));
            job_state.complete(outcome);
        });
        let sent = self
            .jobs
            .as_ref()
            .expect("runtime is live until dropped")
            .send(job);
        assert!(sent.is_ok(), "dispatcher outlives the runtime handle");
        SearchHandle {
            state: shared,
            progress: progress_rx,
            cancel,
        }
    }

    /// Shut the runtime down: stop accepting submissions, run every queued
    /// job to completion, then join the dispatcher and the pool.  `Drop`
    /// does the same; this method only makes the blocking explicit.
    pub fn shutdown(self) {}
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Closing the sender lets the dispatcher drain the queue and exit;
        // handles of queued searches therefore always resolve.
        self.jobs = None;
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        // The pool joins its threads in its own drop.
    }
}

// ---------------------------------------------------------------------------
// Search handles
// ---------------------------------------------------------------------------

/// Result slot shared between a runtime job and its [`SearchHandle`].
struct HandleState<T> {
    slot: Mutex<SlotState<T>>,
    ready: Condvar,
    finished: AtomicBool,
}

enum SlotState<T> {
    Pending,
    Done(T),
    /// The search panicked; the payload re-raises on `wait`/`try_result`.
    Panicked(Box<dyn std::any::Any + Send>),
    /// The result was already taken by `try_result`.
    Taken,
}

impl<T> HandleState<T> {
    fn new() -> Self {
        HandleState {
            slot: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
            finished: AtomicBool::new(false),
        }
    }

    fn complete(&self, outcome: Result<T, Box<dyn std::any::Any + Send>>) {
        let mut slot = self.slot.lock().expect("handle lock");
        *slot = match outcome {
            Ok(value) => SlotState::Done(value),
            Err(payload) => SlotState::Panicked(payload),
        };
        self.finished.store(true, Ordering::Release);
        self.ready.notify_all();
    }
}

/// A non-blocking handle to a search submitted to a [`Runtime`].
///
/// The handle is the search's *anytime* interface: poll it with
/// [`try_result`](SearchHandle::try_result) / [`is_finished`](SearchHandle::is_finished),
/// block on it with [`wait`](SearchHandle::wait), stop it from any thread
/// with [`cancel`](SearchHandle::cancel), and observe it mid-run through
/// [`progress`](SearchHandle::progress).  Dropping the handle detaches the
/// search (it keeps running to its natural end); cancel first if the work
/// is no longer wanted.
pub struct SearchHandle<T> {
    state: Arc<HandleState<T>>,
    progress: ProgressStream,
    cancel: CancelToken,
}

impl<T> std::fmt::Debug for SearchHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchHandle")
            .field("finished", &self.is_finished())
            .field("cancelled", &self.cancel.is_cancelled())
            .finish()
    }
}

impl<T> SearchHandle<T> {
    /// Block until the search finishes and return its outcome.  A panic
    /// inside the search is re-raised here.
    pub fn wait(self) -> T {
        let mut slot = self.state.slot.lock().expect("handle lock");
        loop {
            match std::mem::replace(&mut *slot, SlotState::Taken) {
                SlotState::Done(value) => return value,
                SlotState::Panicked(payload) => {
                    drop(slot);
                    resume_unwind(payload)
                }
                SlotState::Taken => unreachable!("wait consumes the handle"),
                SlotState::Pending => {
                    *slot = SlotState::Pending;
                    slot = self.state.ready.wait(slot).expect("handle wait");
                }
            }
        }
    }

    /// Take the outcome if the search has finished; `None` while it is
    /// still queued or running (and after the outcome was already taken).
    /// A panic inside the search is re-raised here.
    pub fn try_result(&mut self) -> Option<T> {
        if !self.is_finished() {
            return None;
        }
        let mut slot = self.state.slot.lock().expect("handle lock");
        match std::mem::replace(&mut *slot, SlotState::Taken) {
            SlotState::Done(value) => Some(value),
            SlotState::Panicked(payload) => {
                drop(slot);
                resume_unwind(payload)
            }
            SlotState::Pending | SlotState::Taken => None,
        }
    }

    /// Has the search finished (successfully or by panic)?  Queued and
    /// running searches answer `false`.
    pub fn is_finished(&self) -> bool {
        self.state.finished.load(Ordering::Acquire)
    }

    /// Cancel the search from any thread: it stops at its next per-step
    /// poll and resolves with [`SearchStatus::Cancelled`](crate::lifecycle::SearchStatus::Cancelled), carrying the
    /// partial incumbent found so far.  Idempotent; cancelling a queued
    /// search makes it resolve (almost) immediately when it reaches the
    /// front of the queue.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the search's cancel token, e.g. to hand to a watchdog.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The search's progress stream: incumbent improvements, node-count
    /// heartbeats and a final [`ProgressEvent::Finished`] marker.  Bounded
    /// and lossy — see [`ProgressEvent`](crate::lifecycle::ProgressEvent).
    ///
    /// [`ProgressEvent::Finished`]: crate::lifecycle::ProgressEvent::Finished
    pub fn progress(&self) -> &ProgressStream {
        &self.progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::ProgressEvent;
    use crate::monoid::Sum;
    use crate::node::SearchProblem;
    use crate::params::Coordination;
    use std::time::Duration;

    /// Deterministic irregular tree; node = (depth, seed).
    struct Irregular {
        depth: usize,
    }

    impl SearchProblem for Irregular {
        type Node = (usize, u64);
        type Gen<'a> = std::vec::IntoIter<(usize, u64)>;
        fn root(&self) -> (usize, u64) {
            (0, 1)
        }
        fn generator(&self, node: &(usize, u64)) -> Self::Gen<'_> {
            let (depth, seed) = *node;
            if depth >= self.depth {
                return vec![].into_iter();
            }
            let fanout = (seed % 4) as usize + 1;
            (0..fanout)
                .map(|i| {
                    (
                        depth + 1,
                        seed.wrapping_mul(6364136223846793005)
                            .wrapping_add(i as u64),
                    )
                })
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    impl Enumerate for Irregular {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u64)) -> Sum<u64> {
            Sum(1)
        }
    }

    impl Optimise for Irregular {
        type Score = u64;
        fn objective(&self, node: &(usize, u64)) -> u64 {
            node.1 % 1000
        }
    }

    impl Decide for Irregular {
        fn target(&self) -> u64 {
            990
        }
    }

    fn config(coordination: Coordination, workers: usize) -> SearchConfig {
        SearchConfig {
            coordination,
            workers,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn runtime_matches_the_blocking_facade() {
        let problem = Irregular { depth: 8 };
        let expected = crate::node::subtree_size(&problem, &problem.root());
        let runtime = Runtime::new(RuntimeConfig::default().workers(4));
        for coordination in [
            Coordination::Sequential,
            Coordination::depth_bounded(2),
            Coordination::stack_stealing(),
            Coordination::budget(50),
            Coordination::ordered(2),
        ] {
            let handle = runtime.enumerate(Irregular { depth: 8 }, &config(coordination, 4));
            let out = handle.wait();
            assert_eq!(out.value.0, expected, "{coordination}");
            assert!(out.status.is_complete());
            assert_eq!(out.metrics.outstanding_tasks, 0);
        }
    }

    #[test]
    fn submissions_queue_fifo_and_handles_poll() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let mut handles: Vec<SearchHandle<EnumOutcome<Sum<u64>>>> = (0..4)
            .map(|_| {
                runtime.enumerate(
                    Irregular { depth: 7 },
                    &config(Coordination::depth_bounded(2), 2),
                )
            })
            .collect();
        let expected = {
            let p = Irregular { depth: 7 };
            crate::node::subtree_size(&p, &p.root())
        };
        for handle in &mut handles {
            // Poll until done, then take the result exactly once.
            let out = loop {
                if let Some(out) = handle.try_result() {
                    break out;
                }
                std::thread::sleep(Duration::from_micros(200));
            };
            assert_eq!(out.value.0, expected);
            assert!(handle.is_finished());
            assert_eq!(handle.try_result().map(|_| ()), None, "result taken once");
        }
    }

    #[test]
    fn workers_park_between_jobs_instead_of_respawning() {
        // Not directly observable from the API, but the pool must at least
        // survive many back-to-back submissions without accumulating
        // threads or wedging.
        let runtime = Runtime::new(RuntimeConfig::default().workers(3));
        for _ in 0..20 {
            let out = runtime
                .enumerate(
                    Irregular { depth: 6 },
                    &config(Coordination::depth_bounded(2), 3),
                )
                .wait();
            assert!(out.status.is_complete());
        }
        assert_eq!(runtime.pool.size(), 2, "workers-1 persistent threads");
    }

    #[test]
    fn handle_reports_finished_event_on_progress_stream() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let mut handle = runtime.maximise(
            Irregular { depth: 8 },
            &config(Coordination::depth_bounded(2), 2),
        );
        // Consume the stream until the Finished marker (incumbent events
        // may precede it), then take the result.
        let mut events = Vec::new();
        loop {
            match handle.progress().next_timeout(Duration::from_secs(30)) {
                Some(event) => {
                    let finished = matches!(&event, ProgressEvent::Finished { .. });
                    events.push(event);
                    if finished {
                        break;
                    }
                }
                None => panic!("progress stream ended without a Finished event: {events:?}"),
            }
        }
        assert!(
            matches!(
                events.last(),
                Some(ProgressEvent::Finished { status }) if status.is_complete()
            ),
            "expected a complete Finished event, got {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ProgressEvent::Incumbent { .. })),
            "a maximise run must report incumbent improvements, got {events:?}"
        );
        // The Finished event is emitted before the job completes the
        // handle, so give the result a moment.
        let out = loop {
            if let Some(out) = handle.try_result() {
                break out;
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        assert!(out.status.is_complete());
        assert!(out.try_score().is_some());
    }

    #[test]
    fn search_panic_surfaces_on_wait_not_in_the_dispatcher() {
        struct Bomb;
        impl SearchProblem for Bomb {
            type Node = u32;
            type Gen<'a> = std::vec::IntoIter<u32>;
            fn root(&self) -> u32 {
                0
            }
            fn generator(&self, node: &u32) -> Self::Gen<'_> {
                if *node > 2 {
                    panic!("boom");
                }
                vec![node + 1].into_iter()
            }
        }
        impl Enumerate for Bomb {
            type Value = Sum<u64>;
            fn value(&self, _n: &u32) -> Sum<u64> {
                Sum(1)
            }
        }
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let handle = runtime.enumerate(Bomb, &config(Coordination::Sequential, 1));
        let panicked = catch_unwind(AssertUnwindSafe(|| handle.wait())).is_err();
        assert!(panicked, "the search panic must re-raise on wait");
        // The runtime survives and runs the next search.
        let out = runtime
            .enumerate(
                Irregular { depth: 6 },
                &config(Coordination::depth_bounded(1), 2),
            )
            .wait();
        assert!(out.status.is_complete());
    }

    #[test]
    fn oversubscribed_searches_complete_on_a_small_pool() {
        // 8 search workers on a runtime with 2 — surplus workers run after
        // earlier ones retire and find the search finished.
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let problem = Irregular { depth: 9 };
        let expected = crate::node::subtree_size(&problem, &problem.root());
        let out = runtime
            .enumerate(problem, &config(Coordination::depth_bounded(3), 8))
            .wait();
        assert_eq!(out.value.0, expected);
        assert_eq!(out.metrics.workers, 8);
    }

    /// Regression: an oversubscribed *Stack-Stealing* search on a small
    /// pool must not deadlock.  With one pool thread, workers 2..4 queue
    /// behind worker 1; a thief that delivered a steal request to such a
    /// never-registered victim would wait forever on a reply — the source
    /// now skips unregistered victims instead.
    #[test]
    fn oversubscribed_stack_stealing_does_not_deadlock_on_a_small_pool() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let problem = Irregular { depth: 9 };
        let expected = crate::node::subtree_size(&problem, &problem.root());
        let out = runtime
            .enumerate(problem, &config(Coordination::stack_stealing_chunked(), 4))
            .wait();
        assert_eq!(out.value.0, expected);
        assert_eq!(out.metrics.outstanding_tasks, 0);
    }

    /// Regression: a workers=1 runtime (zero pool threads — also the
    /// default on a single-core machine) asked to run a multi-worker
    /// search must fall back to scoped threads, not divide by zero in the
    /// pool's round-robin dispatch.
    #[test]
    fn single_worker_runtime_runs_multi_worker_searches() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(1));
        let problem = Irregular { depth: 8 };
        let expected = crate::node::subtree_size(&problem, &problem.root());
        for coordination in [
            Coordination::depth_bounded(2),
            Coordination::stack_stealing(),
            Coordination::ordered(2),
        ] {
            let out = runtime
                .enumerate(Irregular { depth: 8 }, &config(coordination, 4))
                .wait();
            assert_eq!(out.value.0, expected, "{coordination}");
            assert!(out.status.is_complete());
        }
    }
}
