//! A persistent search runtime: long-lived workers, job queueing and
//! non-blocking anytime-search handles.
//!
//! The [`Skeleton`] entry point is a one-shot batch call: it spawns scoped
//! worker threads, runs the search to completion, joins, and returns.  A
//! production service running many searches for many users on one machine
//! wants none of that per-call ceremony: it wants a [`Runtime`] that owns a
//! **long-lived worker pool** (workers park between jobs instead of being
//! respawned per search), accepts submissions from any thread, and hands
//! back a [`SearchHandle`] that can be waited on, polled, cancelled from
//! another thread, or observed mid-run through a progress stream.
//!
//! ```
//! use std::time::Duration;
//! use yewpar::{Coordination, Runtime, RuntimeConfig, SearchConfig, SearchStatus};
//! use yewpar::{Enumerate, SearchProblem, monoid::Sum};
//!
//! struct BinTree { depth: usize }
//! impl SearchProblem for BinTree {
//!     type Node = usize;
//!     type Gen<'a> = std::vec::IntoIter<usize>;
//!     fn root(&self) -> usize { 0 }
//!     fn generator(&self, node: &usize) -> Self::Gen<'_> {
//!         if *node < self.depth { vec![node + 1, node + 1].into_iter() } else { vec![].into_iter() }
//!     }
//! }
//! impl Enumerate for BinTree {
//!     type Value = Sum<u64>;
//!     fn value(&self, _node: &usize) -> Sum<u64> { Sum(1) }
//! }
//!
//! let runtime = Runtime::new(RuntimeConfig::default().workers(2));
//! let mut config = SearchConfig::new(Coordination::depth_bounded(2));
//! config.workers = 2;
//! let handle = runtime.enumerate(BinTree { depth: 10 }, &config);
//! let outcome = handle.wait();
//! assert_eq!(outcome.status, SearchStatus::Complete);
//! assert_eq!(outcome.value.0, 2u64.pow(11) - 1);
//! ```
//!
//! **Scheduling model.**  The dispatcher is an *allocator*: the pool's
//! worker slots belong to the runtime, and every submission is granted an
//! allotment at dispatch time by a pluggable
//! [`SchedulePolicy`].  Under the default
//! [`Fifo`] policy submissions run one at a time
//! over the whole pool, granted exactly the worker count they asked for —
//! the PR 4 behaviour, unchanged.  Under
//! [`FairShare`](crate::schedule::FairShare)
//! ([`Runtime::with_policy`]) the free workers are split proportionally
//! across the pending queue and several searches run **concurrently on
//! disjoint pool-thread subsets**, each with its own driver thread; leases
//! are reclaimed and re-granted as searches finish.  The granted worker
//! count, leased slots and dispatcher-clock queue wait are stamped onto
//! each outcome's [`Metrics`](crate::metrics::Metrics)
//! (`granted_workers`, `granted_slots`, `queue_wait`, `search_id`), and
//! pool-wide gauges are available through [`Runtime::stats`].
//!
//! **Elastic leases.**  Under a concurrent policy a grant is a *lease*, not
//! a fixed allotment: every [`RuntimeConfig::replan_period`] the dispatcher
//! snapshots the running searches and asks the policy to
//! [`replan`](crate::schedule::SchedulePolicy::replan).  A
//! [`Grow`](crate::schedule::Adjustment::Grow) leases additional pool slots
//! onto a live search (the new workers join its work source mid-run); a
//! [`Shrink`](crate::schedule::Adjustment::Shrink) issues cooperative
//! *revocation requests* that running workers claim at their next lifecycle
//! poll — the claiming worker drains its local work back to the survivors,
//! leaves the steal set and returns its slot, never stranding a task; a
//! [`Preempt`](crate::schedule::Adjustment::Preempt) cancels the search so
//! it resolves [`SearchStatus::Cancelled`] with its partial incumbent.
//! Executed adjustments are counted on the outcome's
//! [`Metrics`](crate::metrics::Metrics) (`grant_changes`,
//! `workers_preempted`, `revocation_latency`) and on [`Runtime::stats`],
//! and traced as `grant_grown` / `grant_shrunk` / `worker_revoked` events.
//! Under the serial [`Fifo`] policy none of this machinery runs: grants
//! keep the exact PR 4 fixed-for-life semantics.
//!
//! **Sessions and hierarchical cancellation.**  Cancel tokens form a tree:
//! [`Runtime::session`] opens a [`Session`] scope (a child of the
//! runtime's root token) and searches submitted through it get leaf
//! tokens, so cancelling — or dropping — the session stops its whole group
//! of searches while leaving the rest of the runtime untouched.
//! [`Runtime::shutdown`] takes a [`ShutdownMode`]: `Graceful` drains the
//! queue, `Now` cancels the root scope so running searches stop at their
//! next poll and queued ones resolve `Cancelled` at their pre-start poll
//! (skeleton setup runs, but the search stops before any worker starts).
//!
//! **Anytime semantics.**  A handle's search obeys the same lifecycle rules
//! as the blocking facade: [`SearchConfig::deadline`] bounds its wall-clock
//! budget (counted from when the job *starts executing*, not from
//! submission), [`SearchHandle::cancel`] stops it from outside, and either
//! way the outcome reports an honest [`SearchStatus`] with the partial
//! incumbent preserved.
//!
//! [`Skeleton`]: crate::skeleton::Skeleton
//! [`SearchConfig::deadline`]: crate::params::SearchConfig::deadline

use crate::sync::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};

use crate::lifecycle::{progress_channel, CancelToken, ProgressStream, SearchStatus};
use crate::metrics::{RuntimeStats, WorkerMetrics};
use crate::objective::{Decide, Enumerate, Optimise};
use crate::params::SearchConfig;
use crate::schedule::{
    Adjustment, Admission, Fifo, PendingRequest, Priority, RunningSearch, SchedulePolicy,
};
use crate::skeleton::{DecideOutcome, EnumOutcome, OptimOutcome, Skeleton};
use crate::trace::{TraceBuffer, TraceEvent, TraceRecord, Tracer};

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// A search-worker closure with its lifetime erased so it can cross into a
/// persistent pool thread.  Soundness rests on the latch protocol of
/// [`WorkerPool::scoped_run`]: the caller does not return (and therefore the
/// borrowed closure cannot die) until every job has signalled completion,
/// and a job never touches the pointer after signalling.
struct ScopedJob {
    f: *const (dyn Fn(usize) -> WorkerMetrics + Sync),
    index: usize,
    state: Arc<ScopedState>,
}

// SAFETY: the raw closure pointer is only dereferenced while the
// `scoped_run` caller is blocked on the completion latch, which keeps the
// referent alive; the closure itself is `Sync`, so shared calls from
// several pool threads are fine.
unsafe impl Send for ScopedJob {}

/// Completion latch + result slots shared between one `scoped_run` call and
/// the pool threads executing its jobs.
struct ScopedState {
    /// Jobs not yet completed; guarded by the mutex so the condvar wait is
    /// race-free.
    remaining: Mutex<usize>,
    done: Condvar,
    /// One slot per worker index (index 0 is the inline caller's).
    results: Mutex<Vec<Option<WorkerMetrics>>>,
    /// Set when any job panicked; the caller re-raises after the join.
    poisoned: AtomicBool,
}

/// A pool of persistent, parked worker threads that scoped search workers
/// run on — the engine-facing half of [`Runtime`].  Public only to the
/// crate; the public API is `Runtime`.
pub struct WorkerPool {
    /// One job channel per thread: the vendored channel shim is single-
    /// consumer, and per-thread queues also keep dispatch deterministic.
    senders: Vec<Sender<ScopedJob>>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `threads` parked worker threads.
    pub(crate) fn new(threads: usize) -> Self {
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            // Deep enough that an oversubscribed search (more workers than
            // pool threads) can queue all its extra jobs without blocking
            // the dispatching thread.
            let (tx, rx) = bounded::<ScopedJob>(1024);
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("yewpar-pool-{i}"))
                    .spawn(move || pool_thread(rx))
                    .expect("spawn pool worker"),
            );
        }
        WorkerPool {
            senders,
            threads: handles,
        }
    }

    /// Number of pool threads.
    pub(crate) fn size(&self) -> usize {
        self.senders.len()
    }

    /// Run `count` scoped search workers on the *leased* pool threads in
    /// `slots`: worker 0 inline on the calling thread, workers 1.. on the
    /// listed pool threads (round-robin over the lease; with more workers
    /// than leased threads the surplus run after earlier ones retire, which
    /// is safe — search termination never requires a minimum worker count,
    /// late workers simply find the search finished).  Restricting dispatch
    /// to the lease is what keeps concurrently multiplexed searches on
    /// **disjoint** worker subsets.  Blocks until every worker has
    /// completed; a panic in any worker is re-raised as "a search worker
    /// panicked", matching the scoped-thread path.
    pub(crate) fn scoped_run_on<F>(
        &self,
        slots: &[usize],
        count: usize,
        worker_fn: &F,
    ) -> Vec<WorkerMetrics>
    where
        F: Fn(usize) -> WorkerMetrics + Sync,
    {
        assert!(count >= 1);
        assert!(
            !self.senders.is_empty() && !slots.is_empty(),
            "scoped_run_on with no leased pool threads (callers fall back to scoped threads)"
        );
        debug_assert!(
            slots.iter().all(|&s| s < self.senders.len()),
            "leased slot out of range"
        );
        let state = Arc::new(ScopedState {
            remaining: Mutex::new(count - 1),
            done: Condvar::new(),
            results: Mutex::new((0..count).map(|_| None).collect()),
            poisoned: AtomicBool::new(false),
        });
        // SAFETY: erase the borrow's lifetime so the pointer can cross into
        // 'static pool threads.  The latch below guarantees this function
        // does not return — and `worker_fn` therefore stays alive — until
        // every job has finished dereferencing it.
        let erased: *const (dyn Fn(usize) -> WorkerMetrics + Sync) = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize) -> WorkerMetrics + Sync + '_),
                *const (dyn Fn(usize) -> WorkerMetrics + Sync + 'static),
            >(worker_fn)
        };
        for index in 1..count {
            let job = ScopedJob {
                f: erased,
                index,
                state: Arc::clone(&state),
            };
            let target = slots[(index - 1) % slots.len()];
            if self.senders[target].send(job).is_err() {
                // The pool is shutting down; run the worker inline instead
                // of losing it (the latch still expects its completion).
                run_scoped_inline(erased, index, &state);
            }
        }
        // The calling thread is worker 0 — it would otherwise just block.
        let inline = catch_unwind(AssertUnwindSafe(|| worker_fn(0)));
        let inline = match inline {
            Ok(metrics) => Some(metrics),
            Err(_) => {
                // ordering: the latch handshake (store, then decrement under
                // the latch mutex) orders this before the post-wait load; the
                // flag itself needs no ordering.
                state.poisoned.store(true, Ordering::Relaxed);
                None
            }
        };
        // Wait for the helpers before touching the results (and before the
        // borrowed closure can go out of scope).
        let mut remaining = state.remaining.lock().expect("latch lock");
        while *remaining > 0 {
            remaining = state.done.wait(remaining).expect("latch wait");
        }
        drop(remaining);
        let mut results = state.results.lock().expect("results lock");
        results[0] = inline;
        let all: Vec<WorkerMetrics> = results
            .iter_mut()
            .map(|slot| slot.take().unwrap_or_default())
            .collect();
        drop(results);
        // ordering: every worker decremented the latch under its mutex after
        // any poison store, and we waited that latch out above.
        if state.poisoned.load(Ordering::Relaxed) {
            panic!("a search worker panicked");
        }
        all
    }

    /// Send one scoped job to a specific pool thread.  Returns `false` when
    /// the pool is shutting down (the channel is closed).
    fn send_to_slot(&self, slot: usize, job: ScopedJob) -> bool {
        match self.senders.get(slot) {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        }
    }

    /// The elastic variant of [`scoped_run_on`](WorkerPool::scoped_run_on):
    /// run `count` initial workers on the leased `slots` (worker 0 inline)
    /// *and* accept workers joining and leaving mid-run through `core`.
    ///
    /// While the run is live the core's *hook* holds the lifetime-erased
    /// worker closure; [`GrantCore::try_attach`] uses it to dispatch extra
    /// workers onto newly leased slots, bumping the completion latch before
    /// the job is sent so the latch can never reach zero with a worker
    /// outstanding.  Result slots are sized to the pool's capacity and
    /// indexed by *worker id* (ids are recycled on revocation, merging
    /// stints).  On the way out the hook is disarmed under the core's lock,
    /// after which no further attach can start — the re-check loop below
    /// closes the race where a grow lands between the latch reaching zero
    /// and the disarm.
    pub(crate) fn scoped_run_elastic<F>(
        &self,
        core: &Arc<GrantCore>,
        slots: &[usize],
        count: usize,
        worker_fn: &F,
    ) -> Vec<WorkerMetrics>
    where
        F: Fn(usize) -> WorkerMetrics + Sync,
    {
        assert!(count >= 1);
        debug_assert_eq!(
            count.saturating_sub(1),
            slots.len(),
            "elastic grants are 1:1"
        );
        let capacity = self.size() + 1;
        let state = Arc::new(ScopedState {
            remaining: Mutex::new(count - 1),
            done: Condvar::new(),
            results: Mutex::new((0..capacity.max(count)).map(|_| None).collect()),
            poisoned: AtomicBool::new(false),
        });
        // SAFETY: as in `scoped_run_on` — the latch (and the disarm
        // protocol for attached workers) keeps `worker_fn` alive until the
        // last dereference.
        let erased: *const (dyn Fn(usize) -> WorkerMetrics + Sync) = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize) -> WorkerMetrics + Sync + '_),
                *const (dyn Fn(usize) -> WorkerMetrics + Sync + 'static),
            >(worker_fn)
        };
        core.arm(ElasticHook {
            state: Arc::clone(&state),
            f: erased,
        });
        for index in 1..count {
            let job = ScopedJob {
                f: erased,
                index,
                state: Arc::clone(&state),
            };
            if !self.send_to_slot(slots[index - 1], job) {
                // Pool shutting down; run inline so the latch still closes.
                run_scoped_inline(erased, index, &state);
            }
        }
        let inline = catch_unwind(AssertUnwindSafe(|| worker_fn(0)));
        let inline = match inline {
            Ok(metrics) => Some(metrics),
            Err(_) => {
                // ordering: the latch handshake (store, then decrement under
                // the latch mutex) orders this before the post-wait load; the
                // flag itself needs no ordering.
                state.poisoned.store(true, Ordering::Relaxed);
                None
            }
        };
        // Wait out the helpers, then disarm the hook under the core's lock;
        // `try_attach` increments the latch under that same lock, so after
        // a zero-latch re-check with the lock held no new worker can exist.
        let used = loop {
            let mut remaining = state.remaining.lock().expect("latch lock");
            while *remaining > 0 {
                remaining = state.done.wait(remaining).expect("latch wait");
            }
            drop(remaining);
            if let Some(used) = core.try_disarm(&state) {
                break used;
            }
        };
        let mut results = state.results.lock().expect("results lock");
        if let (Some(slot), Some(metrics)) = (results.get_mut(0), inline) {
            match slot {
                Some(existing) => existing.merge(&metrics),
                None => *slot = Some(metrics),
            }
        }
        let all: Vec<WorkerMetrics> = results
            .iter_mut()
            .take(used.max(1))
            .map(|slot| slot.take().unwrap_or_default())
            .collect();
        drop(results);
        // ordering: every worker decremented the latch under its mutex after
        // any poison store, and we waited that latch out above.
        if state.poisoned.load(Ordering::Relaxed) {
            panic!("a search worker panicked");
        }
        all
    }

    /// Close the job channels and join every thread.  Called by
    /// [`Runtime`]'s drop after the dispatcher has drained.
    fn shutdown(&mut self) {
        self.senders.clear();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Execute one scoped job, recording its result (or the poison flag) and
/// signalling the latch even on panic.
fn run_scoped_inline(
    f: *const (dyn Fn(usize) -> WorkerMetrics + Sync),
    index: usize,
    state: &Arc<ScopedState>,
) {
    // SAFETY: see `ScopedJob` — the referent outlives the latch.
    let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*f)(index) }));
    let result = match outcome {
        Ok(metrics) => Some(metrics),
        Err(_) => {
            // ordering: ordered before the launcher's post-wait load by this
            // job's latch decrement under the latch mutex.
            state.poisoned.store(true, Ordering::Relaxed);
            None
        }
    };
    let mut results = state.results.lock().expect("results lock");
    // Merge rather than overwrite: elastic runs recycle worker indices
    // (retire → re-grow), so one slot can accumulate several stints.  For
    // fixed grants every index runs exactly once and merge ≡ assign.
    match (&mut results[index], result) {
        (Some(existing), Some(metrics)) => existing.merge(&metrics),
        (slot @ None, metrics) => *slot = metrics,
        (_, None) => {}
    }
    drop(results);
    let mut remaining = state.remaining.lock().expect("latch lock");
    *remaining -= 1;
    if *remaining == 0 {
        state.done.notify_all();
    }
}

/// A pool thread: park on the job channel, run scoped jobs as they arrive,
/// survive job panics (they are reported through the latch, not by killing
/// the thread).
fn pool_thread(rx: Receiver<ScopedJob>) {
    while let Ok(job) = rx.recv() {
        run_scoped_inline(job.f, job.index, &job.state);
    }
}

/// The live half of an elastic run: the worker closure and completion
/// latch of the search currently executing, held by its [`GrantCore`] so
/// [`GrantCore::try_attach`] can dispatch extra workers onto newly leased
/// slots mid-run.  Armed by
/// [`scoped_run_elastic`](WorkerPool::scoped_run_elastic) before the first
/// worker starts and disarmed (under the core's lock) after the last one
/// finishes.
struct ElasticHook {
    state: Arc<ScopedState>,
    f: *const (dyn Fn(usize) -> WorkerMetrics + Sync),
}

// SAFETY: the raw closure pointer is only dereferenced by jobs dispatched
// while the hook is armed, and `scoped_run_elastic` does not return (so the
// referent stays alive) until the latch is zero *and* the hook is disarmed
// under the lock — after which no further dispatch can observe it.  The
// closure is `Sync`, so concurrent calls are fine.
unsafe impl Send for ElasticHook {}

/// Mutexed bookkeeping of one elastic lease (see [`GrantCore`]).
struct GrantInner {
    /// Live workers, *including* worker 0 on the driver thread and workers
    /// that claimed a revocation but have not acknowledged it yet.
    worker_count: usize,
    /// Next fresh worker id; ids freed by revocation are recycled first, so
    /// this never exceeds the pool capacity + 1.
    next_worker_id: usize,
    /// Worker ids freed by acknowledged revocations, available for reuse.
    free_ids: Vec<usize>,
    /// Pool slots currently leased to the search (excludes the driver).
    held_slots: Vec<usize>,
    /// `(worker_id, slot)` for every worker dispatched onto a pool slot.
    assignments: Vec<(usize, usize)>,
    /// Issue timestamps of unacknowledged revocation requests (FIFO); the
    /// front one is consumed at each acknowledgement for its latency.
    revocations: VecDeque<Instant>,
    /// Workers that claimed a revocation and are on their way out — they no
    /// longer count against new revocation requests but still hold their
    /// slot until the acknowledgement.
    retiring: usize,
    hook: Option<ElasticHook>,
}

/// The shared, versioned state of one elastic grant — the renegotiable half
/// of an [`ExecutionGrant`].  The dispatcher grows the lease through
/// [`try_attach`](GrantCore::try_attach) and shrinks it through
/// [`request_revoke`](GrantCore::request_revoke); engine workers observe
/// revocation requests at their lifecycle polls
/// ([`try_claim_retire`](GrantCore::try_claim_retire)) and acknowledge with
/// [`ack_retire`](GrantCore::ack_retire), which returns the slot to the
/// dispatcher via a [`Control::Released`] message.  `None` of this exists
/// for serial-policy grants ([`ExecutionGrant::core`] is `None`): the Fifo
/// fast path carries zero elastic overhead.
pub(crate) struct GrantCore {
    pub(crate) search_id: u64,
    /// Bumped on every lease change (attach, revocation request, ack).
    pub(crate) version: AtomicU64,
    /// Unclaimed revocation requests — the cheap worker-side poll reads
    /// this before ever touching the mutex.
    revoke_pending: AtomicUsize,
    /// Executed adjustments (`Grow`/`Shrink`) against this lease.
    pub(crate) grant_changes: AtomicU64,
    /// Acknowledged revocations (workers that left the search mid-run).
    pub(crate) workers_preempted: AtomicU64,
    /// Summed request → acknowledgement latency, nanoseconds.
    pub(crate) revocation_ns: AtomicU64,
    /// Dispatcher control channel for `Released` notifications.
    released_tx: Sender<Control>,
    inner: Mutex<GrantInner>,
}

impl std::fmt::Debug for GrantCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrantCore")
            .field("search_id", &self.search_id)
            // ordering: diagnostic display of the change tick; staleness ok.
            .field("version", &self.version.load(Ordering::Relaxed))
            .finish()
    }
}

impl GrantCore {
    fn new(search_id: u64, workers: usize, slots: &[usize], released_tx: Sender<Control>) -> Self {
        GrantCore {
            search_id,
            version: AtomicU64::new(0),
            revoke_pending: AtomicUsize::new(0),
            grant_changes: AtomicU64::new(0),
            workers_preempted: AtomicU64::new(0),
            revocation_ns: AtomicU64::new(0),
            released_tx,
            inner: Mutex::new(GrantInner {
                worker_count: workers,
                next_worker_id: workers,
                free_ids: Vec::new(),
                held_slots: slots.to_vec(),
                assignments: (1..workers).map(|i| (i, slots[i - 1])).collect(),
                revocations: VecDeque::new(),
                retiring: 0,
                hook: None,
            }),
        }
    }

    fn arm(&self, hook: ElasticHook) {
        let mut inner = self.inner.lock().expect("grant lock");
        inner.hook = Some(hook);
    }

    /// Disarm the hook if the latch is still zero under the lock; returns
    /// the number of worker-id slots ever used.  `None` means a grow raced
    /// in after the latch was observed zero — wait again.
    fn try_disarm(&self, state: &Arc<ScopedState>) -> Option<usize> {
        let mut inner = self.inner.lock().expect("grant lock");
        let remaining = state.remaining.lock().expect("latch lock");
        if *remaining > 0 {
            return None;
        }
        inner.hook = None;
        Some(inner.next_worker_id)
    }

    /// Lease one more pool slot to the running search: allocate a worker
    /// id, bump the completion latch and dispatch the search's worker
    /// closure onto `slot`.  Returns `false` — leaving the slot with the
    /// caller — when the run is not live (hook unarmed: the search has not
    /// started or is finishing) or the pool is shutting down.
    fn try_attach(&self, slot: usize, pool: &WorkerPool) -> bool {
        let mut inner = self.inner.lock().expect("grant lock");
        let (state, f) = match &inner.hook {
            Some(hook) => (Arc::clone(&hook.state), hook.f),
            None => return false,
        };
        let worker_id = match inner.free_ids.pop() {
            Some(id) => id,
            None => {
                let id = inner.next_worker_id;
                inner.next_worker_id += 1;
                id
            }
        };
        {
            let mut remaining = state.remaining.lock().expect("latch lock");
            *remaining += 1;
        }
        let job = ScopedJob {
            f,
            index: worker_id,
            state: Arc::clone(&state),
        };
        if !pool.send_to_slot(slot, job) {
            let mut remaining = state.remaining.lock().expect("latch lock");
            *remaining -= 1;
            if *remaining == 0 {
                state.done.notify_all();
            }
            drop(remaining);
            inner.free_ids.push(worker_id);
            return false;
        }
        inner.worker_count += 1;
        inner.held_slots.push(slot);
        inner.assignments.push((worker_id, slot));
        // ordering: advisory change tick; lease state mutates under the
        // grant lock above, which provides the real ordering.
        self.version.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Issue up to `want` cooperative revocation requests, never shrinking
    /// the lease below one worker (the driver's worker 0 never claims).
    /// Returns how many were actually issued.
    fn request_revoke(&self, want: usize) -> usize {
        let mut inner = self.inner.lock().expect("grant lock");
        // ordering: relaxed mirror of lock-protected state — only ever
        // written under the grant lock held here, so this read is exact.
        let pending = self.revoke_pending.load(Ordering::Relaxed);
        let committed = inner
            .worker_count
            .saturating_sub(1)
            .saturating_sub(pending + inner.retiring);
        let take = want.min(committed);
        if take == 0 {
            return 0;
        }
        let now = Instant::now();
        for _ in 0..take {
            inner.revocations.push_back(now);
        }
        // ordering: mirror store under the grant lock; unlocked readers
        // (the try_claim_retire fast path) re-check under the lock, so a
        // stale view only delays a claim (model-checked: models/grant.rs).
        self.revoke_pending.store(pending + take, Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::Relaxed);
        self.grant_changes.fetch_add(1, Ordering::Relaxed);
        take
    }

    /// Worker-side: claim one pending revocation request, if any.  The
    /// fast path is a single relaxed load; the claim itself is taken under
    /// the lock so two workers can never claim the same request and a
    /// racing [`request_revoke`](GrantCore::request_revoke) always sees an
    /// accurate committed-worker count.
    pub(crate) fn try_claim_retire(&self) -> bool {
        // ordering: unlocked fast-path peek at the lock-protected mirror; a
        // stale zero just skips this poll and a stale non-zero falls through
        // to the locked re-check below (model-checked: models/grant.rs,
        // whose UnlockedClaim mutation shows the lock re-check is load-bearing).
        if self.revoke_pending.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let mut inner = self.inner.lock().expect("grant lock");
        // ordering: exact — the mirror is only written under the grant lock.
        let pending = self.revoke_pending.load(Ordering::Relaxed);
        if pending == 0 {
            return false;
        }
        self.revoke_pending.store(pending - 1, Ordering::Relaxed);
        inner.retiring += 1;
        true
    }

    /// Worker-side: acknowledge a claimed revocation after the worker has
    /// drained its local work back to the survivors.  Removes the worker
    /// from the lease — the slot is struck from `held_slots` *before* the
    /// [`Control::Released`] message is sent, so the dispatcher can hand it
    /// out again without racing the search's own teardown — and records
    /// the request → acknowledgement latency.
    pub(crate) fn ack_retire(&self, worker_id: usize) {
        let mut inner = self.inner.lock().expect("grant lock");
        let slot = inner
            .assignments
            .iter()
            .position(|(w, _)| *w == worker_id)
            .map(|pos| inner.assignments.remove(pos).1);
        if let Some(slot) = slot {
            inner.held_slots.retain(|&s| s != slot);
        }
        inner.free_ids.push(worker_id);
        inner.worker_count = inner.worker_count.saturating_sub(1);
        inner.retiring = inner.retiring.saturating_sub(1);
        let latency = inner
            .revocations
            .pop_front()
            .map(|requested| requested.elapsed())
            .unwrap_or_default();
        drop(inner);
        // ordering: advisory telemetry tallies (and the change tick); read
        // by metrics snapshots that tolerate skew, publish nothing.
        self.workers_preempted.fetch_add(1, Ordering::Relaxed);
        self.revocation_ns
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = slot {
            let _ = self.released_tx.send(Control::Released {
                search_id: self.search_id,
                slot,
                latency,
            });
        }
    }

    /// Dispatcher-side teardown at search finish: clear any unclaimed
    /// revocation requests and return the remaining lease
    /// `(workers, slots)` for reclamation.  Every acknowledgement
    /// happens-before the driver's `Finished` message, so the returned
    /// numbers are settled.
    fn teardown(&self) -> (usize, Vec<usize>) {
        let mut inner = self.inner.lock().expect("grant lock");
        inner.hook = None;
        inner.revocations.clear();
        // ordering: mirror reset under the grant lock, like every write.
        self.revoke_pending.store(0, Ordering::Relaxed);
        (inner.worker_count, std::mem::take(&mut inner.held_slots))
    }
}

/// Per-session worker-quota accounting (see [`Session::with_max_workers`]):
/// the dispatcher holds a session's submissions back — and caps what it
/// shows the policy — so the session's total granted workers never exceed
/// the cap, and accumulates how long submissions sat quota-throttled.
#[derive(Debug, Default)]
pub(crate) struct SessionQuota {
    max_workers: usize,
    /// Workers currently granted across the session's searches (including
    /// unacknowledged revocations).
    in_flight: AtomicUsize,
    throttled_ns: AtomicU64,
}

impl SessionQuota {
    fn remaining(&self) -> usize {
        // ordering: in_flight is written and read by the dispatcher thread
        // only; the atomic exists for shared ownership, not synchronisation.
        self.max_workers
            .saturating_sub(self.in_flight.load(Ordering::Relaxed))
    }

    fn add_throttled(&self, held: Duration) {
        // ordering: advisory telemetry tally; `stats()` readers tolerate a
        // slightly stale total.
        self.throttled_ns
            .fetch_add(held.as_nanos() as u64, Ordering::Relaxed);
    }

    fn throttled(&self) -> Duration {
        // ordering: advisory telemetry read; see add_throttled.
        Duration::from_nanos(self.throttled_ns.load(Ordering::Relaxed))
    }
}

/// The background gauge sampler ([`RuntimeConfig::gauge_period`]): snapshot
/// the pool-wide gauges every `period` and record them as `RuntimeGauge`
/// events until told to stop.  The period is slept in bounded chunks so
/// shutdown never waits out a long sampling interval.
fn gauge_sampler(stop: Arc<AtomicBool>, gauges: Arc<PoolGauges>, tracer: Tracer, period: Duration) {
    const CHUNK: Duration = Duration::from_millis(10);
    // ordering: pure shutdown flag guarding no data; a stale read costs at
    // most one extra sample/chunk before the next load observes the store.
    while !stop.load(Ordering::Relaxed) {
        let stats = gauges.snapshot();
        tracer.control(TraceEvent::RuntimeGauge {
            active: stats.active_searches as u32,
            granted: stats.granted_workers as u32,
            queued: stats.queued_searches as u32,
            completed: stats.completed_searches,
            peak: stats.peak_active_searches as u32,
        });
        let mut remaining = period;
        // ordering: same shutdown flag as above; staleness only delays exit.
        while !remaining.is_zero() && !stop.load(Ordering::Relaxed) {
            let chunk = remaining.min(CHUNK);
            std::thread::sleep(chunk);
            remaining = remaining.saturating_sub(chunk);
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Maximum search workers that can run in parallel.  The pool keeps
    /// `workers - 1` persistent threads (the dispatching thread itself runs
    /// worker 0 of each search), so a search configured with up to this
    /// many workers executes with zero thread spawns.
    pub workers: usize,
    /// Capacity of each handle's bounded progress channel; events beyond a
    /// lagging consumer are dropped, never blocked on.
    pub progress_capacity: usize,
    /// Capacity of the FIFO submission queue.  Submitting beyond it blocks
    /// the submitter until the dispatcher catches up (backpressure, not an
    /// error).
    pub queue_capacity: usize,
    /// Record every search submitted to this runtime — plus the
    /// dispatcher's queue/grant transitions — on one runtime-wide flight
    /// recorder, drained with [`Runtime::drain_trace`].  Off by default and
    /// free when off (see [`crate::trace`]).
    pub trace: bool,
    /// Period of the background gauge sampler: when set (and `trace` is
    /// on), a sampler thread snapshots the pool-wide [`RuntimeStats`] every
    /// period and records them as
    /// [`RuntimeGauge`](crate::trace::TraceEvent::RuntimeGauge) events.
    /// `None` (the default) disables the sampler.
    pub gauge_period: Option<Duration>,
    /// How often the dispatcher re-plans elastic leases while a concurrent
    /// policy has running or pending searches: each tick it snapshots the
    /// running set and executes the policy's
    /// [`replan`](crate::schedule::SchedulePolicy::replan) adjustments.
    /// Irrelevant — and costless — under a serial policy, which keeps the
    /// dispatcher on a pure blocking receive.  Default 5 ms.
    pub replan_period: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            progress_capacity: 1024,
            queue_capacity: 256,
            trace: false,
            gauge_period: None,
            replan_period: Duration::from_millis(5),
        }
    }
}

impl RuntimeConfig {
    /// Set the maximum parallel search workers.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the per-handle progress-channel capacity.
    pub fn progress_capacity(mut self, capacity: usize) -> Self {
        self.progress_capacity = capacity.max(1);
        self
    }

    /// Switch the runtime-wide flight recorder on or off.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enable the background gauge sampler with the given period (requires
    /// [`trace`](RuntimeConfig::trace) to record anywhere).
    pub fn gauge_period(mut self, period: Duration) -> Self {
        self.gauge_period = Some(period);
        self
    }

    /// Set the elastic re-planning period (see
    /// [`replan_period`](RuntimeConfig::replan_period)).
    pub fn replan_period(mut self, period: Duration) -> Self {
        self.replan_period = period.max(Duration::from_micros(1));
        self
    }
}

/// How [`Runtime::shutdown`] treats work that has not finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShutdownMode {
    /// Stop accepting submissions, run every queued search to its natural
    /// end (deadlines and cancel tokens still apply), wait for running
    /// searches, then join all threads.  This is what dropping a [`Runtime`]
    /// does.
    Graceful,
    /// Stop *now*, deterministically: cancel the runtime's root scope (every
    /// running search stops at its next per-step poll with
    /// [`SearchStatus::Cancelled`]), cancel every queued-but-unstarted
    /// search (its handle resolves `Cancelled` with an empty partial instead
    /// of hanging), then join.  No handle is left unresolved.
    Now,
}

/// The worker allotment the scheduler granted one search at dispatch time.
/// Flows from the dispatcher through [`Skeleton`] into the engine (which
/// sizes its worker set and work source from it) and is stamped onto the
/// outcome's [`Metrics`](crate::metrics::Metrics) so disjointness and
/// queue-wait are observable per search.
#[derive(Debug, Clone, Default)]
pub(crate) struct ExecutionGrant {
    /// Runtime-unique id of the search (1-based; 0 = not a runtime search).
    pub(crate) search_id: u64,
    /// Granted worker count — the engine's effective worker count,
    /// overriding `SearchConfig::workers` (which is the *request*).
    pub(crate) workers: usize,
    /// Leased pool-thread indices (disjoint between concurrently running
    /// searches).  Workers 1.. round-robin over these; worker 0 runs on the
    /// search's driver thread.
    pub(crate) slots: Vec<usize>,
    /// Time from submission to grant, recorded by the dispatcher at grant
    /// time (the submitter never self-reports its wait).
    pub(crate) queue_wait: Duration,
    /// The shared, versioned lease state — `Some` exactly when the grant is
    /// *elastic* (concurrent policy): the dispatcher renegotiates the lease
    /// through it, and the engine routes the run through
    /// [`WorkerPool::scoped_run_elastic`] and polls it for revocations.
    /// `None` keeps the fixed-for-life PR 4 semantics.
    pub(crate) core: Option<Arc<GrantCore>>,
}

/// A submitted search job: runs once the scheduler grants it workers.
type Job = Box<dyn FnOnce(ExecutionGrant) + Send + 'static>;

/// A submission travelling from [`Runtime::submit_scoped`] to the
/// dispatcher.
struct Submission {
    search_id: u64,
    requested_workers: usize,
    /// Scheduling priority ([`SearchConfig::priority`]), surfaced to the
    /// policy on every plan/replan.
    priority: Priority,
    /// The request's wall-clock budget ([`SearchConfig::deadline`]),
    /// surfaced to deadline-aware policies for admission ordering.
    deadline: Option<Duration>,
    /// The submitting session's worker quota, if capped.
    quota: Option<Arc<SessionQuota>>,
    /// The search's (leaf) cancel token — the dispatcher pre-cancels queued
    /// submissions on [`ShutdownMode::Now`].
    cancel: CancelToken,
    /// Monotonic timestamp of the submission.  Queue wait is *recorded by
    /// the dispatcher* at grant time (`submitted_at` → grant instant), so a
    /// submitter never self-reports its wait — and time spent in the
    /// channel while the dispatcher runs a FIFO job inline still counts.
    submitted_at: Instant,
    job: Job,
}

/// Dispatcher control messages.  Submissions and driver-completion
/// notifications share one channel so the dispatcher has a single blocking
/// point.
enum Control {
    Submit(Submission),
    /// A concurrently driven search finished; reclaim its lease.
    Finished {
        search_id: u64,
        workers: usize,
        slots: Vec<usize>,
    },
    /// A worker acknowledged a revocation and left its search mid-run; its
    /// slot and one worker of budget return to the free pools.  Sent by
    /// [`GrantCore::ack_retire`] *after* the slot was struck from the
    /// lease, so this never races the search's own `Finished` reclaim.
    Released {
        search_id: u64,
        slot: usize,
        latency: Duration,
    },
    Shutdown(ShutdownMode),
}

/// Pool-wide scheduler gauges, updated by the dispatcher and snapshotted by
/// [`Runtime::stats`].
#[derive(Debug, Default)]
struct PoolGauges {
    active_searches: AtomicUsize,
    peak_active_searches: AtomicUsize,
    granted_workers: AtomicUsize,
    queued_searches: AtomicUsize,
    completed_searches: AtomicU64,
    total_queue_wait_micros: AtomicU64,
    grant_changes: AtomicU64,
    workers_preempted: AtomicU64,
    revocation_ns: AtomicU64,
}

impl PoolGauges {
    fn snapshot(&self) -> RuntimeStats {
        RuntimeStats {
            // ordering: advisory gauges — each field is an independent
            // relaxed tally and the snapshot may be skewed across fields;
            // acceptable for telemetry, nothing is published through them.
            active_searches: self.active_searches.load(Ordering::Relaxed),
            peak_active_searches: self.peak_active_searches.load(Ordering::Relaxed),
            granted_workers: self.granted_workers.load(Ordering::Relaxed),
            // ordering: as above — independent advisory telemetry reads.
            queued_searches: self.queued_searches.load(Ordering::Relaxed),
            completed_searches: self.completed_searches.load(Ordering::Relaxed),
            // ordering: as above — independent advisory telemetry reads.
            total_queue_wait: Duration::from_micros(
                self.total_queue_wait_micros.load(Ordering::Relaxed),
            ),
            grant_changes: self.grant_changes.load(Ordering::Relaxed),
            workers_preempted: self.workers_preempted.load(Ordering::Relaxed),
            // ordering: as above — independent advisory telemetry read.
            revocation_latency: Duration::from_nanos(self.revocation_ns.load(Ordering::Relaxed)),
        }
    }
}

/// A submission the dispatcher has received but not yet granted workers.
struct QueuedSearch {
    submission: Submission,
    /// When the submission last became quota-held; taken (and accumulated
    /// into the session's throttled time) the moment it is eligible again.
    throttle_started: Option<Instant>,
}

/// Dispatcher-side state of one running elastic search: the lease's shared
/// core plus the request attributes the policy sees on every replan.
struct ActiveSearch {
    core: Arc<GrantCore>,
    cancel: CancelToken,
    priority: Priority,
    requested_workers: usize,
    started: Instant,
    /// The dispatcher's view of the lease size: grant + executed grows −
    /// acknowledged revocations.
    workers: usize,
    /// Revocations requested but not yet acknowledged.
    pending_revocations: usize,
    preempted: bool,
    quota: Option<Arc<SessionQuota>>,
}

/// The allocator loop state: owns the pending queue, the free worker budget
/// and the free pool-thread slots, and executes the policy's admissions.
struct Dispatcher {
    rx: Receiver<Control>,
    /// Clone handed to each driver thread for its `Finished` notification.
    finished_tx: Sender<Control>,
    policy: Box<dyn SchedulePolicy>,
    /// Total worker capacity (`RuntimeConfig::workers`).
    capacity: usize,
    /// Unleased worker budget.  `capacity` minus the granted counts of the
    /// running searches (saturating: FIFO grants oversubscribed requests).
    free_workers: usize,
    /// Unleased pool-thread indices.
    free_slots: Vec<usize>,
    pending: VecDeque<QueuedSearch>,
    active: usize,
    /// Driver threads of concurrently running searches, joined on their
    /// `Finished` message.
    drivers: HashMap<u64, JoinHandle<()>>,
    /// Elastic leases of the currently running searches (concurrent
    /// policies only; empty under Fifo).
    elastic: HashMap<u64, ActiveSearch>,
    /// The pool, for dispatching grown workers onto newly leased slots.
    pool: Arc<WorkerPool>,
    /// Elastic re-planning tick ([`RuntimeConfig::replan_period`]).
    replan_period: Duration,
    gauges: Arc<PoolGauges>,
    draining: Option<ShutdownMode>,
    /// Flight recorder for queue/grant/finish transitions (off by default).
    tracer: Tracer,
}

impl Dispatcher {
    fn run(mut self) {
        loop {
            if self.draining.is_some() && self.pending.is_empty() && self.active == 0 {
                break;
            }
            // A concurrent policy with anything in flight re-plans on a
            // timer; otherwise the dispatcher parks on a pure blocking
            // receive (the Fifo fast path, unchanged).
            let tick = self.policy.concurrent() && (self.active > 0 || !self.pending.is_empty());
            let received = if tick {
                match self.rx.recv_timeout(self.replan_period) {
                    Ok(msg) => Ok(Some(msg)),
                    Err(RecvTimeoutError::Timeout) => Ok(None),
                    Err(RecvTimeoutError::Disconnected) => Err(()),
                }
            } else {
                self.rx.recv().map(Some).map_err(|_| ())
            };
            match received {
                Ok(Some(msg)) => self.handle(msg),
                Ok(None) => {}
                Err(()) => {
                    // Unreachable by construction — `finished_tx` keeps the
                    // channel open for this loop's whole lifetime (`Drop`
                    // terminates via an explicit `Shutdown` message).  Kept
                    // as a defensive exit so a refactor that drops that
                    // clone cannot silently hang the dispatcher.
                    if self.draining.is_none() {
                        self.draining = Some(ShutdownMode::Graceful);
                    }
                    if self.pending.is_empty() && self.active == 0 {
                        break;
                    }
                }
            }
            // Batch whatever else already arrived before planning, so one
            // planning round sees the whole burst.
            while let Ok(msg) = self.rx.try_recv() {
                self.handle(msg);
            }
            self.dispatch();
            if self.policy.concurrent() {
                self.replan();
            }
        }
        for (_, driver) in self.drivers.drain() {
            let _ = driver.join();
        }
    }

    fn handle(&mut self, msg: Control) {
        match msg {
            Control::Submit(submission) => {
                if matches!(self.draining, Some(ShutdownMode::Now)) {
                    submission.cancel.cancel();
                }
                // `queued_searches` was already incremented by the
                // submitter, so time spent in the control channel (e.g.
                // while a FIFO job runs inline) shows up in the gauge.
                self.tracer.control(TraceEvent::SearchQueued {
                    search_id: submission.search_id,
                });
                self.pending.push_back(QueuedSearch {
                    submission,
                    throttle_started: None,
                });
            }
            Control::Finished {
                search_id,
                workers,
                slots,
            } => {
                self.tracer
                    .control(TraceEvent::SearchFinished { search_id });
                if let Some(entry) = self.elastic.remove(&search_id) {
                    // Elastic lease: the launch-time payload is stale after
                    // grows/shrinks — reclaim what the core still holds.
                    // Every acknowledgement happens-before this message, so
                    // the teardown numbers are settled.
                    let (workers, slots) = entry.core.teardown();
                    if let Some(quota) = &entry.quota {
                        // ordering: dispatcher-private tally (single writer
                        // and reader: this thread); atomic for ownership.
                        quota.in_flight.fetch_sub(workers, Ordering::Relaxed);
                    }
                    self.reclaim(workers, slots);
                } else {
                    self.reclaim(workers, slots);
                }
                if let Some(driver) = self.drivers.remove(&search_id) {
                    // The driver sent `Finished` as its last action; the
                    // join returns promptly and keeps the thread count
                    // bounded by the number of *running* searches.
                    let _ = driver.join();
                }
            }
            Control::Released {
                search_id,
                slot,
                latency,
            } => {
                // Processed without consulting the active map: the slot was
                // already struck from the lease before this message was
                // sent, so crediting it here cannot double-count against
                // the search's finish-time reclaim.
                self.free_slots.push(slot);
                self.free_workers = (self.free_workers + 1).min(self.capacity);
                // ordering: advisory telemetry gauges; snapshot() reads them
                // relaxed and tolerates skew.
                self.gauges.granted_workers.fetch_sub(1, Ordering::Relaxed);
                self.gauges
                    .workers_preempted
                    .fetch_add(1, Ordering::Relaxed);
                self.gauges
                    .revocation_ns
                    // ordering: advisory telemetry tally, as above.
                    .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
                self.tracer.control(TraceEvent::WorkerRevoked {
                    search_id,
                    slot: slot as u32,
                    latency_ns: latency.as_nanos() as u64,
                });
                if let Some(entry) = self.elastic.get_mut(&search_id) {
                    entry.workers = entry.workers.saturating_sub(1);
                    entry.pending_revocations = entry.pending_revocations.saturating_sub(1);
                    if let Some(quota) = &entry.quota {
                        // ordering: dispatcher-private tally, as at teardown.
                        quota.in_flight.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Control::Shutdown(mode) => {
                if matches!(mode, ShutdownMode::Now) {
                    for queued in &self.pending {
                        queued.submission.cancel.cancel();
                    }
                }
                if !matches!(self.draining, Some(ShutdownMode::Now)) {
                    self.draining = Some(mode);
                }
            }
        }
    }

    /// Return a finished search's lease to the free pools.
    fn reclaim(&mut self, workers: usize, mut slots: Vec<usize>) {
        self.active -= 1;
        self.free_workers = (self.free_workers + workers).min(self.capacity);
        self.free_slots.append(&mut slots);
        // ordering: advisory telemetry gauges; snapshots tolerate skew.
        self.gauges.active_searches.fetch_sub(1, Ordering::Relaxed);
        self.gauges
            .granted_workers
            .fetch_sub(workers, Ordering::Relaxed);
        self.gauges
            .completed_searches
            // ordering: advisory telemetry tally, as above.
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The policy's view of the queue: quota-eligible submissions only
    /// (requests capped to their session's remaining quota), paired with a
    /// map from request index back to the `pending` index.  Over-quota
    /// submissions are held back — queued, not errored — and their hold
    /// time is accumulated as session throttled time the moment they become
    /// eligible again.
    fn eligible_requests(&mut self, now: Instant) -> (Vec<PendingRequest>, Vec<usize>) {
        let mut requests = Vec::with_capacity(self.pending.len());
        let mut eligible = Vec::with_capacity(self.pending.len());
        // Quota already spoken for by *earlier requests in this round*: two
        // same-session submissions arriving in one control batch must not
        // both be measured against the pre-launch `in_flight`, or one plan
        // round could admit past the cap.  Conservative (charges the capped
        // request even if the policy grants less); an under-admitted session
        // becomes eligible again on the next tick.
        let mut reserved: HashMap<*const SessionQuota, usize> = HashMap::new();
        for (index, queued) in self.pending.iter_mut().enumerate() {
            let cap = match &queued.submission.quota {
                Some(quota) => {
                    let already = reserved.get(&Arc::as_ptr(quota)).copied().unwrap_or(0);
                    let remaining = quota.remaining().saturating_sub(already);
                    if remaining == 0 {
                        queued.throttle_started.get_or_insert(now);
                        continue;
                    }
                    remaining
                }
                None => usize::MAX,
            };
            if let (Some(started), Some(quota)) =
                (queued.throttle_started.take(), &queued.submission.quota)
            {
                quota.add_throttled(now.duration_since(started));
            }
            let requested = queued.submission.requested_workers.min(cap);
            if let Some(quota) = &queued.submission.quota {
                *reserved.entry(Arc::as_ptr(quota)).or_insert(0) += requested;
            }
            requests.push(PendingRequest {
                requested_workers: requested,
                queued_for: now.duration_since(queued.submission.submitted_at),
                priority: queued.submission.priority,
                deadline: queued.submission.deadline,
            });
            eligible.push(index);
        }
        (requests, eligible)
    }

    /// Ask the policy for admissions and execute them, repeating until the
    /// policy admits nothing (a serial policy's inline run frees the pool,
    /// so one `dispatch` call can drain a whole FIFO queue).
    fn dispatch(&mut self) {
        loop {
            if self.pending.is_empty() {
                return;
            }
            let now = Instant::now();
            let (requests, eligible) = self.eligible_requests(now);
            if requests.is_empty() {
                return;
            }
            let admissions =
                self.policy
                    .plan(&requests, self.free_workers, self.capacity, self.active);
            if admissions.is_empty() {
                return;
            }
            debug_assert!(
                admissions.windows(2).all(|w| w[0].index < w[1].index),
                "admission indices must be strictly increasing"
            );
            // Pop admitted submissions back-to-front so indices stay valid
            // (`eligible` is increasing, so the mapped indices are too),
            // then launch in queue order.
            let mut admitted: Vec<(QueuedSearch, usize)> = Vec::with_capacity(admissions.len());
            for Admission { index, workers } in admissions.into_iter().rev() {
                let queued = self
                    .pending
                    .remove(eligible[index])
                    .expect("policy admitted a pending index");
                admitted.push((queued, workers.max(1)));
            }
            admitted.reverse();
            for (queued, workers) in admitted {
                self.launch(queued, workers);
            }
            // Re-plan: after inline runs (or a batch of launches) the state
            // may admit more.
        }
    }

    /// Lease pool slots to one admitted search and run it — inline on this
    /// thread under a serial policy (the PR 4 fast path), on a dedicated
    /// driver thread under a concurrent one.
    fn launch(&mut self, queued: QueuedSearch, workers: usize) {
        let QueuedSearch { submission, .. } = queued;
        // Worker 0 runs on the driver; workers 1.. need pool threads.  A
        // FIFO oversubscribed grant takes every free slot and round-robins.
        let lease_len = workers.saturating_sub(1).min(self.free_slots.len());
        let slots: Vec<usize> = self.free_slots.drain(..lease_len).collect();
        // Concurrent policies never oversubscribe (their grants are capped
        // to the free budget, and `free_slots ≥ free_workers − 1 + active`
        // holds inductively), so every concurrent grant is fully leased and
        // therefore elastic: one pool slot per helper, renegotiable.
        let core = self.policy.concurrent().then(|| {
            Arc::new(GrantCore::new(
                submission.search_id,
                workers,
                &slots,
                self.finished_tx.clone(),
            ))
        });
        if let Some(quota) = &submission.quota {
            // ordering: dispatcher-private tally; atomic for ownership only.
            quota.in_flight.fetch_add(workers, Ordering::Relaxed);
        }
        if let Some(core) = &core {
            self.elastic.insert(
                submission.search_id,
                ActiveSearch {
                    core: Arc::clone(core),
                    cancel: submission.cancel.clone(),
                    priority: submission.priority,
                    requested_workers: submission.requested_workers,
                    started: Instant::now(),
                    workers,
                    pending_revocations: 0,
                    preempted: false,
                    quota: submission.quota.clone(),
                },
            );
        }
        let grant = ExecutionGrant {
            search_id: submission.search_id,
            workers,
            slots: slots.clone(),
            queue_wait: submission.submitted_at.elapsed(),
            core,
        };
        self.active += 1;
        self.free_workers = self.free_workers.saturating_sub(workers);
        // ordering: advisory telemetry gauges; snapshots tolerate skew.  The
        // peak update is a lock-free max over the RMW-atomic running count.
        self.gauges.queued_searches.fetch_sub(1, Ordering::Relaxed);
        self.gauges
            .granted_workers
            .fetch_add(workers, Ordering::Relaxed);
        // ordering: advisory gauges, as above; the peak is a lock-free max
        // over this RMW-atomic running count.
        let active_now = self.gauges.active_searches.fetch_add(1, Ordering::Relaxed) + 1;
        self.gauges
            .peak_active_searches
            .fetch_max(active_now, Ordering::Relaxed);
        self.gauges
            .total_queue_wait_micros
            // ordering: advisory telemetry tally, as above.
            .fetch_add(grant.queue_wait.as_micros() as u64, Ordering::Relaxed);
        self.tracer.control(TraceEvent::SearchGranted {
            search_id: submission.search_id,
            workers: workers as u32,
        });
        let job = submission.job;
        if self.policy.concurrent() {
            let finished = self.finished_tx.clone();
            let search_id = submission.search_id;
            let driver = std::thread::Builder::new()
                .name(format!("yewpar-driver-{search_id}"))
                .spawn(move || {
                    // The job catches search panics itself (the handle
                    // re-raises them); this outer catch only guarantees the
                    // lease is returned even if result delivery panics.
                    let _ = catch_unwind(AssertUnwindSafe(|| job(grant)));
                    let _ = finished.send(Control::Finished {
                        search_id,
                        workers,
                        slots,
                    });
                })
                .expect("spawn search driver");
            self.drivers.insert(search_id, driver);
        } else {
            // Serial policy: inline on the dispatcher thread — zero handoff
            // latency, identical to the PR 4 FIFO runtime.
            let search_id = submission.search_id;
            job(grant);
            self.tracer
                .control(TraceEvent::SearchFinished { search_id });
            if let Some(quota) = &submission.quota {
                // ordering: dispatcher-private tally; atomic for ownership.
                quota.in_flight.fetch_sub(workers, Ordering::Relaxed);
            }
            self.reclaim(workers, slots);
        }
    }

    /// One elastic re-planning round: snapshot the running and pending
    /// sets, ask the policy for [`Adjustment`]s and execute them in order,
    /// best-effort.  No-op while nothing is running or waiting.
    fn replan(&mut self) {
        if self.elastic.is_empty() && self.pending.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut running: Vec<RunningSearch> = self
            .elastic
            .iter()
            .map(|(&search_id, entry)| RunningSearch {
                search_id,
                workers: entry.workers,
                requested_workers: entry.requested_workers,
                priority: entry.priority,
                elastic: true,
                running_for: now.duration_since(entry.started),
                pending_revocations: entry.pending_revocations,
                preempted: entry.preempted,
            })
            .collect();
        // Deterministic order for the policy regardless of map iteration.
        running.sort_by_key(|search| search.search_id);
        let (requests, _) = self.eligible_requests(now);
        let adjustments = self
            .policy
            .replan(&running, &requests, self.free_workers, self.capacity);
        for adjustment in adjustments {
            match adjustment {
                Adjustment::Grow { search, workers } => self.execute_grow(search, workers),
                Adjustment::Shrink { search, workers } => self.execute_shrink(search, workers),
                Adjustment::Preempt { search } => self.execute_preempt(search),
            }
        }
    }

    /// Lease up to `want` extra workers onto a running search — bounded by
    /// the free budget, the free slots, and the search's session quota.
    fn execute_grow(&mut self, search: u64, want: usize) {
        let Some(entry) = self.elastic.get_mut(&search) else {
            return;
        };
        if entry.preempted {
            return;
        }
        let quota_room = entry
            .quota
            .as_ref()
            .map(|quota| quota.remaining())
            .unwrap_or(usize::MAX);
        let want = want
            .min(self.free_workers)
            .min(self.free_slots.len())
            .min(quota_room);
        let mut grown = 0;
        for _ in 0..want {
            let Some(slot) = self.free_slots.pop() else {
                break;
            };
            if entry.core.try_attach(slot, &self.pool) {
                grown += 1;
            } else {
                // The search has not armed yet or is finishing — keep the
                // slot and stop; a later round can retry.
                self.free_slots.push(slot);
                break;
            }
        }
        if grown > 0 {
            entry.workers += grown;
            self.free_workers -= grown;
            if let Some(quota) = &entry.quota {
                // ordering: dispatcher-private tally; atomic for ownership.
                quota.in_flight.fetch_add(grown, Ordering::Relaxed);
            }
            // ordering: advisory telemetry tallies; snapshots tolerate skew.
            entry.core.grant_changes.fetch_add(1, Ordering::Relaxed);
            self.gauges
                .granted_workers
                .fetch_add(grown, Ordering::Relaxed);
            self.gauges.grant_changes.fetch_add(1, Ordering::Relaxed);
            self.tracer.control(TraceEvent::GrantGrown {
                search_id: search,
                workers: entry.workers as u32,
            });
        }
    }

    /// Issue cooperative revocation requests against a running search; the
    /// workers leave (and their slots return) asynchronously, at their next
    /// lifecycle polls.
    fn execute_shrink(&mut self, search: u64, want: usize) {
        let Some(entry) = self.elastic.get_mut(&search) else {
            return;
        };
        if entry.preempted {
            return;
        }
        let issued = entry.core.request_revoke(want);
        if issued > 0 {
            entry.pending_revocations += issued;
            // ordering: advisory telemetry tally; snapshots tolerate skew.
            self.gauges.grant_changes.fetch_add(1, Ordering::Relaxed);
            self.tracer.control(TraceEvent::GrantShrunk {
                search_id: search,
                workers: (entry.workers - entry.pending_revocations) as u32,
            });
        }
    }

    /// Cancel a running search outright: it resolves `Cancelled` with its
    /// partial incumbent at its next poll and its whole lease returns
    /// through the normal finish path.
    fn execute_preempt(&mut self, search: u64) {
        let Some(entry) = self.elastic.get_mut(&search) else {
            return;
        };
        if entry.preempted {
            return;
        }
        entry.preempted = true;
        entry.cancel.cancel();
    }
}

/// A persistent search runtime: a long-lived worker pool plus a
/// policy-driven multiplexing scheduler.  See the [module docs](self) for
/// the full model.
pub struct Runtime {
    control: Option<Sender<Control>>,
    dispatcher: Option<JoinHandle<()>>,
    pool: Arc<WorkerPool>,
    config: RuntimeConfig,
    /// Root of the runtime's cancellation tree: sessions are children,
    /// searches are grandchildren (or children, for sessionless
    /// submissions).  [`ShutdownMode::Now`] cancels it.
    root: CancelToken,
    gauges: Arc<PoolGauges>,
    next_search_id: AtomicU64,
    policy_name: &'static str,
    /// Runtime-wide flight recorder shared by the dispatcher, the gauge
    /// sampler and every submitted search ([`RuntimeConfig::trace`]).
    trace: Option<Arc<TraceBuffer>>,
    /// Stop flag + thread of the background gauge sampler
    /// ([`RuntimeConfig::gauge_period`]); joined on shutdown.
    gauge_stop: Option<Arc<AtomicBool>>,
    gauge_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.config.workers)
            .field("policy", &self.policy_name)
            .finish()
    }
}

impl Runtime {
    /// Start a runtime with the default [`Fifo`] scheduling policy — one
    /// search at a time over the whole pool, exactly the PR 4 behaviour.
    pub fn new(config: RuntimeConfig) -> Self {
        Runtime::with_policy(config, Box::new(Fifo))
    }

    /// Start a runtime with an explicit scheduling policy (e.g.
    /// [`FairShare`](crate::schedule::FairShare) to multiplex concurrent
    /// searches over disjoint worker subsets).
    pub fn with_policy(config: RuntimeConfig, policy: Box<dyn SchedulePolicy>) -> Self {
        let pool = Arc::new(WorkerPool::new(config.workers.saturating_sub(1)));
        let capacity = config.workers.max(1);
        let (tx, rx) = bounded::<Control>(config.queue_capacity.max(1));
        let gauges = Arc::new(PoolGauges::default());
        let policy_name = policy.name();
        let trace = config
            .trace
            .then(|| Arc::new(TraceBuffer::new(TraceBuffer::DEFAULT_CAPACITY)));
        let tracer = trace
            .as_ref()
            .map(|buffer| Tracer::new(Arc::clone(buffer)))
            .unwrap_or_else(Tracer::off);
        let dispatcher_state = Dispatcher {
            rx,
            finished_tx: tx.clone(),
            policy,
            capacity,
            free_workers: capacity,
            free_slots: (0..pool.size()).collect(),
            pending: VecDeque::new(),
            active: 0,
            drivers: HashMap::new(),
            elastic: HashMap::new(),
            pool: Arc::clone(&pool),
            replan_period: config.replan_period,
            gauges: Arc::clone(&gauges),
            draining: None,
            tracer: tracer.clone(),
        };
        let dispatcher = std::thread::Builder::new()
            .name("yewpar-dispatch".into())
            .spawn(move || dispatcher_state.run())
            .expect("spawn runtime dispatcher");
        let (gauge_stop, gauge_thread) = match (trace.is_some(), config.gauge_period) {
            (true, Some(period)) => {
                let stop = Arc::new(AtomicBool::new(false));
                let thread_stop = Arc::clone(&stop);
                let thread_gauges = Arc::clone(&gauges);
                let handle = std::thread::Builder::new()
                    .name("yewpar-gauges".into())
                    .spawn(move || gauge_sampler(thread_stop, thread_gauges, tracer, period))
                    .expect("spawn gauge sampler");
                (Some(stop), Some(handle))
            }
            _ => (None, None),
        };
        Runtime {
            control: Some(tx),
            dispatcher: Some(dispatcher),
            pool,
            config,
            root: CancelToken::new(),
            gauges,
            next_search_id: AtomicU64::new(1),
            policy_name,
            trace,
            gauge_stop,
            gauge_thread,
        }
    }

    /// The effective configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The active scheduling policy's name (`"fifo"`, `"fair-share"`, …).
    pub fn policy_name(&self) -> &'static str {
        self.policy_name
    }

    /// A snapshot of the pool-wide scheduler gauges: active searches,
    /// granted workers, queue depth, peak concurrency and cumulative
    /// queue-wait.
    pub fn stats(&self) -> RuntimeStats {
        self.gauges.snapshot()
    }

    /// Drain the runtime-wide flight recorder: every event recorded since
    /// the last drain, merged across workers and sorted by timestamp.
    /// Empty unless [`RuntimeConfig::trace`] is on.  Events from searches
    /// running concurrently interleave on shared worker ids; the
    /// dispatcher's `search_queued`/`search_granted`/`search_finished`
    /// events carry the `search_id` needed to segment the timeline.
    pub fn drain_trace(&self) -> Vec<TraceRecord> {
        self.trace
            .as_ref()
            .map(|buffer| buffer.drain())
            .unwrap_or_default()
    }

    /// Total records dropped by the flight recorder's bounded rings since
    /// the runtime started (never reset by draining; 0 with tracing off).
    pub fn trace_dropped(&self) -> u64 {
        self.trace
            .as_ref()
            .map(|buffer| buffer.dropped())
            .unwrap_or(0)
    }

    /// Open a [`Session`]: a cancellation scope grouping any number of
    /// subsequent submissions.  Cancelling the session — or just dropping
    /// it — cancels every search submitted through it; the session also
    /// aggregates its searches' terminal [`SearchStatus`]es.
    pub fn session(&self) -> Session<'_> {
        Session {
            runtime: self,
            scope: self.root.child(),
            state: Arc::new(SessionState::default()),
            quota: None,
            armed: true,
        }
    }

    /// Submit an enumeration search; returns immediately with a handle.
    pub fn enumerate<P>(
        &self,
        problem: P,
        config: &SearchConfig,
    ) -> SearchHandle<EnumOutcome<P::Value>>
    where
        P: Enumerate + Send + Sync + 'static,
        P::Value: Send + 'static,
    {
        self.submit_scoped(
            &self.root,
            None,
            None,
            problem,
            config,
            |skeleton, problem| skeleton.enumerate(problem),
            |outcome| outcome.status,
        )
    }

    /// Submit an optimisation search; returns immediately with a handle.
    /// On cancel or deadline the outcome carries the partial incumbent.
    pub fn maximise<P>(
        &self,
        problem: P,
        config: &SearchConfig,
    ) -> SearchHandle<OptimOutcome<P::Node, P::Score>>
    where
        P: Optimise + Send + Sync + 'static,
        P::Node: 'static,
    {
        self.submit_scoped(
            &self.root,
            None,
            None,
            problem,
            config,
            |skeleton, problem| skeleton.maximise(problem),
            |outcome| outcome.status,
        )
    }

    /// Submit a decision search; returns immediately with a handle.
    pub fn decide<P>(
        &self,
        problem: P,
        config: &SearchConfig,
    ) -> SearchHandle<DecideOutcome<P::Node>>
    where
        P: Decide + Send + Sync + 'static,
        P::Node: 'static,
    {
        self.submit_scoped(
            &self.root,
            None,
            None,
            problem,
            config,
            |skeleton, problem| skeleton.decide(problem),
            |outcome| outcome.status,
        )
    }

    /// The shared submission path: derive a leaf cancel token under
    /// `parent`, wrap the search into a grant-accepting job, and hand it to
    /// the dispatcher.  `status_of` lets the (type-erased) session
    /// aggregation read the outcome's terminal status.
    #[allow(clippy::too_many_arguments)]
    fn submit_scoped<P, T>(
        &self,
        parent: &CancelToken,
        session: Option<Arc<SessionState>>,
        quota: Option<Arc<SessionQuota>>,
        problem: P,
        config: &SearchConfig,
        run: impl FnOnce(&Skeleton, &P) -> T + Send + 'static,
        status_of: fn(&T) -> SearchStatus,
    ) -> SearchHandle<T>
    where
        P: Send + Sync + 'static,
        T: Send + 'static,
    {
        // ordering: unique-ID allocator — only the RMW's atomicity matters;
        // the id orders nothing and is published via the control channel.
        let search_id = self.next_search_id.fetch_add(1, Ordering::Relaxed);
        let cancel = parent.child();
        let (progress_tx, progress_rx) = progress_channel(self.config.progress_capacity);
        let shared: Arc<HandleState<T>> = Arc::new(HandleState::new());
        let probe_gauges = Arc::clone(&self.gauges);
        let mut skeleton = Skeleton::from_config(config.clone())
            .cancel_token(cancel.clone())
            .attach_progress(progress_tx)
            .attach_pool(Arc::clone(&self.pool))
            .attach_stats_probe(crate::lifecycle::StatsProbe(Arc::new(move || {
                probe_gauges.snapshot()
            })));
        if let Some(buffer) = &self.trace {
            // Runtime searches record into the runtime-wide buffer (one
            // timeline shared with the dispatcher events), overriding any
            // per-search buffer `SearchConfig::trace` would have created.
            skeleton = skeleton.attach_trace_buffer(Arc::clone(buffer));
        }
        if let Some(state) = &session {
            // ordering: advisory session tally; status() tolerates skew.
            state.submitted.fetch_add(1, Ordering::Relaxed);
        }
        // Count the submission as queued from the moment it is sent — not
        // from dispatcher receipt — so a backlog sitting in the control
        // channel while a FIFO job runs inline is visible in `stats()`,
        // matching the queue-wait semantics (channel time counts).
        // ordering: advisory telemetry gauge; snapshots tolerate skew.
        self.gauges.queued_searches.fetch_add(1, Ordering::Relaxed);
        let job_state = Arc::clone(&shared);
        let job: Job = Box::new(move |grant: ExecutionGrant| {
            let skeleton = skeleton.attach_grant(grant);
            let outcome = catch_unwind(AssertUnwindSafe(|| run(&skeleton, &problem)));
            if let Some(state) = &session {
                state.record(outcome.as_ref().map(status_of).ok());
            }
            job_state.complete(outcome);
        });
        let sent = self
            .control
            .as_ref()
            .expect("runtime is live until dropped")
            .send(Control::Submit(Submission {
                search_id,
                requested_workers: config.workers.max(1),
                priority: config.priority,
                deadline: config.deadline,
                quota,
                cancel: cancel.clone(),
                submitted_at: Instant::now(),
                job,
            }));
        assert!(sent.is_ok(), "dispatcher outlives the runtime handle");
        SearchHandle {
            id: search_id,
            state: shared,
            progress: progress_rx,
            cancel,
        }
    }

    /// Shut the runtime down deterministically per `mode`:
    /// [`ShutdownMode::Graceful`] runs every queued search to completion
    /// first (what `Drop` does); [`ShutdownMode::Now`] cancels the root
    /// scope so running searches stop at their next poll and queued ones
    /// resolve [`SearchStatus::Cancelled`] at their pre-start poll — each
    /// queued job is still dispatched (skeleton setup plus one stop-flag
    /// check), but stops before any worker expands a node.  Either way
    /// every outstanding [`SearchHandle`] is resolved and every thread
    /// joined before this returns.
    pub fn shutdown(mut self, mode: ShutdownMode) {
        self.shutdown_inner(mode);
    }

    fn shutdown_inner(&mut self, mode: ShutdownMode) {
        let Some(control) = self.control.take() else {
            return; // Already shut down explicitly; Drop becomes a no-op.
        };
        if matches!(mode, ShutdownMode::Now) {
            // Root-scope cancel reaches running searches immediately (the
            // dispatcher may be busy running one inline) and pre-cancels
            // everything still queued.
            self.root.cancel();
        }
        let _ = control.send(Control::Shutdown(mode));
        drop(control);
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        if let Some(stop) = self.gauge_stop.take() {
            // ordering: shutdown flag guarding no data; the join below is
            // the synchronisation point with the sampler thread.
            stop.store(true, Ordering::Relaxed);
        }
        if let Some(sampler) = self.gauge_thread.take() {
            let _ = sampler.join();
        }
        // The pool joins its threads in its own drop.
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown_inner(ShutdownMode::Graceful);
    }
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// Per-session terminal-status counters (see [`Session::status`]).
#[derive(Debug, Default)]
struct SessionState {
    submitted: AtomicU64,
    complete: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
    panicked: AtomicU64,
}

impl SessionState {
    /// Record one search's terminal status (`None` = the search panicked).
    fn record(&self, status: Option<SearchStatus>) {
        let counter = match status {
            Some(SearchStatus::Complete) => &self.complete,
            Some(SearchStatus::Cancelled) => &self.cancelled,
            Some(SearchStatus::DeadlineExceeded) => &self.deadline_exceeded,
            None => &self.panicked,
        };
        // ordering: advisory session tally; status() tolerates skew.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SessionStatus {
        SessionStatus {
            // ordering: advisory counters — status() is documented as a
            // snapshot, not a live view; fields may be mutually skewed.
            submitted: self.submitted.load(Ordering::Relaxed),
            complete: self.complete.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            // ordering: as above — advisory snapshot read.
            panicked: self.panicked.load(Ordering::Relaxed),
            throttled: Duration::ZERO,
        }
    }
}

/// Aggregated terminal statuses of the searches submitted through one
/// [`Session`] — a snapshot, not a live view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStatus {
    /// Searches submitted through the session so far.
    pub submitted: u64,
    /// Searches that ran to their natural end.
    pub complete: u64,
    /// Searches stopped by a cancel (their own token, the session scope, or
    /// the runtime's root scope).
    pub cancelled: u64,
    /// Searches stopped by their deadline.
    pub deadline_exceeded: u64,
    /// Searches that panicked (the panic re-raises on their handle).
    pub panicked: u64,
    /// Total time the session's submissions spent *quota-held*: queued
    /// beyond what the scheduler alone would impose because the session was
    /// at its [`with_max_workers`](Session::with_max_workers) cap.  Always
    /// zero for uncapped sessions.
    pub throttled: Duration,
}

impl SessionStatus {
    /// Searches that have reached *any* terminal state.
    pub fn finished(&self) -> u64 {
        self.complete + self.cancelled + self.deadline_exceeded + self.panicked
    }

    /// Have all submitted searches finished?
    pub fn all_finished(&self) -> bool {
        self.finished() == self.submitted
    }

    /// The session's aggregate [`SearchStatus`], worst-first: `Cancelled`
    /// if any search was cancelled, else `DeadlineExceeded` if any timed
    /// out, else `Complete`.  `None` while no search has finished (or none
    /// was submitted).  Panicked searches are excluded — they re-raise on
    /// their handles.
    pub fn aggregate(&self) -> Option<SearchStatus> {
        if self.finished() == 0 {
            return None;
        }
        Some(if self.cancelled > 0 {
            SearchStatus::Cancelled
        } else if self.deadline_exceeded > 0 {
            SearchStatus::DeadlineExceeded
        } else {
            SearchStatus::Complete
        })
    }
}

/// A cancellation scope over a group of searches — the service-grade answer
/// to "cancel this user's whole session".
///
/// Created by [`Runtime::session`]; submissions made through the session
/// get cancel tokens that are **children** of the session scope, so
/// [`cancel`](Session::cancel) — or simply dropping the session — stops
/// every search submitted through it (running ones stop at their next poll
/// with `Cancelled` and keep their partial incumbents; queued ones resolve
/// at their pre-start poll, before any worker expands a node).  Cancelling
/// an individual handle never affects its
/// siblings.  Call [`detach`](Session::detach) to drop the scope *without*
/// cancelling.
pub struct Session<'rt> {
    runtime: &'rt Runtime,
    scope: CancelToken,
    state: Arc<SessionState>,
    /// Worker quota shared by every submission made through this session
    /// ([`Session::with_max_workers`]); `None` = uncapped.
    quota: Option<Arc<SessionQuota>>,
    /// Drop cancels the scope unless the session was detached.
    armed: bool,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("status", &self.status())
            .field("cancelled", &self.scope.is_cancelled())
            .finish()
    }
}

impl Session<'_> {
    /// Cap the session's total concurrently granted workers at `max`
    /// (floored at 1).  Submissions that would push the session past the
    /// cap are *queued*, never errored: the dispatcher holds them back —
    /// and caps what it shows the policy — until enough of the session's
    /// other searches finish or shrink, and reports the accumulated hold
    /// time as [`SessionStatus::throttled`].
    pub fn with_max_workers(mut self, max: usize) -> Self {
        self.quota = Some(Arc::new(SessionQuota {
            max_workers: max.max(1),
            ..SessionQuota::default()
        }));
        self
    }

    /// Submit an enumeration search under this session's scope.
    pub fn enumerate<P>(
        &self,
        problem: P,
        config: &SearchConfig,
    ) -> SearchHandle<EnumOutcome<P::Value>>
    where
        P: Enumerate + Send + Sync + 'static,
        P::Value: Send + 'static,
    {
        self.runtime.submit_scoped(
            &self.scope,
            Some(Arc::clone(&self.state)),
            self.quota.clone(),
            problem,
            config,
            |skeleton, problem| skeleton.enumerate(problem),
            |outcome| outcome.status,
        )
    }

    /// Submit an optimisation search under this session's scope.
    pub fn maximise<P>(
        &self,
        problem: P,
        config: &SearchConfig,
    ) -> SearchHandle<OptimOutcome<P::Node, P::Score>>
    where
        P: Optimise + Send + Sync + 'static,
        P::Node: 'static,
    {
        self.runtime.submit_scoped(
            &self.scope,
            Some(Arc::clone(&self.state)),
            self.quota.clone(),
            problem,
            config,
            |skeleton, problem| skeleton.maximise(problem),
            |outcome| outcome.status,
        )
    }

    /// Submit a decision search under this session's scope.
    pub fn decide<P>(
        &self,
        problem: P,
        config: &SearchConfig,
    ) -> SearchHandle<DecideOutcome<P::Node>>
    where
        P: Decide + Send + Sync + 'static,
        P::Node: 'static,
    {
        self.runtime.submit_scoped(
            &self.scope,
            Some(Arc::clone(&self.state)),
            self.quota.clone(),
            problem,
            config,
            |skeleton, problem| skeleton.decide(problem),
            |outcome| outcome.status,
        )
    }

    /// Cancel every search submitted through this session (idempotent;
    /// future submissions through the session are born cancelled).
    pub fn cancel(&self) {
        self.scope.cancel();
    }

    /// A clone of the session's scope token — e.g. for a watchdog that
    /// cancels the whole session on a timeout.
    pub fn cancel_token(&self) -> CancelToken {
        self.scope.clone()
    }

    /// Snapshot of the session's aggregated search statuses.
    pub fn status(&self) -> SessionStatus {
        let mut status = self.state.snapshot();
        if let Some(quota) = &self.quota {
            status.throttled = quota.throttled();
        }
        status
    }

    /// Consume the session *without* cancelling its searches: they keep
    /// running to their natural ends, detached from any scope but the
    /// runtime's root.
    pub fn detach(mut self) {
        self.armed = false;
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.scope.cancel();
        }
    }
}

// ---------------------------------------------------------------------------
// Search handles
// ---------------------------------------------------------------------------

/// Result slot shared between a runtime job and its [`SearchHandle`].
struct HandleState<T> {
    slot: Mutex<SlotState<T>>,
    ready: Condvar,
    finished: AtomicBool,
}

enum SlotState<T> {
    Pending,
    Done(T),
    /// The search panicked; the payload re-raises on `wait`/`try_result`.
    Panicked(Box<dyn std::any::Any + Send>),
    /// The result was already taken by `try_result`.
    Taken,
}

impl<T> HandleState<T> {
    fn new() -> Self {
        HandleState {
            slot: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
            finished: AtomicBool::new(false),
        }
    }

    fn complete(&self, outcome: Result<T, Box<dyn std::any::Any + Send>>) {
        let mut slot = self.slot.lock().expect("handle lock");
        *slot = match outcome {
            Ok(value) => SlotState::Done(value),
            Err(payload) => SlotState::Panicked(payload),
        };
        self.finished.store(true, Ordering::Release);
        self.ready.notify_all();
    }
}

/// A non-blocking handle to a search submitted to a [`Runtime`].
///
/// The handle is the search's *anytime* interface: poll it with
/// [`try_result`](SearchHandle::try_result) / [`is_finished`](SearchHandle::is_finished),
/// block on it with [`wait`](SearchHandle::wait), stop it from any thread
/// with [`cancel`](SearchHandle::cancel), and observe it mid-run through
/// [`progress`](SearchHandle::progress).  Dropping the handle detaches the
/// search (it keeps running to its natural end); cancel first if the work
/// is no longer wanted.
pub struct SearchHandle<T> {
    id: u64,
    state: Arc<HandleState<T>>,
    progress: ProgressStream,
    cancel: CancelToken,
}

impl<T> std::fmt::Debug for SearchHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchHandle")
            .field("id", &self.id)
            .field("finished", &self.is_finished())
            .field("cancelled", &self.cancel.is_cancelled())
            .finish()
    }
}

impl<T> SearchHandle<T> {
    /// The search's runtime-unique id (1-based), matching the
    /// [`Metrics::search_id`](crate::metrics::Metrics::search_id) on its
    /// outcome.
    pub fn id(&self) -> u64 {
        self.id
    }
    /// Block until the search finishes and return its outcome.  A panic
    /// inside the search is re-raised here.
    pub fn wait(self) -> T {
        let mut slot = self.state.slot.lock().expect("handle lock");
        loop {
            match std::mem::replace(&mut *slot, SlotState::Taken) {
                SlotState::Done(value) => return value,
                SlotState::Panicked(payload) => {
                    drop(slot);
                    resume_unwind(payload)
                }
                SlotState::Taken => unreachable!("wait consumes the handle"),
                SlotState::Pending => {
                    *slot = SlotState::Pending;
                    slot = self.state.ready.wait(slot).expect("handle wait");
                }
            }
        }
    }

    /// Take the outcome if the search has finished; `None` while it is
    /// still queued or running (and after the outcome was already taken).
    /// A panic inside the search is re-raised here.
    pub fn try_result(&mut self) -> Option<T> {
        if !self.is_finished() {
            return None;
        }
        let mut slot = self.state.slot.lock().expect("handle lock");
        match std::mem::replace(&mut *slot, SlotState::Taken) {
            SlotState::Done(value) => Some(value),
            SlotState::Panicked(payload) => {
                drop(slot);
                resume_unwind(payload)
            }
            SlotState::Pending | SlotState::Taken => None,
        }
    }

    /// Has the search finished (successfully or by panic)?  Queued and
    /// running searches answer `false`.
    pub fn is_finished(&self) -> bool {
        self.state.finished.load(Ordering::Acquire)
    }

    /// Cancel the search from any thread: it stops at its next per-step
    /// poll and resolves with [`SearchStatus::Cancelled`], carrying the
    /// partial incumbent found so far.  Idempotent; cancelling a queued
    /// search makes it resolve (almost) immediately when it reaches the
    /// front of the queue.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the search's cancel token, e.g. to hand to a watchdog.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The search's progress stream: incumbent improvements, node-count
    /// heartbeats and a final [`ProgressEvent::Finished`] marker.  Bounded
    /// and lossy — see [`ProgressEvent`](crate::lifecycle::ProgressEvent).
    ///
    /// [`ProgressEvent::Finished`]: crate::lifecycle::ProgressEvent::Finished
    pub fn progress(&self) -> &ProgressStream {
        &self.progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::ProgressEvent;
    use crate::monoid::Sum;
    use crate::node::SearchProblem;
    use crate::params::Coordination;
    use std::time::Duration;

    /// Deterministic irregular tree; node = (depth, seed).
    struct Irregular {
        depth: usize,
    }

    impl SearchProblem for Irregular {
        type Node = (usize, u64);
        type Gen<'a> = std::vec::IntoIter<(usize, u64)>;
        fn root(&self) -> (usize, u64) {
            (0, 1)
        }
        fn generator(&self, node: &(usize, u64)) -> Self::Gen<'_> {
            let (depth, seed) = *node;
            if depth >= self.depth {
                return vec![].into_iter();
            }
            let fanout = (seed % 4) as usize + 1;
            (0..fanout)
                .map(|i| {
                    (
                        depth + 1,
                        seed.wrapping_mul(6364136223846793005)
                            .wrapping_add(i as u64),
                    )
                })
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    impl Enumerate for Irregular {
        type Value = Sum<u64>;
        fn value(&self, _n: &(usize, u64)) -> Sum<u64> {
            Sum(1)
        }
    }

    impl Optimise for Irregular {
        type Score = u64;
        fn objective(&self, node: &(usize, u64)) -> u64 {
            node.1 % 1000
        }
    }

    impl Decide for Irregular {
        fn target(&self) -> u64 {
            990
        }
    }

    fn config(coordination: Coordination, workers: usize) -> SearchConfig {
        SearchConfig {
            coordination,
            workers,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn runtime_matches_the_blocking_facade() {
        let problem = Irregular { depth: 8 };
        let expected = crate::node::subtree_size(&problem, &problem.root());
        let runtime = Runtime::new(RuntimeConfig::default().workers(4));
        for coordination in [
            Coordination::Sequential,
            Coordination::depth_bounded(2),
            Coordination::stack_stealing(),
            Coordination::budget(50),
            Coordination::ordered(2),
        ] {
            let handle = runtime.enumerate(Irregular { depth: 8 }, &config(coordination, 4));
            let out = handle.wait();
            assert_eq!(out.value.0, expected, "{coordination}");
            assert!(out.status.is_complete());
            assert_eq!(out.metrics.outstanding_tasks, 0);
        }
    }

    #[test]
    fn submissions_queue_fifo_and_handles_poll() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let mut handles: Vec<SearchHandle<EnumOutcome<Sum<u64>>>> = (0..4)
            .map(|_| {
                runtime.enumerate(
                    Irregular { depth: 7 },
                    &config(Coordination::depth_bounded(2), 2),
                )
            })
            .collect();
        let expected = {
            let p = Irregular { depth: 7 };
            crate::node::subtree_size(&p, &p.root())
        };
        for handle in &mut handles {
            // Poll until done, then take the result exactly once.
            let out = loop {
                if let Some(out) = handle.try_result() {
                    break out;
                }
                std::thread::sleep(Duration::from_micros(200));
            };
            assert_eq!(out.value.0, expected);
            assert!(handle.is_finished());
            assert_eq!(handle.try_result().map(|_| ()), None, "result taken once");
        }
    }

    #[test]
    fn workers_park_between_jobs_instead_of_respawning() {
        // Not directly observable from the API, but the pool must at least
        // survive many back-to-back submissions without accumulating
        // threads or wedging.
        let runtime = Runtime::new(RuntimeConfig::default().workers(3));
        for _ in 0..20 {
            let out = runtime
                .enumerate(
                    Irregular { depth: 6 },
                    &config(Coordination::depth_bounded(2), 3),
                )
                .wait();
            assert!(out.status.is_complete());
        }
        assert_eq!(runtime.pool.size(), 2, "workers-1 persistent threads");
    }

    #[test]
    fn handle_reports_finished_event_on_progress_stream() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let mut handle = runtime.maximise(
            Irregular { depth: 8 },
            &config(Coordination::depth_bounded(2), 2),
        );
        // Consume the stream until the Finished marker (incumbent events
        // may precede it), then take the result.
        let mut events = Vec::new();
        loop {
            match handle.progress().next_timeout(Duration::from_secs(30)) {
                Some(event) => {
                    let finished = matches!(&event, ProgressEvent::Finished { .. });
                    events.push(event);
                    if finished {
                        break;
                    }
                }
                None => panic!("progress stream ended without a Finished event: {events:?}"),
            }
        }
        assert!(
            matches!(
                events.last(),
                Some(ProgressEvent::Finished { status }) if status.is_complete()
            ),
            "expected a complete Finished event, got {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ProgressEvent::Incumbent { .. })),
            "a maximise run must report incumbent improvements, got {events:?}"
        );
        // The Finished event is emitted before the job completes the
        // handle, so give the result a moment.
        let out = loop {
            if let Some(out) = handle.try_result() {
                break out;
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        assert!(out.status.is_complete());
        assert!(out.try_score().is_some());
    }

    #[test]
    fn search_panic_surfaces_on_wait_not_in_the_dispatcher() {
        struct Bomb;
        impl SearchProblem for Bomb {
            type Node = u32;
            type Gen<'a> = std::vec::IntoIter<u32>;
            fn root(&self) -> u32 {
                0
            }
            fn generator(&self, node: &u32) -> Self::Gen<'_> {
                if *node > 2 {
                    panic!("boom");
                }
                vec![node + 1].into_iter()
            }
        }
        impl Enumerate for Bomb {
            type Value = Sum<u64>;
            fn value(&self, _n: &u32) -> Sum<u64> {
                Sum(1)
            }
        }
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let handle = runtime.enumerate(Bomb, &config(Coordination::Sequential, 1));
        let panicked = catch_unwind(AssertUnwindSafe(|| handle.wait())).is_err();
        assert!(panicked, "the search panic must re-raise on wait");
        // The runtime survives and runs the next search.
        let out = runtime
            .enumerate(
                Irregular { depth: 6 },
                &config(Coordination::depth_bounded(1), 2),
            )
            .wait();
        assert!(out.status.is_complete());
    }

    #[test]
    fn oversubscribed_searches_complete_on_a_small_pool() {
        // 8 search workers on a runtime with 2 — surplus workers run after
        // earlier ones retire and find the search finished.
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let problem = Irregular { depth: 9 };
        let expected = crate::node::subtree_size(&problem, &problem.root());
        let out = runtime
            .enumerate(problem, &config(Coordination::depth_bounded(3), 8))
            .wait();
        assert_eq!(out.value.0, expected);
        assert_eq!(out.metrics.workers, 8);
    }

    /// Regression: an oversubscribed *Stack-Stealing* search on a small
    /// pool must not deadlock.  With one pool thread, workers 2..4 queue
    /// behind worker 1; a thief that delivered a steal request to such a
    /// never-registered victim would wait forever on a reply — the source
    /// now skips unregistered victims instead.
    #[test]
    fn oversubscribed_stack_stealing_does_not_deadlock_on_a_small_pool() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let problem = Irregular { depth: 9 };
        let expected = crate::node::subtree_size(&problem, &problem.root());
        let out = runtime
            .enumerate(problem, &config(Coordination::stack_stealing_chunked(), 4))
            .wait();
        assert_eq!(out.value.0, expected);
        assert_eq!(out.metrics.outstanding_tasks, 0);
    }

    /// Regression: a workers=1 runtime (zero pool threads — also the
    /// default on a single-core machine) asked to run a multi-worker
    /// search must fall back to scoped threads, not divide by zero in the
    /// pool's round-robin dispatch.
    #[test]
    fn single_worker_runtime_runs_multi_worker_searches() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(1));
        let problem = Irregular { depth: 8 };
        let expected = crate::node::subtree_size(&problem, &problem.root());
        for coordination in [
            Coordination::depth_bounded(2),
            Coordination::stack_stealing(),
            Coordination::ordered(2),
        ] {
            let out = runtime
                .enumerate(Irregular { depth: 8 }, &config(coordination, 4))
                .wait();
            assert_eq!(out.value.0, expected, "{coordination}");
            assert!(out.status.is_complete());
        }
    }

    /// An effectively unbounded tree: only cancellation or a deadline can
    /// end a search over it.
    struct Endless;

    impl SearchProblem for Endless {
        type Node = (u32, u64);
        type Gen<'a> = std::vec::IntoIter<(u32, u64)>;
        fn root(&self) -> (u32, u64) {
            (0, 1)
        }
        fn generator(&self, node: &(u32, u64)) -> Self::Gen<'_> {
            let (depth, seed) = *node;
            if depth >= 64 {
                return vec![].into_iter();
            }
            let fanout = (seed % 4) as usize + 1;
            (0..fanout)
                .map(|i| {
                    (
                        depth + 1,
                        seed.wrapping_mul(6364136223846793005)
                            .wrapping_add(i as u64),
                    )
                })
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    impl Optimise for Endless {
        type Score = u64;
        fn objective(&self, node: &(u32, u64)) -> u64 {
            node.1 % 1000
        }
    }

    #[test]
    fn fair_share_grants_disjoint_worker_subsets() {
        use crate::schedule::FairShare;
        let problem = Irregular { depth: 9 };
        let expected = crate::node::subtree_size(&problem, &problem.root());
        let runtime =
            Runtime::with_policy(RuntimeConfig::default().workers(8), Box::new(FairShare));
        assert_eq!(runtime.policy_name(), "fair-share");
        let cfg = config(Coordination::depth_bounded(2), 4);
        let handles: Vec<_> = (0..2)
            .map(|_| runtime.enumerate(Irregular { depth: 9 }, &cfg))
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
        for out in &outcomes {
            assert_eq!(out.value.0, expected);
            assert!(out.status.is_complete());
            assert_eq!(out.metrics.outstanding_tasks, 0);
            assert_eq!(
                out.metrics.granted_workers, 4,
                "a 4-worker request on an 8-worker pool is granted in full"
            );
            assert_eq!(out.metrics.workers, 4, "the engine ran the granted count");
            assert_eq!(out.metrics.granted_slots.len(), 3, "worker 0 is the driver");
        }
        assert_ne!(outcomes[0].metrics.search_id, outcomes[1].metrics.search_id);
        assert!(
            outcomes[0]
                .metrics
                .granted_slots
                .iter()
                .all(|s| !outcomes[1].metrics.granted_slots.contains(s)),
            "concurrent grants must lease disjoint pool threads: {:?} vs {:?}",
            outcomes[0].metrics.granted_slots,
            outcomes[1].metrics.granted_slots
        );
        // The dispatcher reclaims a lease *after* the handle resolves, so
        // give the gauges a moment to catch up.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let stats = loop {
            let stats = runtime.stats();
            if stats.completed_searches == 2 || std::time::Instant::now() > deadline {
                break stats;
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        assert_eq!(stats.completed_searches, 2);
        assert_eq!(stats.active_searches, 0);
        assert_eq!(stats.granted_workers, 0, "all leases reclaimed");
    }

    #[test]
    fn fifo_queue_wait_is_recorded_at_grant_time() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let mut first_cfg = config(Coordination::depth_bounded(2), 2);
        first_cfg.deadline = Some(Duration::from_millis(50));
        let first = runtime.maximise(Endless, &first_cfg);
        let second =
            runtime.enumerate(Irregular { depth: 6 }, &config(Coordination::Sequential, 1));
        let first_out = first.wait();
        let second_out = second.wait();
        assert_eq!(
            first_out.status,
            crate::lifecycle::SearchStatus::DeadlineExceeded
        );
        // The second search was submitted before the first (50 ms) finished,
        // so its recorded queue wait must cover most of that run.
        assert!(
            second_out.metrics.queue_wait >= Duration::from_millis(30),
            "queue wait {:?} must include the predecessor's run",
            second_out.metrics.queue_wait
        );
        assert!(
            first_out.metrics.queue_wait < second_out.metrics.queue_wait,
            "the head of the queue waits less than its successor"
        );
        assert!(runtime.stats().total_queue_wait >= Duration::from_millis(30));
    }

    #[test]
    fn shutdown_now_resolves_queued_handles_as_cancelled() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let cfg = config(Coordination::depth_bounded(3), 2);
        // One endless search runs; three more queue behind it.  Without the
        // root-scope cancel this would hang forever.
        let handles: Vec<_> = (0..4).map(|_| runtime.maximise(Endless, &cfg)).collect();
        std::thread::sleep(Duration::from_millis(10));
        runtime.shutdown(ShutdownMode::Now);
        for (i, handle) in handles.into_iter().enumerate() {
            assert!(handle.is_finished(), "search {i} left unresolved");
            let out = handle.wait();
            assert_eq!(
                out.status,
                crate::lifecycle::SearchStatus::Cancelled,
                "search {i}"
            );
            assert_eq!(out.metrics.outstanding_tasks, 0, "search {i}");
        }
    }

    #[test]
    fn shutdown_graceful_runs_every_queued_search() {
        let problem = Irregular { depth: 7 };
        let expected = crate::node::subtree_size(&problem, &problem.root());
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let cfg = config(Coordination::depth_bounded(2), 2);
        let handles: Vec<_> = (0..3)
            .map(|_| runtime.enumerate(Irregular { depth: 7 }, &cfg))
            .collect();
        runtime.shutdown(ShutdownMode::Graceful);
        for handle in handles {
            let out = handle.wait();
            assert!(out.status.is_complete());
            assert_eq!(out.value.0, expected);
        }
    }

    #[test]
    fn session_cancel_stops_every_child_search() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(4));
        let session = runtime.session();
        let cfg = config(Coordination::depth_bounded(3), 4);
        let a = session.maximise(Endless, &cfg);
        let b = session.maximise(Endless, &cfg);
        std::thread::sleep(Duration::from_millis(5));
        session.cancel();
        let out_a = a.wait();
        let out_b = b.wait();
        assert_eq!(out_a.status, crate::lifecycle::SearchStatus::Cancelled);
        assert_eq!(out_b.status, crate::lifecycle::SearchStatus::Cancelled);
        assert_eq!(out_a.metrics.outstanding_tasks, 0);
        assert_eq!(out_b.metrics.outstanding_tasks, 0);
        let status = session.status();
        assert_eq!(status.submitted, 2);
        assert_eq!(status.cancelled, 2);
        assert!(status.all_finished());
        assert_eq!(
            status.aggregate(),
            Some(crate::lifecycle::SearchStatus::Cancelled)
        );
    }

    #[test]
    fn dropping_a_session_cancels_its_children_but_not_siblings() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(4));
        let cfg = config(Coordination::depth_bounded(3), 4);
        let doomed = {
            let session = runtime.session();
            session.maximise(Endless, &cfg)
            // Dropping the scope here cancels the still-queued/running child.
        };
        let out = doomed.wait();
        assert_eq!(out.status, crate::lifecycle::SearchStatus::Cancelled);
        // A search submitted outside the dropped session is unaffected.
        let p = Irregular { depth: 7 };
        let expected = crate::node::subtree_size(&p, &p.root());
        let out = runtime
            .enumerate(
                Irregular { depth: 7 },
                &config(Coordination::depth_bounded(2), 2),
            )
            .wait();
        assert!(out.status.is_complete());
        assert_eq!(out.value.0, expected);
    }

    #[test]
    fn detached_sessions_let_children_finish() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let p = Irregular { depth: 7 };
        let expected = crate::node::subtree_size(&p, &p.root());
        let handle = {
            let session = runtime.session();
            let handle = session.enumerate(
                Irregular { depth: 7 },
                &config(Coordination::depth_bounded(2), 2),
            );
            session.detach();
            handle
        };
        let out = handle.wait();
        assert!(
            out.status.is_complete(),
            "a detached session must not cancel"
        );
        assert_eq!(out.value.0, expected);
    }

    /// End-to-end elastic lease lifecycle under FairShare: a lone search is
    /// grown into the idle capacity; a newcomer forces the over-grant back
    /// through cooperative revocation; both searches resolve cleanly and the
    /// renegotiations surface on the stats and the outcome metrics.
    #[test]
    fn elastic_lease_grows_into_idle_capacity_and_shrinks_for_newcomers() {
        use crate::schedule::FairShare;
        let runtime = Runtime::with_policy(
            RuntimeConfig::default()
                .workers(8)
                .replan_period(Duration::from_millis(1)),
            Box::new(FairShare),
        );
        let mut bg_cfg = config(Coordination::depth_bounded(3), 2);
        bg_cfg.deadline = Some(Duration::from_millis(400));
        let background = runtime.maximise(Endless, &bg_cfg);
        // Wait for the replanner to lease idle workers onto the lone search.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while runtime.stats().grant_changes == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            runtime.stats().grant_changes > 0,
            "idle-time growth never fired"
        );
        // A newcomer can only be admitted by revoking the over-grant.
        let p = Irregular { depth: 7 };
        let expected = crate::node::subtree_size(&p, &p.root());
        let out = runtime
            .enumerate(
                Irregular { depth: 7 },
                &config(Coordination::depth_bounded(2), 2),
            )
            .wait();
        assert_eq!(out.value.0, expected);
        assert!(out.status.is_complete());
        assert_eq!(out.metrics.outstanding_tasks, 0);
        let bg = background.wait();
        assert_eq!(
            bg.status,
            crate::lifecycle::SearchStatus::DeadlineExceeded,
            "the background search runs to its deadline"
        );
        assert!(
            bg.metrics.grant_changes >= 1,
            "the background lease must have been renegotiated"
        );
        assert_eq!(bg.metrics.outstanding_tasks, 0);
        let stats = runtime.stats();
        assert!(
            stats.workers_preempted >= 1,
            "admitting the newcomer must have revoked at least one worker"
        );
        assert!(stats.revocation_latency > Duration::ZERO);
        assert!(stats.grant_changes >= 2, "at least one grow and one shrink");
    }

    /// Session quota: an over-quota submission queues (never errors) until
    /// the session's running searches return workers, and the hold time is
    /// reported as throttled time on the session status.
    #[test]
    fn session_quota_queues_over_quota_submissions_and_reports_throttled_time() {
        use crate::schedule::FairShare;
        let runtime = Runtime::with_policy(
            RuntimeConfig::default()
                .workers(4)
                .replan_period(Duration::from_millis(1)),
            Box::new(FairShare),
        );
        let session = runtime.session().with_max_workers(2);
        let mut first_cfg = config(Coordination::depth_bounded(3), 2);
        first_cfg.deadline = Some(Duration::from_millis(60));
        let first = session.maximise(Endless, &first_cfg);
        // Submitted while the first search holds the whole session quota —
        // two free pool workers exist, but the session may not use them.
        let p = Irregular { depth: 7 };
        let expected = crate::node::subtree_size(&p, &p.root());
        let second = session.enumerate(
            Irregular { depth: 7 },
            &config(Coordination::depth_bounded(2), 2),
        );
        let first_out = first.wait();
        assert_eq!(
            first_out.status,
            crate::lifecycle::SearchStatus::DeadlineExceeded
        );
        let second_out = second.wait();
        assert!(second_out.status.is_complete());
        assert_eq!(second_out.value.0, expected);
        assert!(
            second_out.metrics.queue_wait >= Duration::from_millis(20),
            "the second search must wait out the quota, waited {:?}",
            second_out.metrics.queue_wait
        );
        let status = session.status();
        assert!(
            status.throttled > Duration::ZERO,
            "the hold must be reported as session throttled time"
        );
        assert_eq!(status.submitted, 2);
    }

    /// A scripted policy that preempts whatever has run for a while: the
    /// victim resolves `Cancelled` with its partial incumbent and clean
    /// outstanding-task accounting, and the runtime survives.
    #[test]
    fn preempted_search_resolves_cancelled_with_partial_incumbent() {
        use crate::schedule::{
            Adjustment, Admission, PendingRequest, RunningSearch, SchedulePolicy,
        };
        struct PreemptEverything;
        impl SchedulePolicy for PreemptEverything {
            fn name(&self) -> &'static str {
                "preempt-everything"
            }
            fn concurrent(&self) -> bool {
                true
            }
            fn plan(
                &mut self,
                pending: &[PendingRequest],
                free_workers: usize,
                _capacity: usize,
                _active: usize,
            ) -> Vec<Admission> {
                let mut free = free_workers;
                let mut admissions = Vec::new();
                for (index, request) in pending.iter().enumerate() {
                    if free == 0 {
                        break;
                    }
                    let workers = request.requested_workers.clamp(1, free);
                    free -= workers;
                    admissions.push(Admission { index, workers });
                }
                admissions
            }
            fn replan(
                &mut self,
                running: &[RunningSearch],
                _pending: &[PendingRequest],
                _free_workers: usize,
                _capacity: usize,
            ) -> Vec<Adjustment> {
                running
                    .iter()
                    // Let the search run long enough to establish an
                    // incumbent before the axe falls.
                    .filter(|s| !s.preempted && s.running_for >= Duration::from_millis(20))
                    .map(|s| Adjustment::Preempt {
                        search: s.search_id,
                    })
                    .collect()
            }
        }
        let runtime = Runtime::with_policy(
            RuntimeConfig::default()
                .workers(4)
                .replan_period(Duration::from_millis(2)),
            Box::new(PreemptEverything),
        );
        let out = runtime
            .maximise(Endless, &config(Coordination::depth_bounded(3), 4))
            .wait();
        assert_eq!(out.status, crate::lifecycle::SearchStatus::Cancelled);
        assert!(
            out.try_score().is_some(),
            "a preempted optimisation keeps its partial incumbent"
        );
        assert_eq!(out.metrics.outstanding_tasks, 0);
    }

    #[test]
    fn handle_ids_match_outcome_metrics() {
        let runtime = Runtime::new(RuntimeConfig::default().workers(2));
        let handle = runtime.enumerate(
            Irregular { depth: 6 },
            &config(Coordination::depth_bounded(2), 2),
        );
        let id = handle.id();
        assert!(id >= 1);
        let out = handle.wait();
        assert_eq!(out.metrics.search_id, id);
        assert_eq!(
            out.metrics.granted_workers, 2,
            "the grant (not the facade default) must be stamped onto metrics"
        );
        assert!(
            !out.metrics.granted_slots.is_empty(),
            "a 2-worker runtime grant leases at least one pool slot"
        );
    }
}
