//! Commutative monoids used by enumeration searches (paper Section 3.2).
//!
//! The formal model characterises every search type by a commutative monoid
//! `⟨M, +, 0⟩` into which the search tree is folded.  Enumeration searches
//! sum the objective value of every node; optimisation and decision searches
//! use a max-monoid induced by a total order (handled separately through
//! [`crate::Optimise`]).  This module provides the [`Monoid`] trait together
//! with the stock instances used by the applications in `yewpar-apps`.

/// A commutative monoid: an associative, commutative [`combine`](Monoid::combine)
/// with an [`empty`](Monoid::empty) identity element.
///
/// Laws (checked by property tests below and relied upon by the parallel
/// skeletons, which fold per-worker partial results in arbitrary order):
///
/// * `combine(a, empty()) == a`
/// * `combine(a, b) == combine(b, a)`
/// * `combine(a, combine(b, c)) == combine(combine(a, b), c)`
pub trait Monoid: Clone + Send + 'static {
    /// The identity element (the paper's `0`).
    fn empty() -> Self;
    /// The monoid operation (the paper's `+`).  Must be commutative and
    /// associative.
    fn combine(self, other: Self) -> Self;
}

/// Numeric types that can act as counters inside [`Sum`] and [`Max`].
pub trait Numeric: Copy + Send + PartialOrd + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Addition.
    fn add(self, other: Self) -> Self;
}

macro_rules! impl_numeric {
    ($($t:ty),*) => {
        $(impl Numeric for $t {
            fn zero() -> Self { 0 as $t }
            fn add(self, other: Self) -> Self { self + other }
        })*
    };
}

impl_numeric!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Sum monoid over a numeric type, e.g. counting search-tree nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Sum<T>(pub T);

impl<T: Numeric> Monoid for Sum<T> {
    fn empty() -> Self {
        Sum(T::zero())
    }
    fn combine(self, other: Self) -> Self {
        Sum(self.0.add(other.0))
    }
}

/// Max monoid over an ordered numeric type (identity is `0`, matching the
/// paper's requirement that the induced order has least element `0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Max<T>(pub T);

impl<T: Numeric> Monoid for Max<T> {
    fn empty() -> Self {
        Max(T::zero())
    }
    fn combine(self, other: Self) -> Self {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

/// Histogram monoid: counts nodes per depth.  Used by the enumeration
/// applications that report per-depth counts (e.g. Numerical Semigroups
/// counts semigroups of every genus up to the target genus).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DepthHistogram {
    counts: Vec<u64>,
}

impl DepthHistogram {
    /// A histogram with a single observation at `depth`.
    pub fn singleton(depth: usize) -> Self {
        let mut counts = vec![0; depth + 1];
        counts[depth] = 1;
        DepthHistogram { counts }
    }

    /// Number of observations at `depth` (0 if never observed).
    pub fn count_at(&self, depth: usize) -> u64 {
        self.counts.get(depth).copied().unwrap_or(0)
    }

    /// Total number of observations across all depths.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The deepest observed depth, if any observation exists.
    pub fn max_depth(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Per-depth counts as a slice (index = depth).
    pub fn as_slice(&self) -> &[u64] {
        &self.counts
    }
}

impl Monoid for DepthHistogram {
    fn empty() -> Self {
        DepthHistogram { counts: Vec::new() }
    }
    fn combine(mut self, other: Self) -> Self {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, c) in other.counts.into_iter().enumerate() {
            self.counts[i] += c;
        }
        self
    }
}

/// Product of two monoids, combined component-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: Monoid, B: Monoid> Monoid for Pair<A, B> {
    fn empty() -> Self {
        Pair(A::empty(), B::empty())
    }
    fn combine(self, other: Self) -> Self {
        Pair(self.0.combine(other.0), self.1.combine(other.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sum_counts() {
        let xs = [Sum(1u64), Sum(2), Sum(3)];
        let total = xs.iter().fold(Sum::empty(), |acc, x| acc.combine(*x));
        assert_eq!(total, Sum(6));
    }

    #[test]
    fn max_identity_is_zero() {
        assert_eq!(Max::<u32>::empty().combine(Max(5)), Max(5));
        assert_eq!(Max(7u32).combine(Max::empty()), Max(7));
    }

    #[test]
    fn histogram_singleton_and_combine() {
        let h = DepthHistogram::singleton(3).combine(DepthHistogram::singleton(1));
        assert_eq!(h.count_at(3), 1);
        assert_eq!(h.count_at(1), 1);
        assert_eq!(h.count_at(0), 0);
        assert_eq!(h.total(), 2);
        assert_eq!(h.max_depth(), Some(3));
    }

    #[test]
    fn histogram_empty_has_no_max_depth() {
        assert_eq!(DepthHistogram::empty().max_depth(), None);
        assert_eq!(DepthHistogram::empty().total(), 0);
    }

    #[test]
    fn pair_combines_componentwise() {
        let p = Pair(Sum(2u64), Max(3u32)).combine(Pair(Sum(5), Max(1)));
        assert_eq!(p, Pair(Sum(7), Max(3)));
    }

    proptest! {
        #[test]
        fn sum_is_commutative_monoid(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
            let (a, b, c) = (Sum(a), Sum(b), Sum(c));
            prop_assert_eq!(a.combine(Sum::empty()), a);
            prop_assert_eq!(a.combine(b), b.combine(a));
            prop_assert_eq!(a.combine(b).combine(c), a.combine(b.combine(c)));
        }

        #[test]
        fn max_is_commutative_monoid(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
            let (a, b, c) = (Max(a), Max(b), Max(c));
            prop_assert_eq!(a.combine(Max::empty()), a);
            prop_assert_eq!(a.combine(b), b.combine(a));
            prop_assert_eq!(a.combine(b).combine(c), a.combine(b.combine(c)));
        }

        #[test]
        fn histogram_is_commutative_monoid(
            xs in proptest::collection::vec(0usize..12, 0..8),
            ys in proptest::collection::vec(0usize..12, 0..8),
        ) {
            let build = |ds: &[usize]| ds.iter().fold(DepthHistogram::empty(), |acc, &d| acc.combine(DepthHistogram::singleton(d)));
            let a = build(&xs);
            let b = build(&ys);
            prop_assert_eq!(a.clone().combine(b.clone()).total(), (xs.len() + ys.len()) as u64);
            prop_assert_eq!(a.clone().combine(b.clone()), b.combine(a));
        }
    }
}
