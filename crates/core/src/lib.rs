//! # YewPar in Rust — algorithmic skeletons for exact combinatorial search
//!
//! This crate is a from-scratch Rust reproduction of the search-skeleton
//! library described in *"YewPar: Skeletons for Exact Combinatorial Search"*
//! (Archibald, Maier, Stewart, Trinder — PPoPP 2020).
//!
//! A search application is composed from two parts (paper Fig. 3):
//!
//! 1. a **Lazy Node Generator** — how the application's search tree is
//!    generated on demand and in which (heuristic) order children are
//!    visited.  In this crate that is the [`SearchProblem`] trait, together
//!    with one of the search-type traits [`Enumerate`], [`Optimise`] or
//!    [`Decide`];
//! 2. a **search skeleton** — a search *coordination* (how the tree is split
//!    into parallel tasks: [`Coordination::Sequential`],
//!    [`Coordination::DepthBounded`], [`Coordination::StackStealing`],
//!    [`Coordination::Budget`], [`Coordination::Ordered`]) combined with a
//!    search *type* (enumeration, decision, optimisation).  The 5 × 3 = 15
//!    combinations are exposed through the [`Skeleton`] entry point.
//!
//! ```
//! use yewpar::{Coordination, Skeleton, SearchProblem, Enumerate, monoid::Sum};
//!
//! /// Count the nodes of a complete binary tree of a given depth.
//! struct BinTree { depth: usize }
//!
//! impl SearchProblem for BinTree {
//!     type Node = usize; // a node is just its depth
//!     type Gen<'a> = std::vec::IntoIter<usize>;
//!     fn root(&self) -> usize { 0 }
//!     fn generator(&self, node: &usize) -> Self::Gen<'_> {
//!         if *node < self.depth { vec![node + 1, node + 1].into_iter() } else { vec![].into_iter() }
//!     }
//! }
//!
//! impl Enumerate for BinTree {
//!     type Value = Sum<u64>;
//!     fn value(&self, _node: &usize) -> Sum<u64> { Sum(1) }
//! }
//!
//! let out = Skeleton::new(Coordination::depth_bounded(2)).workers(2).enumerate(&BinTree { depth: 10 });
//! assert_eq!(out.value.0, 2u64.pow(11) - 1);
//! ```
//!
//! The crate deliberately does **not** use a generic deque-based
//! work-stealing runtime (such as rayon) for the parallel coordinations: as
//! the paper discusses, LIFO deque stealing destroys the heuristic search
//! order that exact search depends on.  Instead all five coordinations run
//! on one unified worker [`engine`], parameterised by a work source and a
//! spawn policy: the bespoke order-preserving sharded depth pool
//! ([`workpool`]) for the Depth-Bounded and Budget coordinations, explicit
//! steal-request channels for Stack-Stealing, and the sequence-keyed global
//! [`workpool::OrderedPool`] for the replicable Ordered coordination.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitset;
pub mod engine;
pub mod error;
pub mod genstack;
pub mod knowledge;
pub mod lifecycle;
pub mod metrics;
pub mod monoid;
pub mod node;
pub mod objective;
pub mod params;
pub mod runtime;
pub mod schedule;
pub mod skeleton;
pub mod sync;
pub mod termination;
pub mod trace;
pub mod workpool;

pub use error::{Error, Result};
pub use lifecycle::{CancelToken, ProgressEvent, ProgressStream, SearchStatus};
pub use metrics::{Metrics, RuntimeStats};
pub use monoid::Monoid;
pub use node::SearchProblem;
pub use objective::{Decide, Enumerate, Optimise, PruneLevel};
pub use params::{Coordination, SearchConfig};
pub use runtime::{Runtime, RuntimeConfig, SearchHandle, Session, SessionStatus, ShutdownMode};
pub use schedule::{DeadlineShare, FairShare, Fifo, Priority, SchedulePolicy};
pub use skeleton::{DecideOutcome, EnumOutcome, OptimOutcome, Skeleton};
pub use trace::{TraceBuffer, TraceEvent, TraceRecord, Tracer};
