//! Order-preserving workpools.
//!
//! Generic deque-based work stealing visits tasks in LIFO order on the owner
//! and steals FIFO from the other end, which destroys the heuristic ordering
//! that search applications depend on (paper §2.3).  YewPar instead uses a
//! bespoke *order-preserving* workpool (§4.3): tasks are prioritised by the
//! depth at which they were generated — shallower subtrees are expected to be
//! larger and are handed out first — and within a depth tasks are served in
//! FIFO order, i.e. exactly the heuristic order in which the lazy node
//! generator produced them.
//!
//! [`DepthPool`] implements that policy behind a mutex.  The discrete-event
//! simulator (`yewpar-sim`) instantiates one pool per simulated locality.
//!
//! A single shared pool serialises every push and pop on one lock, which
//! becomes the bottleneck of the Depth-Bounded and Budget coordinations as
//! workers scale.  [`ShardedPool`] therefore gives each worker its own
//! [`DepthPool`] shard: owners push and pop locally without contention, and
//! idle workers *steal* by scanning the other shards and taking from the one
//! whose shallowest task is globally shallowest — preserving the
//! shallowest-first heuristic across shards while eliminating the global
//! lock from the hot path.
//!
//! # Batched operations
//!
//! The engine's spawn loop produces tasks in generator *bursts* (all children
//! of one node), and paying one lock acquisition per task made the lock the
//! dominant cost of fine-grained trees.  Three batched paths amortise it:
//!
//! * [`DepthPool::push_batch`] / [`ShardedPool::push_batch`] drain a whole
//!   burst under one lock (the caller's buffer keeps its capacity, so a
//!   worker reuses one allocation for every burst it ever spawns);
//! * [`DepthPool::pop_batch`] / [`ShardedPool::pop_batch_local`] move up to
//!   [`POP_BATCH`] tasks into the caller's private buffer under one lock;
//! * [`ShardedPool::steal_batch`] takes up to [`STEAL_BATCH`] tasks from the
//!   best victim in one lock acquisition.
//!
//! Batch sizes are deliberately small: tasks sitting in a worker's private
//! buffer are invisible to thieves, so the buffer holds only what its owner
//! will imminently run.
//!
//! Every shard additionally publishes its shallowest depth in an atomic
//! *hint*, refreshed under the shard lock on every mutation.  The steal path
//! reads the hints instead of locking each shard for `min_depth`, so empty
//! shards cost one relaxed load instead of a lock acquisition — with 64
//! shards and one victim, a steal is two lock acquisitions (the victim's pop
//! plus at most one fall-through probe), not 64.
//!
//! # The locality layer
//!
//! When shards are grouped into *localities*
//! ([`ShardedPool::with_localities`]), the pool additionally maintains
//! [`LocalityGauges`]: cache-padded per-locality aggregates (queued-task
//! estimate + idle-worker count) updated with relaxed operations at the
//! existing push/pop/steal sites.  Per-worker depth *hints* must never be
//! shared across localities — PR 6 showed hint-directed remote stealing
//! strip-mines the first busy frontier — but per-locality *aggregates*
//! carry no placement information, so thieves may legitimately route on
//! them: pick the least-loaded-but-nonempty remote locality, then a
//! blind-random victim within it.  The gauges follow an
//! increment-before-insert / decrement-after-remove protocol, making every
//! reading an over-approximation of true occupancy (exact at quiescence):
//! a zero gauge *proves* the locality is drained, so the steal scan skips
//! all of its shards without reading a hint or taking a lock.
//!
//! [`Mailbox`] is the push half of the locality layer: a bounded task
//! hand-off (single mutex + occupancy flag) that a worker observing a
//! starved remote locality fills with a burst of its own tasks, and that
//! the locality's workers drain *before* scanning for steals.  The
//! occupancy flag makes an empty mailbox cost one atomic load per scan.

pub mod arena;
pub mod ordered;

pub use arena::KeyArena;
pub use ordered::{OrderedPool, SeqKey};

use crate::sync::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeMap, VecDeque};

/// How many tasks an owner moves from its shard into its private buffer per
/// locked pop (see [`DepthPool::pop_batch`]).  Small, so at most
/// `POP_BATCH - 1` tasks per worker are ever invisible to thieves.
pub const POP_BATCH: usize = 4;

/// How many tasks a thief takes from a victim shard per steal (see
/// [`ShardedPool::steal_batch`]).  Smaller than [`POP_BATCH`]: stolen tasks
/// vanish from every other thief's view, so steals stay conservative.
pub const STEAL_BATCH: usize = 2;

/// How many tasks a release burst may divert into a starved locality's
/// [`Mailbox`] at once.  Small for the same reason as [`STEAL_BATCH`]:
/// pushed tasks leave the pusher's heuristic order, so the batch is a
/// starvation patch, not a load-balancing channel.
pub const PUSH_BATCH: usize = 4;

/// A task tagged with the tree depth of its root node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task<N> {
    /// The root node of the subtree this task must explore.
    pub node: N,
    /// Depth of `node` in the global search tree (root = 0).
    pub depth: usize,
}

impl<N> Task<N> {
    /// Convenience constructor.
    pub fn new(node: N, depth: usize) -> Self {
        Task { node, depth }
    }
}

/// The hint value meaning "this shard looked empty".
const EMPTY_HINT: usize = usize::MAX;

/// An order-preserving workpool: lowest depth first, FIFO within a depth.
#[derive(Debug)]
pub struct DepthPool<N> {
    inner: Mutex<PoolInner<N>>,
    /// Shallowest queued depth ([`EMPTY_HINT`] when empty), refreshed under
    /// the lock on every mutation.  Lets readers skip empty pools without
    /// locking; staleness only costs heuristic quality, never correctness.
    hint: AtomicUsize,
    /// Lock acquisitions performed on this pool (all operations), counted
    /// relaxed.  Diagnostics for the batched hot path: the steal-path
    /// regression test and `WorkerMetrics::lock_acquisitions` read it.
    locks: AtomicU64,
}

#[derive(Debug)]
struct PoolInner<N> {
    by_depth: BTreeMap<usize, VecDeque<Task<N>>>,
    len: usize,
}

impl<N> Default for DepthPool<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> DepthPool<N> {
    /// An empty pool.
    pub fn new() -> Self {
        DepthPool {
            inner: Mutex::new(PoolInner {
                by_depth: BTreeMap::new(),
                len: 0,
            }),
            hint: AtomicUsize::new(EMPTY_HINT),
            locks: AtomicU64::new(0),
        }
    }

    /// Acquire the pool lock, counting the acquisition.
    fn lock(&self) -> MutexGuard<'_, PoolInner<N>> {
        // ordering: contention diagnostic tally; orders nothing.
        self.locks.fetch_add(1, Ordering::Relaxed);
        self.inner.lock()
    }

    /// Refresh the shallowest-depth hint.  Must be called with the lock held
    /// (i.e. on the guard obtained from [`lock`](Self::lock)) so the hint
    /// published at unlock reflects the state the next reader can observe.
    fn refresh_hint(&self, inner: &PoolInner<N>) {
        let min = inner.by_depth.keys().next().copied().unwrap_or(EMPTY_HINT);
        self.hint.store(min, Ordering::Release);
    }

    /// Add a task to the pool (appended after existing tasks of equal depth,
    /// preserving heuristic order).
    pub fn push(&self, task: Task<N>) {
        let mut inner = self.lock();
        inner
            .by_depth
            .entry(task.depth)
            .or_default()
            .push_back(task);
        inner.len += 1;
        self.refresh_hint(&inner);
    }

    /// Add several tasks, preserving their relative (heuristic) order, under
    /// a single lock acquisition.
    pub fn push_all(&self, tasks: impl IntoIterator<Item = Task<N>>) {
        let mut inner = self.lock();
        for task in tasks {
            inner
                .by_depth
                .entry(task.depth)
                .or_default()
                .push_back(task);
            inner.len += 1;
        }
        self.refresh_hint(&inner);
    }

    /// Drain `tasks` into the pool under one lock acquisition, preserving
    /// their relative (heuristic) order.  The vector keeps its capacity, so
    /// a worker's spawn buffer is reused across bursts instead of allocating
    /// per generator burst.
    pub fn push_batch(&self, tasks: &mut Vec<Task<N>>) {
        if tasks.is_empty() {
            return;
        }
        let mut inner = self.lock();
        for task in tasks.drain(..) {
            inner
                .by_depth
                .entry(task.depth)
                .or_default()
                .push_back(task);
            inner.len += 1;
        }
        self.refresh_hint(&inner);
    }

    /// Remove and return the highest-priority task: the oldest task at the
    /// shallowest populated depth.
    ///
    /// Returns `None` only when the pool is empty *at this instant*; with
    /// concurrent producers a subsequent `pop` may succeed.  Callers must
    /// therefore combine an empty `pop` with a termination check (see
    /// `Termination::all_done`) rather than treating it as end-of-search.
    pub fn pop(&self) -> Option<Task<N>> {
        if self.hint.load(Ordering::Acquire) == EMPTY_HINT {
            // Empty per the published hint: skip the lock entirely.  A racing
            // push is indistinguishable from one that lands right after an
            // unlocked miss, so the "empty at this instant" contract holds.
            return None;
        }
        let mut inner = self.lock();
        let depth = match inner.by_depth.keys().next() {
            Some(&depth) => depth,
            None => return None,
        };
        let queue = inner.by_depth.get_mut(&depth).expect("key just observed");
        let task = queue.pop_front();
        if queue.is_empty() {
            inner.by_depth.remove(&depth);
        }
        if task.is_some() {
            inner.len -= 1;
        }
        self.refresh_hint(&inner);
        task
    }

    /// Move up to `max` highest-priority tasks (same order as repeated
    /// [`pop`](Self::pop)s) into `out` under one lock acquisition, returning
    /// how many were taken.  The owner's batched fast path: one lock per
    /// [`POP_BATCH`] tasks instead of one per task.
    pub fn pop_batch(&self, max: usize, out: &mut VecDeque<Task<N>>) -> usize {
        if max == 0 || self.hint.load(Ordering::Acquire) == EMPTY_HINT {
            return 0;
        }
        let mut inner = self.lock();
        let mut taken = 0;
        while taken < max {
            let depth = match inner.by_depth.keys().next() {
                Some(&depth) => depth,
                None => break,
            };
            let queue = inner.by_depth.get_mut(&depth).expect("key just observed");
            while taken < max {
                match queue.pop_front() {
                    Some(task) => {
                        out.push_back(task);
                        taken += 1;
                    }
                    None => break,
                }
            }
            if queue.is_empty() {
                inner.by_depth.remove(&depth);
            }
        }
        inner.len -= taken;
        self.refresh_hint(&inner);
        taken
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Depth of the shallowest queued task, if any.  Takes the lock; the
    /// lock-free variant is [`min_depth_hint`](Self::min_depth_hint).
    pub fn min_depth(&self) -> Option<usize> {
        self.inner.lock().by_depth.keys().next().copied()
    }

    /// The published shallowest-depth hint, without locking.  The answer may
    /// be stale by the time the caller acts on it (a concurrent push or pop
    /// moves it), which only affects heuristic quality, never correctness —
    /// the steal path re-checks by actually popping, and global emptiness is
    /// decided by the termination counter, not the pool.
    pub fn min_depth_hint(&self) -> Option<usize> {
        match self.hint.load(Ordering::Acquire) {
            EMPTY_HINT => None,
            depth => Some(depth),
        }
    }

    /// Lock acquisitions performed on this pool so far (relaxed counter).
    pub fn lock_acquisitions(&self) -> u64 {
        // ordering: diagnostic read; callers tolerate a stale count.
        self.locks.load(Ordering::Relaxed)
    }

    /// Discard every queued task, returning exactly how many were dropped.
    /// Used when a decision search short-circuits.
    ///
    /// The count is taken under the pool lock: a task popped concurrently by
    /// a worker is counted by that worker's pop, never by `clear`, so
    /// `pops + cleared` always equals the number of pushes.
    pub fn clear(&self) -> usize {
        let mut inner = self.lock();
        let dropped = inner.len;
        inner.by_depth.clear();
        inner.len = 0;
        self.refresh_hint(&inner);
        dropped
    }
}

/// One locality's aggregate load gauge, padded to its own cache line so
/// relaxed updates from one locality's workers never false-share with
/// another locality's gauge.
#[repr(align(64))]
#[derive(Debug)]
struct LocalityGauge {
    /// Queued-task estimate: incremented *before* a task becomes visible,
    /// decremented *after* it is removed, so the reading over-approximates
    /// true occupancy and is exact at quiescence.  Zero proves drained.
    queued: AtomicU64,
    /// Idle-worker count: workers report their own idle/busy transitions.
    idle: AtomicU64,
}

/// Cache-padded per-locality load aggregates: a queued-task estimate and an
/// idle-worker count per locality, shared across localities for steal
/// *routing* and work-*pushing* decisions.
///
/// Unlike per-worker depth hints (which PR 6 proved must stay
/// locality-private — directing remote thieves at the best hint
/// strip-mines one victim), aggregates carry no placement information:
/// a thief routed to the least-loaded-but-nonempty locality still picks a
/// blind-random victim within it.
///
/// # Update protocol
///
/// `tasks_queued` must be called **before** the tasks are inserted and
/// `tasks_taken` **after** they are removed.  Removal happens-after
/// insertion (the pool mutex), and each call is ordered after its
/// counterpart in its own thread, so the counter's modification order
/// never dips below zero and every reading is an over-approximation of
/// true occupancy — exact once producers and consumers quiesce.  The
/// idle counter relies on each worker alternating `worker_idle` /
/// `worker_busy`, which gives the same never-negative guarantee.
#[derive(Debug)]
pub struct LocalityGauges {
    gauges: Vec<LocalityGauge>,
}

impl LocalityGauges {
    /// Gauges for `localities` localities (at least one).
    pub fn new(localities: usize) -> Self {
        LocalityGauges {
            gauges: (0..localities.max(1))
                .map(|_| LocalityGauge {
                    queued: AtomicU64::new(0),
                    idle: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Number of localities.
    pub fn localities(&self) -> usize {
        self.gauges.len()
    }

    /// Record `n` tasks about to be queued on `locality`.  Call **before**
    /// making the tasks visible.
    pub fn tasks_queued(&self, locality: usize, n: u64) {
        if n > 0 {
            // ordering: heuristic aggregate — the inc-before-insert
            // protocol alone keeps the counter non-negative; readers
            // tolerate staleness (a stale-high gauge costs one wasted
            // probe, never correctness).
            self.gauges[locality].queued.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record `n` tasks removed from `locality`.  Call **after** the tasks
    /// have actually been taken.
    pub fn tasks_taken(&self, locality: usize, n: u64) {
        if n > 0 {
            // ordering: paired with tasks_queued, which happens-before via
            // the pool lock; see the protocol doc above.
            self.gauges[locality].queued.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// A worker of `locality` became idle (no local work, probing).
    pub fn worker_idle(&self, locality: usize) {
        // ordering: heuristic aggregate, per-worker alternation keeps it
        // non-negative; staleness only delays a push decision.
        self.gauges[locality].idle.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker of `locality` obtained work again.
    pub fn worker_busy(&self, locality: usize) {
        // ordering: paired with worker_idle in the same worker's program
        // order, so the counter never goes negative.
        self.gauges[locality].idle.fetch_sub(1, Ordering::Relaxed);
    }

    /// The locality's queued-task estimate (over-approximation; exact at
    /// quiescence, zero proves drained).
    pub fn queued(&self, locality: usize) -> u64 {
        // ordering: heuristic read; callers tolerate a stale value.
        self.gauges[locality].queued.load(Ordering::Relaxed)
    }

    /// The locality's idle-worker count.
    pub fn idle(&self, locality: usize) -> u64 {
        // ordering: heuristic read; callers tolerate a stale value.
        self.gauges[locality].idle.load(Ordering::Relaxed)
    }

    /// The least-loaded remote locality that still has queued work:
    /// `(locality, queued)` minimising `queued` over localities other than
    /// `exclude` with a non-zero gauge.  Ties resolve to the lowest id —
    /// callers wanting tie diversity can rotate `exclude`-relative, but the
    /// victim *within* the locality must stay blind-random regardless.
    pub fn least_loaded_nonempty(&self, exclude: usize) -> Option<(usize, u64)> {
        self.gauges
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != exclude)
            .filter_map(|(i, g)| {
                // ordering: heuristic read, as `queued`.
                let queued = g.queued.load(Ordering::Relaxed);
                (queued > 0).then_some((i, queued))
            })
            .min_by_key(|&(i, queued)| (queued, i))
    }

    /// Is `locality` starved: at least `idle_threshold` idle workers and no
    /// queued work?  The work-pushing trigger.
    pub fn starved(&self, locality: usize, idle_threshold: u64) -> bool {
        self.idle(locality) >= idle_threshold && self.queued(locality) == 0
    }
}

/// A per-locality work mailbox: the *push* half of the locality layer.
///
/// A worker that observes a starved remote locality on the
/// [`LocalityGauges`] pushes a bounded batch of its own tasks here instead
/// of waiting for a blind remote probe to find it; the locality's workers
/// drain the mailbox *before* scanning for steals.  One mutex plus an
/// occupancy flag: the flag is set under the lock after inserting and
/// cleared under the lock at drain, so an empty mailbox costs exactly one
/// `Acquire` load per scan and no task is ever stranded behind a stale
/// flag (model-checked: `models/mailbox.rs`, whose flag-reorder mutations
/// produce lost-task counterexamples).
#[derive(Debug)]
pub struct Mailbox<N> {
    inner: Mutex<Vec<Task<N>>>,
    /// True whenever `inner` is non-empty; written only under the lock.
    occupied: AtomicBool,
}

impl<N> Default for Mailbox<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> Mailbox<N> {
    /// An empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            inner: Mutex::new(Vec::new()),
            occupied: AtomicBool::new(false),
        }
    }

    /// Does the mailbox hold tasks?  The lock-free pre-scan: `false` means
    /// drain would find nothing (the flag is maintained under the lock).
    pub fn is_occupied(&self) -> bool {
        // ordering: pairs with the Release store under the lock so a true
        // reading is followed by a drain that observes the tasks.
        self.occupied.load(Ordering::Acquire)
    }

    /// Deposit `tasks` (draining the caller's buffer, which keeps its
    /// capacity) and raise the occupancy flag under the same lock.
    pub fn push(&self, tasks: &mut Vec<Task<N>>) {
        if tasks.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.append(tasks);
        // ordering: Release under the lock, after the insert — a thief's
        // Acquire fast-path read that sees `true` will find the tasks.
        self.occupied.store(true, Ordering::Release);
    }

    /// Move every deposited task into `out`, returning how many.  Clears
    /// the occupancy flag under the lock *before* unlocking, so a racing
    /// push re-raises it and no task is stranded invisible.
    pub fn drain(&self, out: &mut Vec<Task<N>>) -> usize {
        if !self.is_occupied() {
            return 0;
        }
        let mut inner = self.inner.lock();
        // ordering: cleared under the lock; a concurrent push serialises
        // behind us and re-raises the flag for its own tasks.
        self.occupied.store(false, Ordering::Release);
        let taken = inner.len();
        out.append(&mut inner);
        taken
    }

    /// Number of deposited tasks (snapshot).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no tasks are deposited.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard every deposited task, returning exactly how many were
    /// dropped.  Used on cancel/deadline/short-circuit exits so the
    /// termination counter's outstanding count reaches zero.
    pub fn clear(&self) -> usize {
        let mut inner = self.inner.lock();
        // ordering: as in drain — cleared under the lock.
        self.occupied.store(false, Ordering::Release);
        let dropped = inner.len();
        inner.clear();
        dropped
    }
}

/// A per-worker sharding of [`DepthPool`] with a shallowest-first steal path.
///
/// Owners interact only with their own shard ([`push`](Self::push),
/// [`push_batch`](Self::push_batch), [`pop_local`](Self::pop_local),
/// [`pop_batch_local`](Self::pop_batch_local)); an idle worker calls
/// [`steal`](Self::steal) or [`steal_batch`](Self::steal_batch), which rank
/// the other shards by their published shallowest-depth hints — no locks on
/// empty shards — and pop from the best one.  All operations are
/// linearisable per shard; cross-shard reads (`steal`, `len`,
/// [`clear`](Self::clear)) are best-effort snapshots, which is sound because
/// task order is a heuristic and global emptiness is decided by the
/// termination counter, not by the pool.
#[derive(Debug)]
pub struct ShardedPool<N> {
    shards: Vec<DepthPool<N>>,
    /// Shards per locality (== `shards.len()` for a single locality).
    shards_per_locality: usize,
    /// Per-locality queued-task aggregates, maintained at every push/pop/
    /// steal site below.
    gauges: LocalityGauges,
}

impl<N> ShardedPool<N> {
    /// A pool with one shard per worker (at least one), all in a single
    /// locality.
    pub fn new(shards: usize) -> Self {
        Self::with_localities(shards, 1)
    }

    /// A pool whose shards are grouped into `localities` contiguous
    /// localities: shard `s` belongs to locality `s / ceil(shards /
    /// localities)`.  The pool maintains [`LocalityGauges`] at every
    /// mutation site, and the steal scan skips localities whose gauge
    /// reads zero without touching their shards.
    pub fn with_localities(shards: usize, localities: usize) -> Self {
        let shards = shards.max(1);
        let localities = localities.clamp(1, shards);
        let shards_per_locality = shards.div_ceil(localities);
        ShardedPool {
            shards: (0..shards).map(|_| DepthPool::new()).collect(),
            shards_per_locality,
            gauges: LocalityGauges::new(localities),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of localities the shards are grouped into.
    pub fn localities(&self) -> usize {
        self.gauges.localities()
    }

    /// The locality `shard` belongs to.
    pub fn locality_of(&self, shard: usize) -> usize {
        (shard / self.shards_per_locality).min(self.gauges.localities() - 1)
    }

    /// The pool's per-locality load gauges (for routing and work-pushing
    /// decisions outside the pool).
    pub fn gauges(&self) -> &LocalityGauges {
        &self.gauges
    }

    /// Queue a task on `shard` (the calling worker's own shard).
    pub fn push(&self, shard: usize, task: Task<N>) {
        // Gauge before insert: see the LocalityGauges protocol doc.
        self.gauges.tasks_queued(self.locality_of(shard), 1);
        self.shards[shard].push(task);
    }

    /// Queue several tasks on `shard`, preserving their heuristic order,
    /// under one lock acquisition.
    pub fn push_all(&self, shard: usize, tasks: impl IntoIterator<Item = Task<N>>) {
        let tasks: Vec<Task<N>> = tasks.into_iter().collect();
        self.gauges
            .tasks_queued(self.locality_of(shard), tasks.len() as u64);
        self.shards[shard].push_all(tasks);
    }

    /// Drain `tasks` onto `shard` under one lock acquisition, preserving
    /// heuristic order and the caller's buffer capacity.
    pub fn push_batch(&self, shard: usize, tasks: &mut Vec<Task<N>>) {
        self.gauges
            .tasks_queued(self.locality_of(shard), tasks.len() as u64);
        self.shards[shard].push_batch(tasks);
    }

    /// Pop the highest-priority task of the worker's own shard.
    pub fn pop_local(&self, shard: usize) -> Option<Task<N>> {
        let task = self.shards[shard].pop();
        if task.is_some() {
            self.gauges.tasks_taken(self.locality_of(shard), 1);
        }
        task
    }

    /// Move up to `max` tasks from the worker's own shard into `out` under
    /// one lock acquisition, returning how many were taken.
    pub fn pop_batch_local(&self, shard: usize, max: usize, out: &mut VecDeque<Task<N>>) -> usize {
        let taken = self.shards[shard].pop_batch(max, out);
        self.gauges
            .tasks_taken(self.locality_of(shard), taken as u64);
        taken
    }

    /// Victim shards for `thief`, best (shallowest hint) first, built from
    /// the atomic hints alone — no shard locks.  Whole localities whose
    /// queued-task gauge reads zero are skipped before any hint is read:
    /// the gauges over-approximate occupancy, so a zero reading proves the
    /// locality is drained (a fully-drained remote locality costs one
    /// relaxed gauge load per scan, not a hint read per shard).
    fn candidates(&self, thief: usize) -> Vec<(usize, usize)> {
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for locality in 0..self.gauges.localities() {
            if self.gauges.queued(locality) == 0 {
                continue;
            }
            let start = locality * self.shards_per_locality;
            let end = (start + self.shards_per_locality).min(self.shards.len());
            for i in start..end {
                if i == thief {
                    continue;
                }
                if let Some(depth) = self.shards[i].min_depth_hint() {
                    candidates.push((depth, i));
                }
            }
        }
        candidates.sort_unstable();
        candidates
    }

    /// Steal a task for `thief`: rank every other shard by its published
    /// shallowest-depth hint and pop from the shard holding the globally
    /// shallowest task.  If the chosen victim was drained between the scan
    /// and the pop (a concurrent owner pop or rival thief), fall through to
    /// the next-best shard rather than giving up.  Returns `None` only when
    /// every candidate shard was empty by the time it was tried — callers
    /// should retry after checking termination, since concurrent pushes may
    /// repopulate the shards.
    pub fn steal(&self, thief: usize) -> Option<Task<N>> {
        for (_, victim) in self.candidates(thief) {
            if let Some(task) = self.shards[victim].pop() {
                self.gauges.tasks_taken(self.locality_of(victim), 1);
                return Some(task);
            }
        }
        None
    }

    /// Steal up to `max` tasks for `thief` from a single victim shard — the
    /// one whose published hint is shallowest — appending them to `out` and
    /// returning how many were taken.  Falls through hint-stale victims like
    /// [`steal`](Self::steal); the whole batch comes from one shard so a
    /// successful steal is exactly one lock acquisition.
    pub fn steal_batch(&self, thief: usize, max: usize, out: &mut VecDeque<Task<N>>) -> usize {
        for (_, victim) in self.candidates(thief) {
            let taken = self.shards[victim].pop_batch(max, out);
            if taken > 0 {
                self.gauges
                    .tasks_taken(self.locality_of(victim), taken as u64);
                return taken;
            }
        }
        0
    }

    /// Locality-routed batch steal for `thief`: try the thief's own
    /// locality first (hint-ranked, shallowest shard first — the cheap,
    /// cache-local transfer), then route to the least-loaded *remote*
    /// locality whose queued-task gauge is non-zero and take from a blind
    /// pseudo-random shard inside it (`rot` supplies the caller's
    /// randomness).  Routing is deliberately two-level: the aggregate gauge
    /// picks the locality (aggregates are legitimately shareable), but the
    /// victim *within* it stays blind so thieves can never strip-mine the
    /// locality's shallowest shard.  Returns `(taken, victim_shard)`, or
    /// `None` when every candidate was empty by the time it was tried.
    pub fn steal_routed(
        &self,
        thief: usize,
        max: usize,
        out: &mut VecDeque<Task<N>>,
        rot: usize,
    ) -> Option<(usize, usize)> {
        let home = self.locality_of(thief);
        if self.gauges.queued(home) > 0 {
            let start = home * self.shards_per_locality;
            let end = (start + self.shards_per_locality).min(self.shards.len());
            let mut ranked: Vec<(usize, usize)> = Vec::new();
            for i in start..end {
                if i == thief {
                    continue;
                }
                if let Some(depth) = self.shards[i].min_depth_hint() {
                    ranked.push((depth, i));
                }
            }
            ranked.sort_unstable();
            for (_, victim) in ranked {
                let taken = self.shards[victim].pop_batch(max, out);
                if taken > 0 {
                    self.gauges.tasks_taken(home, taken as u64);
                    return Some((taken, victim));
                }
            }
        }
        let mut remote: Vec<(u64, usize)> = (0..self.localities())
            .filter(|&l| l != home)
            .filter_map(|l| {
                let queued = self.gauges.queued(l);
                (queued > 0).then_some((queued, l))
            })
            .collect();
        remote.sort_unstable();
        for (_, locality) in remote {
            let start = locality * self.shards_per_locality;
            let end = (start + self.shards_per_locality).min(self.shards.len());
            let width = end - start;
            for probe in 0..width {
                let victim = start + (rot + probe) % width;
                if self.shards[victim].min_depth_hint().is_none() {
                    continue;
                }
                let taken = self.shards[victim].pop_batch(max, out);
                if taken > 0 {
                    self.gauges.tasks_taken(locality, taken as u64);
                    return Some((taken, victim));
                }
            }
        }
        None
    }

    /// Total queued tasks across all shards (a racy snapshot under
    /// concurrency).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Queued tasks on one shard (a racy snapshot; exact at quiescence —
    /// the gauge-reconciliation tests sum it per locality).
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// True when every shard looked empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lock acquisitions across all shards (relaxed counters).
    pub fn lock_acquisitions(&self) -> u64 {
        self.shards.iter().map(|s| s.lock_acquisitions()).sum()
    }

    /// Lock acquisitions summed over the shards of one locality — the
    /// locality-skip regression test reads this.
    pub fn locality_lock_acquisitions(&self, locality: usize) -> u64 {
        let start = locality * self.shards_per_locality;
        let end = (start + self.shards_per_locality).min(self.shards.len());
        self.shards[start..end]
            .iter()
            .map(|s| s.lock_acquisitions())
            .sum()
    }

    /// Discard every queued task in every shard, returning exactly how many
    /// were dropped in total.  Each shard's count is taken under that
    /// shard's lock, so tasks popped concurrently by workers (e.g. during a
    /// decision short-circuit) are never double-counted: over the whole run,
    /// `pops + cleared == pushes`.
    pub fn clear(&self) -> usize {
        let mut total = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            let dropped = shard.clear();
            self.gauges.tasks_taken(self.locality_of(i), dropped as u64);
            total += dropped;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_lowest_depth_first() {
        let pool = DepthPool::new();
        pool.push(Task::new("deep", 5));
        pool.push(Task::new("shallow", 1));
        pool.push(Task::new("mid", 3));
        assert_eq!(pool.pop().unwrap().node, "shallow");
        assert_eq!(pool.pop().unwrap().node, "mid");
        assert_eq!(pool.pop().unwrap().node, "deep");
        assert!(pool.pop().is_none());
    }

    #[test]
    fn fifo_within_a_depth_preserves_heuristic_order() {
        let pool = DepthPool::new();
        pool.push_all((0..10).map(|i| Task::new(i, 2)));
        let order: Vec<i32> = std::iter::from_fn(|| pool.pop().map(|t| t.node)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_clear() {
        let pool = DepthPool::new();
        assert!(pool.is_empty());
        pool.push_all([Task::new(1, 0), Task::new(2, 1), Task::new(3, 1)]);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.clear(), 3);
        assert!(pool.is_empty());
        assert!(pool.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_never_loses_tasks() {
        let pool = DepthPool::new();
        pool.push(Task::new(0u32, 0));
        let mut popped = 0;
        for i in 1..100u32 {
            pool.push(Task::new(i, (i % 7) as usize));
            if i % 3 == 0 {
                assert!(pool.pop().is_some());
                popped += 1;
            }
        }
        assert_eq!(pool.len(), 100 - popped);
    }

    #[test]
    fn concurrent_producers_and_consumers_drain_exactly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = Arc::new(DepthPool::new());
        let consumed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..2 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..500usize {
                        pool.push(Task::new(t * 1000 + i, i % 5));
                    }
                });
            }
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                let consumed = Arc::clone(&consumed);
                s.spawn(move || {
                    let mut local = 0;
                    for _ in 0..10_000 {
                        if pool.pop().is_some() {
                            local += 1;
                        }
                    }
                    consumed.fetch_add(local, Ordering::SeqCst);
                });
            }
        });
        // Whatever the consumers missed must still be in the pool.
        assert_eq!(consumed.load(Ordering::SeqCst) + pool.len(), 1000);
    }

    #[test]
    fn sharded_steal_prefers_the_shallowest_shard() {
        let pool = ShardedPool::new(3);
        pool.push(0, Task::new("own", 4));
        pool.push(1, Task::new("deep", 7));
        pool.push(2, Task::new("shallow", 2));
        // Worker 0 steals: shard 2 holds the globally shallowest task.
        assert_eq!(pool.steal(0).unwrap().node, "shallow");
        // Next steal must skip the thief's own shard even though it now
        // holds the shallowest task.
        assert_eq!(pool.steal(0).unwrap().node, "deep");
        assert!(
            pool.steal(0).is_none(),
            "only the thief's own shard is left"
        );
        assert_eq!(pool.pop_local(0).unwrap().node, "own");
    }

    #[test]
    fn sharded_owner_pops_are_local() {
        let pool = ShardedPool::new(2);
        pool.push_all(0, (0..5).map(|i| Task::new(i, 3)));
        pool.push(1, Task::new(99, 0));
        // Owner 0 pops its own FIFO run and never sees shard 1's task.
        for i in 0..5 {
            assert_eq!(pool.pop_local(0).unwrap().node, i);
        }
        assert!(pool.pop_local(0).is_none());
        assert_eq!(pool.len(), 1);
    }

    /// Regression test (PR 1 review finding): `steal` used to return `None`
    /// when its chosen victim shard was drained between the min-depth scan
    /// and the pop, even though other shards still held work.  Race an owner
    /// pop on the shallowest shard against a thief: with the fall-through the
    /// thief must *always* obtain a task, because the deep shard is never
    /// touched by anyone else.
    #[test]
    fn steal_falls_through_to_the_next_best_shard_when_the_victim_drains() {
        use std::sync::Arc;
        for _ in 0..500 {
            let pool = Arc::new(ShardedPool::new(3));
            pool.push(0, Task::new("shallow", 0));
            pool.push(1, Task::new("deep", 9));
            let stolen = std::thread::scope(|s| {
                let owner = {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || pool.pop_local(0))
                };
                let thief = {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || pool.steal(2))
                };
                let _ = owner.join().unwrap();
                thief.join().unwrap()
            });
            assert!(
                stolen.is_some(),
                "a task was available in a shard the whole time"
            );
        }
    }

    /// Satellite of the batching PR: with the atomic hints, a steal from a
    /// wide, almost-empty pool must not lock the empty shards at all — one
    /// non-empty shard among 64 costs at most two lock acquisitions (the
    /// victim's pop; a second only if a fall-through probe raced), not 63.
    #[test]
    fn steal_skips_empty_shards_without_locking() {
        let pool: ShardedPool<u32> = ShardedPool::new(64);
        pool.push(7, Task::new(1, 3));
        let before = pool.lock_acquisitions();
        let stolen = pool.steal(0);
        let locks = pool.lock_acquisitions() - before;
        assert_eq!(stolen.unwrap().node, 1);
        assert!(
            locks <= 2,
            "steal from a 64-shard pool with one victim took {locks} locks"
        );
        // And a steal from a fully empty pool locks nothing.
        let before = pool.lock_acquisitions();
        assert!(pool.steal(0).is_none());
        assert_eq!(pool.lock_acquisitions() - before, 0);
    }

    /// Satellite of the locality PR: a fully-drained remote *locality*
    /// costs zero lock acquisitions per steal scan — its queued-task gauge
    /// reads zero, which proves it is empty, so the scan skips all of its
    /// shards before reading a hint or touching a lock.
    #[test]
    fn steal_skips_drained_localities_without_locking() {
        // 4 localities × 16 shards; only the thief's own locality has work
        // (in a sibling shard), every remote locality is drained.
        let pool: ShardedPool<u32> = ShardedPool::with_localities(64, 4);
        assert_eq!(pool.localities(), 4);
        pool.push(1, Task::new(7, 3));
        let remote_before: Vec<u64> = (1..4).map(|l| pool.locality_lock_acquisitions(l)).collect();
        let stolen = pool.steal(0);
        assert_eq!(stolen.unwrap().node, 7);
        for (i, before) in remote_before.iter().enumerate() {
            assert_eq!(
                pool.locality_lock_acquisitions(i + 1) - before,
                0,
                "drained remote locality {} must cost zero locks per scan",
                i + 1
            );
        }
        // With the whole pool drained the scan takes no locks at all.
        let before = pool.lock_acquisitions();
        assert!(pool.steal(0).is_none());
        assert_eq!(pool.lock_acquisitions() - before, 0);
    }

    #[test]
    fn gauges_track_push_pop_and_steal_sites() {
        let pool: ShardedPool<u32> = ShardedPool::with_localities(4, 2);
        assert_eq!(pool.locality_of(0), 0);
        assert_eq!(pool.locality_of(1), 0);
        assert_eq!(pool.locality_of(2), 1);
        assert_eq!(pool.locality_of(3), 1);
        pool.push(0, Task::new(1, 0));
        pool.push_all(2, (0..3).map(|i| Task::new(i, 1)));
        let mut burst = vec![Task::new(9, 2), Task::new(10, 2)];
        pool.push_batch(3, &mut burst);
        assert_eq!(pool.gauges().queued(0), 1);
        assert_eq!(pool.gauges().queued(1), 5);
        assert!(pool.pop_local(0).is_some());
        assert_eq!(pool.gauges().queued(0), 0);
        // A thief in locality 0 steals from locality 1.
        assert!(pool.steal(0).is_some());
        assert_eq!(pool.gauges().queued(1), 4);
        let mut out = VecDeque::new();
        assert_eq!(pool.steal_batch(0, 2, &mut out), 2);
        assert_eq!(pool.gauges().queued(1), 2);
        assert_eq!(pool.clear(), 2);
        assert_eq!(pool.gauges().queued(1), 0);
        assert_eq!(
            pool.gauges().least_loaded_nonempty(0),
            None,
            "drained gauges route nowhere"
        );
    }

    #[test]
    fn least_loaded_routing_excludes_self_and_empties() {
        let gauges = LocalityGauges::new(4);
        gauges.tasks_queued(0, 9);
        gauges.tasks_queued(2, 5);
        gauges.tasks_queued(3, 2);
        assert_eq!(gauges.least_loaded_nonempty(3), Some((2, 5)));
        assert_eq!(gauges.least_loaded_nonempty(0), Some((3, 2)));
        gauges.tasks_taken(3, 2);
        assert_eq!(gauges.least_loaded_nonempty(0), Some((2, 5)));
    }

    #[test]
    fn starvation_needs_idle_workers_and_an_empty_queue() {
        let gauges = LocalityGauges::new(2);
        assert!(!gauges.starved(1, 1), "no idle workers yet");
        gauges.worker_idle(1);
        gauges.worker_idle(1);
        assert!(gauges.starved(1, 2));
        gauges.tasks_queued(1, 1);
        assert!(!gauges.starved(1, 2), "queued work is not starvation");
        gauges.tasks_taken(1, 1);
        gauges.worker_busy(1);
        assert!(!gauges.starved(1, 2), "one idle worker is below threshold");
        assert!(gauges.starved(1, 1));
    }

    /// Property (threaded): the queued-task gauges reconcile with actual
    /// pool occupancy at quiescence — the inc-before-insert /
    /// dec-after-remove protocol means concurrent pushes, pops and steals
    /// can only ever leave the gauge an over-approximation, and once every
    /// worker has joined it is exact.
    #[test]
    fn gauges_reconcile_with_occupancy_at_quiescence() {
        use std::sync::Arc;
        for _ in 0..20 {
            let pool: Arc<ShardedPool<usize>> = Arc::new(ShardedPool::with_localities(8, 4));
            std::thread::scope(|s| {
                for t in 0..4usize {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || {
                        let shard = t * 2;
                        let mut burst = Vec::new();
                        let mut out = VecDeque::new();
                        for round in 0..50usize {
                            burst.extend((0..3).map(|i| Task::new(i, (round + i) % 5)));
                            pool.push_batch(shard, &mut burst);
                            pool.pop_local(shard);
                            pool.steal(shard);
                            pool.steal_batch(shard, 2, &mut out);
                            pool.pop_batch_local(shard, 2, &mut out);
                        }
                    });
                }
            });
            for locality in 0..4 {
                let occupancy: usize = (0..8)
                    .filter(|s| pool.locality_of(*s) == locality)
                    .map(|s| pool.shard_len(s))
                    .sum();
                assert_eq!(
                    pool.gauges().queued(locality),
                    occupancy as u64,
                    "gauge and occupancy must agree at quiescence"
                );
            }
        }
    }

    #[test]
    fn mailbox_round_trips_and_clears() {
        let mailbox: Mailbox<u32> = Mailbox::new();
        assert!(!mailbox.is_occupied());
        assert!(mailbox.is_empty());
        let mut batch = vec![Task::new(1, 0), Task::new(2, 1)];
        mailbox.push(&mut batch);
        assert!(batch.is_empty(), "push drains the caller's buffer");
        assert!(mailbox.is_occupied());
        assert_eq!(mailbox.len(), 2);
        let mut out = Vec::new();
        assert_eq!(mailbox.drain(&mut out), 2);
        assert!(!mailbox.is_occupied());
        assert_eq!(out.len(), 2);
        assert_eq!(mailbox.drain(&mut out), 0, "drained mailbox yields nothing");
        let mut batch = vec![Task::new(3, 2)];
        mailbox.push(&mut batch);
        assert_eq!(mailbox.clear(), 1, "clear reports dropped tasks exactly");
        assert!(!mailbox.is_occupied());
    }

    #[test]
    fn empty_mailbox_push_does_not_raise_the_flag() {
        let mailbox: Mailbox<u32> = Mailbox::new();
        let mut empty = Vec::new();
        mailbox.push(&mut empty);
        assert!(!mailbox.is_occupied());
    }

    /// Concurrent pushes and drains never lose a task and never strand one
    /// behind a lowered occupancy flag (the model-checked protocol, raced
    /// natively here).
    #[test]
    fn mailbox_never_strands_tasks_under_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let mailbox: Arc<Mailbox<usize>> = Arc::new(Mailbox::new());
        let drained = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..2 {
                let mailbox = Arc::clone(&mailbox);
                s.spawn(move || {
                    let mut batch = Vec::new();
                    for i in 0..200usize {
                        batch.push(Task::new(t * 1000 + i, i % 4));
                        mailbox.push(&mut batch);
                    }
                });
            }
            for _ in 0..2 {
                let mailbox = Arc::clone(&mailbox);
                let drained = Arc::clone(&drained);
                s.spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..5_000 {
                        drained.fetch_add(mailbox.drain(&mut out), Ordering::SeqCst);
                    }
                });
            }
        });
        let mut out = Vec::new();
        let rest = mailbox.drain(&mut out);
        assert_eq!(
            drained.load(Ordering::SeqCst) + rest,
            400,
            "every pushed task is drained exactly once"
        );
        assert!(!mailbox.is_occupied());
    }

    #[test]
    fn batched_push_and_pop_round_trip() {
        let pool = DepthPool::new();
        let mut burst: Vec<Task<u32>> = (0..10).map(|i| Task::new(i, (i % 3) as usize)).collect();
        pool.push_batch(&mut burst);
        assert!(burst.is_empty(), "push_batch drains the caller's buffer");
        assert!(burst.capacity() >= 10, "the buffer keeps its capacity");
        assert_eq!(pool.len(), 10);
        let mut out = VecDeque::new();
        assert_eq!(pool.pop_batch(4, &mut out), 4);
        assert_eq!(pool.pop_batch(100, &mut out), 6);
        assert_eq!(pool.pop_batch(1, &mut out), 0);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn steal_batch_takes_from_a_single_victim() {
        let pool = ShardedPool::new(4);
        pool.push_all(1, (0..3).map(|i| Task::new(i, 2)));
        pool.push(2, Task::new(99, 5));
        let mut out = VecDeque::new();
        let before = pool.lock_acquisitions();
        // Shard 1 has the shallowest hint; the whole batch comes from it.
        assert_eq!(pool.steal_batch(0, 8, &mut out), 3);
        assert_eq!(pool.lock_acquisitions() - before, 1);
        assert_eq!(
            out.iter().map(|t| t.node).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "batch preserves the victim's FIFO order"
        );
        assert_eq!(pool.steal_batch(0, 8, &mut out), 1, "then the deep shard");
    }

    #[test]
    fn sharded_clear_counts_drops_across_all_shards() {
        let pool = ShardedPool::new(4);
        for shard in 0..4 {
            pool.push_all(shard, (0..(shard + 1)).map(|i| Task::new(i, i)));
        }
        assert_eq!(pool.len(), 1 + 2 + 3 + 4);
        assert_eq!(
            pool.clear(),
            10,
            "clear must report drops summed over shards"
        );
        assert!(pool.is_empty());
        assert_eq!(pool.clear(), 0);
    }

    #[test]
    fn sharded_clear_never_double_counts_concurrent_pops() {
        // The decision short-circuit scenario: workers keep popping while
        // one thread clears. Every task must be observed exactly once,
        // either by a pop or by the clear's drop count.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = Arc::new(ShardedPool::new(4));
        for shard in 0..4 {
            pool.push_all(shard, (0..250).map(|i| Task::new(i, i % 9)));
        }
        let popped = Arc::new(AtomicUsize::new(0));
        let dropped = std::thread::scope(|s| {
            for t in 0..3 {
                let pool = Arc::clone(&pool);
                let popped = Arc::clone(&popped);
                s.spawn(move || {
                    let mut local = 0;
                    for _ in 0..200 {
                        if pool.pop_local(t).is_some() {
                            local += 1;
                        }
                        if pool.steal(t).is_some() {
                            local += 1;
                        }
                    }
                    popped.fetch_add(local, Ordering::SeqCst);
                });
            }
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                std::thread::yield_now();
                pool.clear()
            })
            .join()
            .unwrap()
        });
        assert_eq!(
            popped.load(Ordering::SeqCst) + dropped + pool.len(),
            1000,
            "pops + cleared + remaining must account for every push"
        );
    }

    /// Batched pops mixed with concurrent batched pushes and clears must
    /// still account for every task exactly once.
    #[test]
    fn batched_ops_never_double_count_under_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = Arc::new(ShardedPool::new(4));
        let popped = Arc::new(AtomicUsize::new(0));
        let dropped = std::thread::scope(|s| {
            for t in 0..3 {
                let pool = Arc::clone(&pool);
                let popped = Arc::clone(&popped);
                s.spawn(move || {
                    let mut burst = Vec::new();
                    let mut out = VecDeque::new();
                    let mut local = 0;
                    for round in 0..50usize {
                        burst.extend((0..5).map(|i| Task::new(i, (round + i) % 9)));
                        pool.push_batch(t, &mut burst);
                        local += pool.pop_batch_local(t, 2, &mut out);
                        local += pool.steal_batch(t, 2, &mut out);
                    }
                    out.clear();
                    popped.fetch_add(local, Ordering::SeqCst);
                });
            }
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                std::thread::yield_now();
                pool.clear()
            })
            .join()
            .unwrap()
        });
        // Let any tasks pushed after the clear drain too.
        let remaining = pool.clear();
        assert_eq!(
            popped.load(Ordering::SeqCst) + dropped + remaining,
            3 * 50 * 5,
            "pops + cleared + remaining must account for every batched push"
        );
    }

    proptest! {
        /// The pool is a priority queue keyed by (depth, arrival index): the
        /// pop sequence must always be sorted by depth, and within a depth by
        /// arrival order.
        #[test]
        fn pop_order_is_depth_then_fifo(depths in proptest::collection::vec(0usize..6, 1..64)) {
            let pool = DepthPool::new();
            for (i, &d) in depths.iter().enumerate() {
                pool.push(Task::new(i, d));
            }
            let popped: Vec<Task<usize>> = std::iter::from_fn(|| pool.pop()).collect();
            prop_assert_eq!(popped.len(), depths.len());
            for w in popped.windows(2) {
                prop_assert!(w[0].depth <= w[1].depth);
                if w[0].depth == w[1].depth {
                    prop_assert!(w[0].node < w[1].node, "FIFO violated within a depth");
                }
            }
        }

        /// Batched push/pop is observationally identical to per-task
        /// push/pop: for any partition of the pushes into bursts and any
        /// interleaving of batched pops, the two pools pop the exact same
        /// task sequence.
        #[test]
        fn batched_ops_match_per_task_ops(
            bursts in proptest::collection::vec(
                proptest::collection::vec(0usize..6, 0..8), 1..12),
            pop_chunks in proptest::collection::vec(1usize..5, 1..12),
        ) {
            let per_task = DepthPool::new();
            let batched = DepthPool::new();
            let mut label = 0usize;
            let mut popped_single: Vec<Task<usize>> = Vec::new();
            let mut popped_batched: VecDeque<Task<usize>> = VecDeque::new();
            let mut chunks = pop_chunks.iter().cycle();
            for burst in &bursts {
                let mut buf: Vec<Task<usize>> = Vec::new();
                for &depth in burst {
                    per_task.push(Task::new(label, depth));
                    buf.push(Task::new(label, depth));
                    label += 1;
                }
                batched.push_batch(&mut buf);
                // Interleave: pop a chunk from both pools after each burst.
                let chunk = *chunks.next().unwrap();
                let taken = batched.pop_batch(chunk, &mut popped_batched);
                for _ in 0..chunk {
                    if let Some(task) = per_task.pop() {
                        popped_single.push(task);
                    }
                }
                prop_assert_eq!(taken, popped_single.len() - (popped_batched.len() - taken),
                    "batched and per-task pops must take the same number");
            }
            // Drain the rest.
            while let Some(task) = per_task.pop() {
                popped_single.push(task);
            }
            batched.pop_batch(usize::MAX, &mut popped_batched);
            let batched_seq: Vec<Task<usize>> = popped_batched.into_iter().collect();
            prop_assert_eq!(popped_single, batched_seq);
        }
    }
}
