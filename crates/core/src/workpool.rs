//! Order-preserving workpools.
//!
//! Generic deque-based work stealing visits tasks in LIFO order on the owner
//! and steals FIFO from the other end, which destroys the heuristic ordering
//! that search applications depend on (paper §2.3).  YewPar instead uses a
//! bespoke *order-preserving* workpool (§4.3): tasks are prioritised by the
//! depth at which they were generated — shallower subtrees are expected to be
//! larger and are handed out first — and within a depth tasks are served in
//! FIFO order, i.e. exactly the heuristic order in which the lazy node
//! generator produced them.
//!
//! [`DepthPool`] implements that policy behind a mutex.  The discrete-event
//! simulator (`yewpar-sim`) instantiates one pool per simulated locality.
//!
//! A single shared pool serialises every push and pop on one lock, which
//! becomes the bottleneck of the Depth-Bounded and Budget coordinations as
//! workers scale.  [`ShardedPool`] therefore gives each worker its own
//! [`DepthPool`] shard: owners push and pop locally without contention, and
//! idle workers *steal* by scanning the other shards and taking from the one
//! whose shallowest task is globally shallowest — preserving the
//! shallowest-first heuristic across shards while eliminating the global
//! lock from the hot path.

pub mod ordered;

pub use ordered::{OrderedPool, SeqKey};

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};

/// A task tagged with the tree depth of its root node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task<N> {
    /// The root node of the subtree this task must explore.
    pub node: N,
    /// Depth of `node` in the global search tree (root = 0).
    pub depth: usize,
}

impl<N> Task<N> {
    /// Convenience constructor.
    pub fn new(node: N, depth: usize) -> Self {
        Task { node, depth }
    }
}

/// An order-preserving workpool: lowest depth first, FIFO within a depth.
#[derive(Debug)]
pub struct DepthPool<N> {
    inner: Mutex<PoolInner<N>>,
}

#[derive(Debug)]
struct PoolInner<N> {
    by_depth: BTreeMap<usize, VecDeque<Task<N>>>,
    len: usize,
}

impl<N> Default for DepthPool<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> DepthPool<N> {
    /// An empty pool.
    pub fn new() -> Self {
        DepthPool {
            inner: Mutex::new(PoolInner {
                by_depth: BTreeMap::new(),
                len: 0,
            }),
        }
    }

    /// Add a task to the pool (appended after existing tasks of equal depth,
    /// preserving heuristic order).
    pub fn push(&self, task: Task<N>) {
        let mut inner = self.inner.lock();
        inner
            .by_depth
            .entry(task.depth)
            .or_default()
            .push_back(task);
        inner.len += 1;
    }

    /// Add several tasks, preserving their relative (heuristic) order.
    pub fn push_all(&self, tasks: impl IntoIterator<Item = Task<N>>) {
        let mut inner = self.inner.lock();
        for task in tasks {
            inner
                .by_depth
                .entry(task.depth)
                .or_default()
                .push_back(task);
            inner.len += 1;
        }
    }

    /// Remove and return the highest-priority task: the oldest task at the
    /// shallowest populated depth.
    ///
    /// Returns `None` only when the pool is empty *at this instant*; with
    /// concurrent producers a subsequent `pop` may succeed.  Callers must
    /// therefore combine an empty `pop` with a termination check (see
    /// `Termination::all_done`) rather than treating it as end-of-search.
    pub fn pop(&self) -> Option<Task<N>> {
        let mut inner = self.inner.lock();
        let depth = *inner.by_depth.keys().next()?;
        let queue = inner.by_depth.get_mut(&depth).expect("key just observed");
        let task = queue.pop_front();
        if queue.is_empty() {
            inner.by_depth.remove(&depth);
        }
        if task.is_some() {
            inner.len -= 1;
        }
        task
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Depth of the shallowest queued task, if any.  Used by the sharded
    /// steal path to pick the most promising victim shard; the answer may be
    /// stale by the time the caller acts on it, which only affects heuristic
    /// quality, never correctness.
    pub fn min_depth(&self) -> Option<usize> {
        self.inner.lock().by_depth.keys().next().copied()
    }

    /// Discard every queued task, returning exactly how many were dropped.
    /// Used when a decision search short-circuits.
    ///
    /// The count is taken under the pool lock: a task popped concurrently by
    /// a worker is counted by that worker's pop, never by `clear`, so
    /// `pops + cleared` always equals the number of pushes.
    pub fn clear(&self) -> usize {
        let mut inner = self.inner.lock();
        let dropped = inner.len;
        inner.by_depth.clear();
        inner.len = 0;
        dropped
    }
}

/// A per-worker sharding of [`DepthPool`] with a shallowest-first steal path.
///
/// Owners interact only with their own shard ([`push`](Self::push),
/// [`push_all`](Self::push_all), [`pop_local`](Self::pop_local)); an idle
/// worker calls [`steal`](Self::steal), which scans the other shards'
/// shallowest depths and pops from the best one.  All operations are
/// linearisable per shard; cross-shard reads (`steal`, `len`,
/// [`clear`](Self::clear)) are best-effort snapshots, which is sound because
/// task order is a heuristic and global emptiness is decided by the
/// termination counter, not by the pool.
#[derive(Debug)]
pub struct ShardedPool<N> {
    shards: Vec<DepthPool<N>>,
}

impl<N> ShardedPool<N> {
    /// A pool with one shard per worker (at least one).
    pub fn new(shards: usize) -> Self {
        ShardedPool {
            shards: (0..shards.max(1)).map(|_| DepthPool::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Queue a task on `shard` (the calling worker's own shard).
    pub fn push(&self, shard: usize, task: Task<N>) {
        self.shards[shard].push(task);
    }

    /// Queue several tasks on `shard`, preserving their heuristic order.
    pub fn push_all(&self, shard: usize, tasks: impl IntoIterator<Item = Task<N>>) {
        self.shards[shard].push_all(tasks);
    }

    /// Pop the highest-priority task of the worker's own shard.
    pub fn pop_local(&self, shard: usize) -> Option<Task<N>> {
        self.shards[shard].pop()
    }

    /// Steal a task for `thief`: scan every other shard's shallowest depth
    /// and pop from the shard holding the globally shallowest task.  If the
    /// chosen victim was drained between the scan and the pop (a concurrent
    /// owner pop or rival thief), fall through to the next-best shard rather
    /// than giving up.  Returns `None` only when every candidate shard was
    /// empty by the time it was tried — callers should retry after checking
    /// termination, since concurrent pushes may repopulate the shards.
    pub fn steal(&self, thief: usize) -> Option<Task<N>> {
        let mut candidates: Vec<(usize, usize)> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != thief)
            .filter_map(|(i, shard)| shard.min_depth().map(|depth| (depth, i)))
            .collect();
        candidates.sort_unstable();
        candidates
            .into_iter()
            .find_map(|(_, victim)| self.shards[victim].pop())
    }

    /// Total queued tasks across all shards (a racy snapshot under
    /// concurrency).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when every shard looked empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard every queued task in every shard, returning exactly how many
    /// were dropped in total.  Each shard's count is taken under that
    /// shard's lock, so tasks popped concurrently by workers (e.g. during a
    /// decision short-circuit) are never double-counted: over the whole run,
    /// `pops + cleared == pushes`.
    pub fn clear(&self) -> usize {
        self.shards.iter().map(|s| s.clear()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_lowest_depth_first() {
        let pool = DepthPool::new();
        pool.push(Task::new("deep", 5));
        pool.push(Task::new("shallow", 1));
        pool.push(Task::new("mid", 3));
        assert_eq!(pool.pop().unwrap().node, "shallow");
        assert_eq!(pool.pop().unwrap().node, "mid");
        assert_eq!(pool.pop().unwrap().node, "deep");
        assert!(pool.pop().is_none());
    }

    #[test]
    fn fifo_within_a_depth_preserves_heuristic_order() {
        let pool = DepthPool::new();
        pool.push_all((0..10).map(|i| Task::new(i, 2)));
        let order: Vec<i32> = std::iter::from_fn(|| pool.pop().map(|t| t.node)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_clear() {
        let pool = DepthPool::new();
        assert!(pool.is_empty());
        pool.push_all([Task::new(1, 0), Task::new(2, 1), Task::new(3, 1)]);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.clear(), 3);
        assert!(pool.is_empty());
        assert!(pool.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_never_loses_tasks() {
        let pool = DepthPool::new();
        pool.push(Task::new(0u32, 0));
        let mut popped = 0;
        for i in 1..100u32 {
            pool.push(Task::new(i, (i % 7) as usize));
            if i % 3 == 0 {
                assert!(pool.pop().is_some());
                popped += 1;
            }
        }
        assert_eq!(pool.len(), 100 - popped);
    }

    #[test]
    fn concurrent_producers_and_consumers_drain_exactly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = Arc::new(DepthPool::new());
        let consumed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..2 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..500usize {
                        pool.push(Task::new(t * 1000 + i, i % 5));
                    }
                });
            }
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                let consumed = Arc::clone(&consumed);
                s.spawn(move || {
                    let mut local = 0;
                    for _ in 0..10_000 {
                        if pool.pop().is_some() {
                            local += 1;
                        }
                    }
                    consumed.fetch_add(local, Ordering::SeqCst);
                });
            }
        });
        // Whatever the consumers missed must still be in the pool.
        assert_eq!(consumed.load(Ordering::SeqCst) + pool.len(), 1000);
    }

    #[test]
    fn sharded_steal_prefers_the_shallowest_shard() {
        let pool = ShardedPool::new(3);
        pool.push(0, Task::new("own", 4));
        pool.push(1, Task::new("deep", 7));
        pool.push(2, Task::new("shallow", 2));
        // Worker 0 steals: shard 2 holds the globally shallowest task.
        assert_eq!(pool.steal(0).unwrap().node, "shallow");
        // Next steal must skip the thief's own shard even though it now
        // holds the shallowest task.
        assert_eq!(pool.steal(0).unwrap().node, "deep");
        assert!(
            pool.steal(0).is_none(),
            "only the thief's own shard is left"
        );
        assert_eq!(pool.pop_local(0).unwrap().node, "own");
    }

    #[test]
    fn sharded_owner_pops_are_local() {
        let pool = ShardedPool::new(2);
        pool.push_all(0, (0..5).map(|i| Task::new(i, 3)));
        pool.push(1, Task::new(99, 0));
        // Owner 0 pops its own FIFO run and never sees shard 1's task.
        for i in 0..5 {
            assert_eq!(pool.pop_local(0).unwrap().node, i);
        }
        assert!(pool.pop_local(0).is_none());
        assert_eq!(pool.len(), 1);
    }

    /// Regression test (PR 1 review finding): `steal` used to return `None`
    /// when its chosen victim shard was drained between the min-depth scan
    /// and the pop, even though other shards still held work.  Race an owner
    /// pop on the shallowest shard against a thief: with the fall-through the
    /// thief must *always* obtain a task, because the deep shard is never
    /// touched by anyone else.
    #[test]
    fn steal_falls_through_to_the_next_best_shard_when_the_victim_drains() {
        use std::sync::Arc;
        for _ in 0..500 {
            let pool = Arc::new(ShardedPool::new(3));
            pool.push(0, Task::new("shallow", 0));
            pool.push(1, Task::new("deep", 9));
            let stolen = std::thread::scope(|s| {
                let owner = {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || pool.pop_local(0))
                };
                let thief = {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || pool.steal(2))
                };
                let _ = owner.join().unwrap();
                thief.join().unwrap()
            });
            assert!(
                stolen.is_some(),
                "a task was available in a shard the whole time"
            );
        }
    }

    #[test]
    fn sharded_clear_counts_drops_across_all_shards() {
        let pool = ShardedPool::new(4);
        for shard in 0..4 {
            pool.push_all(shard, (0..(shard + 1)).map(|i| Task::new(i, i)));
        }
        assert_eq!(pool.len(), 1 + 2 + 3 + 4);
        assert_eq!(
            pool.clear(),
            10,
            "clear must report drops summed over shards"
        );
        assert!(pool.is_empty());
        assert_eq!(pool.clear(), 0);
    }

    #[test]
    fn sharded_clear_never_double_counts_concurrent_pops() {
        // The decision short-circuit scenario: workers keep popping while
        // one thread clears. Every task must be observed exactly once,
        // either by a pop or by the clear's drop count.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = Arc::new(ShardedPool::new(4));
        for shard in 0..4 {
            pool.push_all(shard, (0..250).map(|i| Task::new(i, i % 9)));
        }
        let popped = Arc::new(AtomicUsize::new(0));
        let dropped = std::thread::scope(|s| {
            for t in 0..3 {
                let pool = Arc::clone(&pool);
                let popped = Arc::clone(&popped);
                s.spawn(move || {
                    let mut local = 0;
                    for _ in 0..200 {
                        if pool.pop_local(t).is_some() {
                            local += 1;
                        }
                        if pool.steal(t).is_some() {
                            local += 1;
                        }
                    }
                    popped.fetch_add(local, Ordering::SeqCst);
                });
            }
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                std::thread::yield_now();
                pool.clear()
            })
            .join()
            .unwrap()
        });
        assert_eq!(
            popped.load(Ordering::SeqCst) + dropped + pool.len(),
            1000,
            "pops + cleared + remaining must account for every push"
        );
    }

    proptest! {
        /// The pool is a priority queue keyed by (depth, arrival index): the
        /// pop sequence must always be sorted by depth, and within a depth by
        /// arrival order.
        #[test]
        fn pop_order_is_depth_then_fifo(depths in proptest::collection::vec(0usize..6, 1..64)) {
            let pool = DepthPool::new();
            for (i, &d) in depths.iter().enumerate() {
                pool.push(Task::new(i, d));
            }
            let popped: Vec<Task<usize>> = std::iter::from_fn(|| pool.pop()).collect();
            prop_assert_eq!(popped.len(), depths.len());
            for w in popped.windows(2) {
                prop_assert!(w[0].depth <= w[1].depth);
                if w[0].depth == w[1].depth {
                    prop_assert!(w[0].node < w[1].node, "FIFO violated within a depth");
                }
            }
        }
    }
}
