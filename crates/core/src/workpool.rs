//! Order-preserving workpools.
//!
//! Generic deque-based work stealing visits tasks in LIFO order on the owner
//! and steals FIFO from the other end, which destroys the heuristic ordering
//! that search applications depend on (paper §2.3).  YewPar instead uses a
//! bespoke *order-preserving* workpool (§4.3): tasks are prioritised by the
//! depth at which they were generated — shallower subtrees are expected to be
//! larger and are handed out first — and within a depth tasks are served in
//! FIFO order, i.e. exactly the heuristic order in which the lazy node
//! generator produced them.
//!
//! [`DepthPool`] implements that policy behind a mutex.  The pool is shared
//! by all workers of a locality; for the cluster-scale experiments the
//! discrete-event simulator (`yewpar-sim`) instantiates one pool per
//! simulated locality.

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};

/// A task tagged with the tree depth of its root node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task<N> {
    /// The root node of the subtree this task must explore.
    pub node: N,
    /// Depth of `node` in the global search tree (root = 0).
    pub depth: usize,
}

impl<N> Task<N> {
    /// Convenience constructor.
    pub fn new(node: N, depth: usize) -> Self {
        Task { node, depth }
    }
}

/// An order-preserving workpool: lowest depth first, FIFO within a depth.
#[derive(Debug)]
pub struct DepthPool<N> {
    inner: Mutex<PoolInner<N>>,
}

#[derive(Debug)]
struct PoolInner<N> {
    by_depth: BTreeMap<usize, VecDeque<Task<N>>>,
    len: usize,
}

impl<N> Default for DepthPool<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> DepthPool<N> {
    /// An empty pool.
    pub fn new() -> Self {
        DepthPool {
            inner: Mutex::new(PoolInner {
                by_depth: BTreeMap::new(),
                len: 0,
            }),
        }
    }

    /// Add a task to the pool (appended after existing tasks of equal depth,
    /// preserving heuristic order).
    pub fn push(&self, task: Task<N>) {
        let mut inner = self.inner.lock();
        inner.by_depth.entry(task.depth).or_default().push_back(task);
        inner.len += 1;
    }

    /// Add several tasks, preserving their relative (heuristic) order.
    pub fn push_all(&self, tasks: impl IntoIterator<Item = Task<N>>) {
        let mut inner = self.inner.lock();
        for task in tasks {
            inner.by_depth.entry(task.depth).or_default().push_back(task);
            inner.len += 1;
        }
    }

    /// Remove and return the highest-priority task: the oldest task at the
    /// shallowest populated depth.
    pub fn pop(&self) -> Option<Task<N>> {
        let mut inner = self.inner.lock();
        let depth = *inner.by_depth.keys().next()?;
        let queue = inner.by_depth.get_mut(&depth).expect("key just observed");
        let task = queue.pop_front();
        if queue.is_empty() {
            inner.by_depth.remove(&depth);
        }
        if task.is_some() {
            inner.len -= 1;
        }
        task
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard every queued task, returning how many were dropped.  Used when
    /// a decision search short-circuits.
    pub fn clear(&self) -> usize {
        let mut inner = self.inner.lock();
        let dropped = inner.len;
        inner.by_depth.clear();
        inner.len = 0;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_lowest_depth_first() {
        let pool = DepthPool::new();
        pool.push(Task::new("deep", 5));
        pool.push(Task::new("shallow", 1));
        pool.push(Task::new("mid", 3));
        assert_eq!(pool.pop().unwrap().node, "shallow");
        assert_eq!(pool.pop().unwrap().node, "mid");
        assert_eq!(pool.pop().unwrap().node, "deep");
        assert!(pool.pop().is_none());
    }

    #[test]
    fn fifo_within_a_depth_preserves_heuristic_order() {
        let pool = DepthPool::new();
        pool.push_all((0..10).map(|i| Task::new(i, 2)));
        let order: Vec<i32> = std::iter::from_fn(|| pool.pop().map(|t| t.node)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_clear() {
        let pool = DepthPool::new();
        assert!(pool.is_empty());
        pool.push_all([Task::new(1, 0), Task::new(2, 1), Task::new(3, 1)]);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.clear(), 3);
        assert!(pool.is_empty());
        assert!(pool.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_never_loses_tasks() {
        let pool = DepthPool::new();
        pool.push(Task::new(0u32, 0));
        let mut popped = 0;
        for i in 1..100u32 {
            pool.push(Task::new(i, (i % 7) as usize));
            if i % 3 == 0 {
                assert!(pool.pop().is_some());
                popped += 1;
            }
        }
        assert_eq!(pool.len(), 100 - popped);
    }

    #[test]
    fn concurrent_producers_and_consumers_drain_exactly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = Arc::new(DepthPool::new());
        let consumed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..2 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..500usize {
                        pool.push(Task::new(t * 1000 + i, i % 5));
                    }
                });
            }
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                let consumed = Arc::clone(&consumed);
                s.spawn(move || {
                    let mut local = 0;
                    for _ in 0..10_000 {
                        if pool.pop().is_some() {
                            local += 1;
                        }
                    }
                    consumed.fetch_add(local, Ordering::SeqCst);
                });
            }
        });
        // Whatever the consumers missed must still be in the pool.
        assert_eq!(consumed.load(Ordering::SeqCst) + pool.len(), 1000);
    }

    proptest! {
        /// The pool is a priority queue keyed by (depth, arrival index): the
        /// pop sequence must always be sorted by depth, and within a depth by
        /// arrival order.
        #[test]
        fn pop_order_is_depth_then_fifo(depths in proptest::collection::vec(0usize..6, 1..64)) {
            let pool = DepthPool::new();
            for (i, &d) in depths.iter().enumerate() {
                pool.push(Task::new(i, d));
            }
            let popped: Vec<Task<usize>> = std::iter::from_fn(|| pool.pop()).collect();
            prop_assert_eq!(popped.len(), depths.len());
            for w in popped.windows(2) {
                prop_assert!(w[0].depth <= w[1].depth);
                if w[0].depth == w[1].depth {
                    prop_assert!(w[0].node < w[1].node, "FIFO violated within a depth");
                }
            }
        }
    }
}
