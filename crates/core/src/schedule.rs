//! Pluggable scheduling policies for the multiplexed [`Runtime`].
//!
//! Since PR 5 the runtime's dispatcher is an *allocator*: it owns the pool's
//! worker slots and leases disjoint subsets of them to searches, running
//! several searches concurrently and reclaiming workers as searches finish.
//! *Which* pending submissions are admitted, and with how many workers each,
//! is policy — and, mirroring the paper's design of keeping coordination
//! policy pluggable behind one engine, scheduling policy is a trait with the
//! mechanism (slot leasing, dispatch, reclamation) owned by the runtime:
//!
//! * [`Fifo`] — the PR 4 behaviour and the default: one search at a time
//!   over the whole pool, granted exactly the worker count it asked for
//!   (oversubscription allowed), admitted only when the pool is fully free.
//!   Zero scheduling latency, no co-tenant interference — still the right
//!   choice for a dedicated solver box.
//! * [`FairShare`] — multi-tenant service scheduling: a submission is
//!   admitted as soon as **one** worker is free, and the free workers are
//!   split proportionally across the pending queue (each submission capped
//!   at the worker count it requested).  Two searches requesting half an
//!   8-worker pool each therefore run *concurrently* on disjoint 4-worker
//!   subsets instead of serialising.
//! * [`DeadlineShare`] — priority- and deadline-aware elastic scheduling:
//!   admission is priority-weighted, idle workers grow running searches, and
//!   an urgent arrival *reclaims* workers from long-running low-priority
//!   searches (cooperative revocation) or preempts them outright instead of
//!   waiting for the background makespan.
//!
//! Since PR 8 a grant is a renegotiable *lease*, not a one-shot decision: in
//! addition to [`plan`](SchedulePolicy::plan) (admission) policies may
//! implement [`replan`](SchedulePolicy::replan), which maps the *running*
//! set and the still-pending queue to a list of [`Adjustment`]s — growing a
//! live search onto idle workers, shrinking it via cooperative revocation,
//! or preempting it entirely.  Policies only *decide*; the runtime executes
//! (leasing extra slots onto the live search, issuing revocation requests
//! that workers acknowledge at their next lifecycle poll).  This keeps
//! implementations pure and unit-testable — and lets the discrete-event
//! simulator drive the *same* policy objects in virtual time
//! (`yewpar_sim::simulate_multiplexed` / `simulate_multiplexed_elastic`), so
//! fairness and revocation-latency bounds can be asserted to the tick.
//!
//! [`Runtime`]: crate::runtime::Runtime

use std::time::Duration;

/// Scheduling priority of a submission, ordered lowest to highest.  The
/// default is [`Normal`](Priority::Normal); [`Fifo`] and [`FairShare`]
/// ignore priorities, [`DeadlineShare`] weights admission by them and only
/// reclaims workers for [`High`](Priority::High)/[`Urgent`](Priority::Urgent)
/// arrivals (preemption is reserved for `Urgent`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: first to shrink, first to preempt.
    Low,
    /// The default for every submission that does not say otherwise.
    #[default]
    Normal,
    /// Latency-sensitive: admitted ahead of `Normal` work and allowed to
    /// reclaim workers from running lower-priority searches.
    High,
    /// Interactive / contractual latency: may additionally *preempt*
    /// lower-priority searches when reclamation alone cannot make room.
    Urgent,
}

/// A submission waiting in the runtime's queue, as seen by a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRequest {
    /// The worker count the submission asked for
    /// ([`SearchConfig::workers`](crate::params::SearchConfig::workers)).
    pub requested_workers: usize,
    /// How long the submission has been waiting, from its submission
    /// timestamp to the dispatcher's planning instant (both read on the
    /// process-monotonic clock, computed by the dispatcher — the submitter
    /// never self-reports).  Time spent in the submission channel while the
    /// dispatcher runs a FIFO job inline therefore counts as waiting.
    pub queued_for: Duration,
    /// Scheduling priority ([`Priority::Normal`] unless the submitting
    /// session set one).
    pub priority: Priority,
    /// The submission's wall-clock budget
    /// ([`SearchConfig::deadline`](crate::params::SearchConfig::deadline)),
    /// if any — a deadline-bearing request is treated as more latency
    /// sensitive by [`DeadlineShare`] (soonest first within a priority).
    pub deadline: Option<Duration>,
}

impl Default for PendingRequest {
    fn default() -> Self {
        PendingRequest {
            requested_workers: 1,
            queued_for: Duration::ZERO,
            priority: Priority::Normal,
            deadline: None,
        }
    }
}

/// A live search, as seen by [`SchedulePolicy::replan`].  Snapshots are
/// taken by the dispatcher at each replanning instant and are ordered by
/// `search_id` (i.e. admission order) for determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunningSearch {
    /// The runtime-assigned search id ([`Adjustment`]s refer to it).
    pub search_id: u64,
    /// Workers currently leased to the search (the *target* count: workers
    /// whose revocation is already pending are still included here — see
    /// [`pending_revocations`](RunningSearch::pending_revocations)).
    pub workers: usize,
    /// The worker count the search originally asked for.
    pub requested_workers: usize,
    /// Scheduling priority the search was submitted with.
    pub priority: Priority,
    /// Whether the lease is renegotiable.  Non-elastic searches (anything
    /// admitted by a serial policy, or oversubscribed grants where several
    /// workers share a pool thread) keep their fixed grant; `Grow`/`Shrink`
    /// adjustments targeting them are ignored by the runtime.
    pub elastic: bool,
    /// How long the search has been running (grant instant to the
    /// replanning instant).
    pub running_for: Duration,
    /// Revocations issued but not yet acknowledged.  A policy that shrinks
    /// by `n` sees `pending_revocations` grow by `n` until the workers
    /// actually leave; subtract it from [`workers`](RunningSearch::workers)
    /// when computing capacity still to be freed, or the same deficit is
    /// re-shrunk on every replanning tick.
    pub pending_revocations: usize,
    /// Whether the search has already been preempted (cancelled by a
    /// previous `Preempt` adjustment) and is unwinding.  Its workers are
    /// capacity-in-flight: count them as incoming, do not reclaim again.
    pub preempted: bool,
}

impl RunningSearch {
    /// Workers the search will still hold once every pending revocation is
    /// acknowledged (`workers - pending_revocations`).
    pub fn settled_workers(&self) -> usize {
        self.workers.saturating_sub(self.pending_revocations)
    }
}

/// One admission decision: grant `workers` workers to the pending
/// submission at `index` (an index into the `pending` slice passed to
/// [`SchedulePolicy::plan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Index into the pending queue (FIFO order, 0 = oldest).
    pub index: usize,
    /// Workers granted.  At least 1; policies other than [`Fifo`] keep it
    /// within both the request and the free-worker budget.
    pub workers: usize,
}

/// One lease renegotiation decided by [`SchedulePolicy::replan`] and
/// executed by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adjustment {
    /// Lease `workers` additional pool workers onto the running search
    /// `search`.  Best-effort: the runtime grows by at most the free
    /// capacity, and not at all if the search is not elastic.
    Grow {
        /// Target [`RunningSearch::search_id`].
        search: u64,
        /// Additional workers to lease on.
        workers: usize,
    },
    /// Issue `workers` cooperative revocation requests to the running
    /// search `search`.  Revoked workers acknowledge at their next
    /// lifecycle poll: they offload any unexplored subtrees back to the
    /// survivors, drain their private buffers, and return their slot to the
    /// dispatcher — no task is ever stranded.  A search is never shrunk
    /// below one worker.
    Shrink {
        /// Target [`RunningSearch::search_id`].
        search: u64,
        /// Revocations to issue (capped by the runtime at `workers - 1`).
        workers: usize,
    },
    /// Cancel the running search `search` outright.  The search unwinds
    /// cooperatively and resolves as `Cancelled`, keeping any partial
    /// incumbent; its workers return to the pool as it finishes.
    Preempt {
        /// Target [`RunningSearch::search_id`].
        search: u64,
    },
}

/// A scheduling policy: decides which pending submissions the runtime
/// admits (and with how many workers each), and — for elastic policies —
/// how the leases of *running* searches are renegotiated as load changes.
///
/// The runtime calls [`plan`](SchedulePolicy::plan) whenever the scheduler
/// state changes (a submission arrives, a search finishes) and then executes
/// the returned admissions itself: leasing disjoint pool-thread slots,
/// dispatching the search, and reclaiming the lease when it finishes.
/// Under a concurrent policy it additionally calls
/// [`replan`](SchedulePolicy::replan) on a short periodic tick.  See the
/// [module docs](self) for the built-in policies.
pub trait SchedulePolicy: Send + 'static {
    /// Short policy name for logs, metrics and benchmark tables.
    fn name(&self) -> &'static str;

    /// May several searches run concurrently under this policy?  When
    /// `false` the runtime executes admitted jobs inline on the dispatcher
    /// thread (the PR 4 fast path: zero handoff latency, submission-to-start
    /// identical to the FIFO runtime); when `true` each admitted search gets
    /// its own driver thread so the dispatcher stays free to admit more.
    fn concurrent(&self) -> bool;

    /// Plan admissions for the current scheduler state.
    ///
    /// `pending` is the FIFO submission queue (index 0 = oldest),
    /// `free_workers` the unleased worker count, `capacity` the pool's total
    /// worker count, and `active` the number of searches currently running.
    /// Returned indices must be strictly increasing and each admission must
    /// grant at least one worker; the runtime debug-asserts both.
    fn plan(
        &mut self,
        pending: &[PendingRequest],
        free_workers: usize,
        capacity: usize,
        active: usize,
    ) -> Vec<Admission>;

    /// Renegotiate the leases of running searches.
    ///
    /// Called by the runtime *after* [`plan`](SchedulePolicy::plan) on every
    /// scheduling tick while searches are active under a concurrent policy
    /// (serial policies are never replanned — [`Fifo`] keeps its exact
    /// fixed-grant semantics).  `running` is a snapshot of the active
    /// searches in admission order; `pending` is whatever the preceding
    /// `plan` left unadmitted; `free_workers`/`capacity` as in `plan`.
    ///
    /// # Contract
    ///
    /// * The returned adjustments are **requests**, executed best-effort in
    ///   order: a `Grow` is capped by the free capacity at execution time, a
    ///   `Shrink` never takes a search below one worker, and adjustments
    ///   targeting non-elastic searches (or unknown ids) are ignored.
    /// * Revocation is **cooperative and asynchronous**: workers leave at
    ///   their next lifecycle poll, not at the instant of the decision.  Use
    ///   [`RunningSearch::pending_revocations`] (and
    ///   [`RunningSearch::preempted`]) to account for capacity already in
    ///   flight, otherwise the same deficit is re-claimed on every tick and
    ///   the grant thrashes.
    /// * Implementations must be deterministic functions of their arguments
    ///   (plus internal policy state): the virtual-time simulator drives the
    ///   same policy object through the same snapshots and asserts the
    ///   resulting schedule to the tick.
    /// * The default implementation returns no adjustments, so fixed-grant
    ///   policies need not opt in.
    fn replan(
        &mut self,
        running: &[RunningSearch],
        pending: &[PendingRequest],
        free_workers: usize,
        capacity: usize,
    ) -> Vec<Adjustment> {
        let _ = (running, pending, free_workers, capacity);
        Vec::new()
    }
}

/// One search at a time over the whole pool — the PR 4 scheduler and the
/// default.  The head of the queue is admitted only when the pool is fully
/// free and is granted exactly the worker count it requested, even beyond
/// the pool size (oversubscribed workers round-robin onto the leased
/// threads, exactly as before).  Grants are never renegotiated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fifo;

impl SchedulePolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn concurrent(&self) -> bool {
        false
    }

    fn plan(
        &mut self,
        pending: &[PendingRequest],
        free_workers: usize,
        capacity: usize,
        active: usize,
    ) -> Vec<Admission> {
        if active > 0 || free_workers < capacity {
            return Vec::new();
        }
        pending
            .first()
            .map(|head| {
                vec![Admission {
                    index: 0,
                    workers: head.requested_workers.max(1),
                }]
            })
            .unwrap_or_default()
    }
}

/// Distribute `free` workers round-robin across the elastic running
/// searches (in the order given), one worker per search per round, growing
/// them beyond their original requests if necessary: an idle worker helps
/// some search finish sooner, which is strictly better than idling.
/// Searches already unwinding (preempted) are skipped.
fn grow_into_idle(order: &[&RunningSearch], mut free: usize) -> Vec<Adjustment> {
    let mut extra = vec![0usize; order.len()];
    while free > 0 {
        let mut grew = false;
        for (i, search) in order.iter().enumerate() {
            if free == 0 {
                break;
            }
            if !search.elastic || search.preempted {
                continue;
            }
            extra[i] += 1;
            free -= 1;
            grew = true;
        }
        if !grew {
            break; // No elastic search to grow: the surplus stays free.
        }
    }
    order
        .iter()
        .zip(extra)
        .filter(|&(_, n)| n > 0)
        .map(|(search, workers)| Adjustment::Grow {
            search: search.search_id,
            workers,
        })
        .collect()
}

/// Reclaim what idle-time growth leased beyond each search's original
/// request (down to `requested_workers`, never below), so arriving
/// submissions are not starved by earlier opportunistic grows.
fn reclaim_over_grants(running: &[RunningSearch]) -> Vec<Adjustment> {
    running
        .iter()
        .filter(|search| search.elastic && !search.preempted)
        .filter_map(|search| {
            let target = search.requested_workers.max(1);
            let excess = search.settled_workers().saturating_sub(target);
            (excess > 0).then_some(Adjustment::Shrink {
                search: search.search_id,
                workers: excess,
            })
        })
        .collect()
}

/// Proportional worker split across the pending queue, admission as soon as
/// one worker is free.
///
/// Each planning round divides the free workers evenly over the still-
/// pending submissions (oldest first, remainder to the earlier ones via the
/// shrinking divisor), capping every grant at the submission's requested
/// worker count; a redistribution pass then tops admissions up to their
/// requests (oldest first) with whatever small requests left unused, so no
/// worker idles while an admitted request is unmet.  The policy is
/// work-conserving across the admitted set: a lone tenant that asks for the
/// whole pool gets it; concurrency arises whenever tenants request less
/// than the pool (or arrive while part of it is leased out).
///
/// Since PR 8 the policy is also work-conserving *after* admission: when
/// total demand is below the pool (the worker-stranding edge the
/// redistribution pass cannot fix, because every admitted request is already
/// satisfied in full), [`replan`](SchedulePolicy::replan) leases the
/// leftover workers onto the running elastic searches — and reclaims those
/// over-grants (back down to each search's request) as soon as a new
/// submission is waiting.  There is no priority-driven reclamation or
/// preemption; use [`DeadlineShare`] for that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FairShare;

impl SchedulePolicy for FairShare {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn concurrent(&self) -> bool {
        true
    }

    fn plan(
        &mut self,
        pending: &[PendingRequest],
        free_workers: usize,
        _capacity: usize,
        _active: usize,
    ) -> Vec<Admission> {
        let mut admissions = Vec::new();
        let mut free = free_workers;
        let mut remaining = pending.len();
        for (index, request) in pending.iter().enumerate() {
            if free == 0 {
                break;
            }
            // Ceiling division: the remainder goes to the *older* waiters.
            let share = free.div_ceil(remaining).max(1);
            let workers = request.requested_workers.clamp(1, share).min(free);
            admissions.push(Admission { index, workers });
            free -= workers;
            remaining -= 1;
        }
        // Redistribution pass: a small request early in the queue shrinks
        // later shares, which can leave workers unleased while another
        // admitted request is still below what it asked for.  Grants are
        // fixed for a search's lifetime, so top admissions up to their
        // requests (oldest first) rather than strand workers idle.
        while free > 0 {
            let mut granted_any = false;
            for admission in admissions.iter_mut() {
                if free == 0 {
                    break;
                }
                let requested = pending[admission.index].requested_workers.max(1);
                if admission.workers < requested {
                    let top_up = (requested - admission.workers).min(free);
                    admission.workers += top_up;
                    free -= top_up;
                    granted_any = true;
                }
            }
            if !granted_any {
                break; // Every admitted request is satisfied in full.
            }
        }
        admissions
    }

    fn replan(
        &mut self,
        running: &[RunningSearch],
        pending: &[PendingRequest],
        free_workers: usize,
        _capacity: usize,
    ) -> Vec<Adjustment> {
        if !pending.is_empty() {
            // Submissions are waiting: take back what idle-time growth
            // leased beyond the original requests so `plan` can admit them.
            return reclaim_over_grants(running);
        }
        if free_workers == 0 {
            return Vec::new();
        }
        // The stranding edge: every admitted request is satisfied and
        // nothing is pending, yet workers sit idle.  Lease them onto the
        // running searches (admission order) instead.
        let order: Vec<&RunningSearch> = running.iter().collect();
        grow_into_idle(&order, free_workers)
    }
}

/// Priority- and deadline-aware elastic scheduling.
///
/// Admission works like [`FairShare`]'s proportional split, but the queue is
/// served in priority order (ties: soonest deadline, then oldest first), so
/// an urgent arrival is never starved behind bulk work.  The policy earns
/// its name in [`replan`](SchedulePolicy::replan):
///
/// * **Grow** — with nothing pending, idle workers are leased onto running
///   elastic searches, highest priority first.
/// * **Reclaim** — a pending [`High`](Priority::High)/[`Urgent`](Priority::Urgent)
///   request that cannot be admitted from free capacity shrinks running
///   lower-priority searches (longest-running, lowest-priority first — the
///   searches that have had the most service), via cooperative revocation
///   and never below one worker.  The request is then admitted within one
///   revocation-latency bound instead of waiting for the background
///   makespan.
/// * **Preempt** — when an [`Urgent`](Priority::Urgent) request *still*
///   cannot fit, the lowest-priority running searches are cancelled
///   outright (resolving `Cancelled` with their partial incumbents).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineShare;

/// Priority-descending service order for the pending queue: highest
/// priority first, then soonest deadline (requests with a deadline ahead of
/// those without), then FIFO.
fn priority_order(pending: &[PendingRequest]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..pending.len()).collect();
    order.sort_by(|&a, &b| {
        pending[b]
            .priority
            .cmp(&pending[a].priority)
            .then_with(|| match (pending[a].deadline, pending[b].deadline) {
                (Some(da), Some(db)) => da.cmp(&db),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            })
            .then(a.cmp(&b))
    });
    order
}

impl SchedulePolicy for DeadlineShare {
    fn name(&self) -> &'static str {
        "deadline-share"
    }

    fn concurrent(&self) -> bool {
        true
    }

    fn plan(
        &mut self,
        pending: &[PendingRequest],
        free_workers: usize,
        _capacity: usize,
        _active: usize,
    ) -> Vec<Admission> {
        let order = priority_order(pending);
        let mut free = free_workers;
        let mut remaining = pending.len();
        let mut admissions = Vec::new();
        for &index in &order {
            if free == 0 {
                break;
            }
            let share = free.div_ceil(remaining).max(1);
            let workers = pending[index].requested_workers.clamp(1, share).min(free);
            admissions.push(Admission { index, workers });
            free -= workers;
            remaining -= 1;
        }
        // Top admissions up to their requests in the same priority order.
        while free > 0 {
            let mut granted_any = false;
            for admission in admissions.iter_mut() {
                if free == 0 {
                    break;
                }
                let requested = pending[admission.index].requested_workers.max(1);
                if admission.workers < requested {
                    let top_up = (requested - admission.workers).min(free);
                    admission.workers += top_up;
                    free -= top_up;
                    granted_any = true;
                }
            }
            if !granted_any {
                break;
            }
        }
        admissions.sort_by_key(|admission| admission.index);
        admissions
    }

    fn replan(
        &mut self,
        running: &[RunningSearch],
        pending: &[PendingRequest],
        free_workers: usize,
        capacity: usize,
    ) -> Vec<Adjustment> {
        if pending.is_empty() {
            if free_workers == 0 {
                return Vec::new();
            }
            // Grow into idle capacity, highest priority first (ties:
            // fewest workers first, then admission order).
            let mut order: Vec<&RunningSearch> = running.iter().collect();
            order.sort_by(|a, b| {
                b.priority
                    .cmp(&a.priority)
                    .then(a.workers.cmp(&b.workers))
                    .then(a.search_id.cmp(&b.search_id))
            });
            return grow_into_idle(&order, free_workers);
        }

        // Submissions are waiting.  First take back opportunistic
        // over-grants; that alone often frees enough for `plan`.
        let mut adjustments = reclaim_over_grants(running);
        let reclaimed: usize = adjustments
            .iter()
            .map(|adjustment| match adjustment {
                Adjustment::Shrink { workers, .. } => *workers,
                _ => 0,
            })
            .sum();

        // The most urgent unadmitted request, if it warrants reclamation.
        let order = priority_order(pending);
        let urgent = &pending[order[0]];
        if urgent.priority < Priority::High {
            return adjustments;
        }

        // Capacity already on its way back: free workers, revocations in
        // flight, whole searches unwinding, plus what we just reclaimed.
        let incoming: usize = running
            .iter()
            .map(|search| {
                if search.preempted {
                    search.workers
                } else {
                    search.pending_revocations
                }
            })
            .sum::<usize>()
            + free_workers
            + reclaimed;
        let want = urgent.requested_workers.max(1).min(capacity);
        let mut deficit = want.saturating_sub(incoming);
        if deficit == 0 {
            return adjustments;
        }

        // Shrink candidates: elastic, lower priority than the urgent
        // request, lowest priority and longest running first (the searches
        // that have had the most service give back first).
        let mut candidates: Vec<&RunningSearch> = running
            .iter()
            .filter(|search| {
                search.elastic && !search.preempted && search.priority < urgent.priority
            })
            .collect();
        candidates.sort_by(|a, b| {
            a.priority
                .cmp(&b.priority)
                .then(b.running_for.cmp(&a.running_for))
                .then(a.search_id.cmp(&b.search_id))
        });
        for search in &candidates {
            if deficit == 0 {
                break;
            }
            // Cooperative revocation never takes the last worker.
            let takeable = search.settled_workers().saturating_sub(1).min(deficit);
            if takeable > 0 {
                adjustments.push(Adjustment::Shrink {
                    search: search.search_id,
                    workers: takeable,
                });
                deficit -= takeable;
            }
        }

        // Still short and the request is Urgent: preempt whole searches,
        // lowest priority / longest running first.
        if deficit > 0 && urgent.priority == Priority::Urgent {
            let mut victims: Vec<&RunningSearch> = running
                .iter()
                .filter(|search| !search.preempted && search.priority < Priority::Urgent)
                .collect();
            victims.sort_by(|a, b| {
                a.priority
                    .cmp(&b.priority)
                    .then(b.running_for.cmp(&a.running_for))
                    .then(a.search_id.cmp(&b.search_id))
            });
            for search in victims {
                if deficit == 0 {
                    break;
                }
                adjustments.push(Adjustment::Preempt {
                    search: search.search_id,
                });
                deficit = deficit.saturating_sub(search.settled_workers());
            }
        }
        adjustments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(requests: &[usize]) -> Vec<PendingRequest> {
        requests
            .iter()
            .map(|&requested_workers| PendingRequest {
                requested_workers,
                ..PendingRequest::default()
            })
            .collect()
    }

    fn running(search_id: u64, workers: usize, requested: usize) -> RunningSearch {
        RunningSearch {
            search_id,
            workers,
            requested_workers: requested,
            priority: Priority::Normal,
            elastic: true,
            running_for: Duration::ZERO,
            pending_revocations: 0,
            preempted: false,
        }
    }

    #[test]
    fn fifo_admits_only_the_head_and_only_on_an_idle_pool() {
        let mut fifo = Fifo;
        let queue = pending(&[4, 2, 8]);
        assert_eq!(
            fifo.plan(&queue, 8, 8, 0),
            vec![Admission {
                index: 0,
                workers: 4
            }],
            "head admitted with exactly its requested workers"
        );
        assert!(
            fifo.plan(&queue, 4, 8, 1).is_empty(),
            "a busy pool admits nothing"
        );
        assert!(fifo.plan(&[], 8, 8, 0).is_empty());
    }

    #[test]
    fn fifo_grants_oversubscribed_requests_in_full() {
        let mut fifo = Fifo;
        let queue = pending(&[16]);
        assert_eq!(
            fifo.plan(&queue, 2, 2, 0),
            vec![Admission {
                index: 0,
                workers: 16
            }],
            "PR 4 semantics: the search gets the worker count it asked for"
        );
    }

    #[test]
    fn fifo_never_replans() {
        let mut fifo = Fifo;
        let live = [running(1, 4, 4)];
        assert!(
            fifo.replan(&live, &pending(&[8]), 4, 8).is_empty(),
            "fixed-grant policies keep the default no-op replan"
        );
    }

    #[test]
    fn fair_share_splits_the_pool_proportionally() {
        let mut fair = FairShare;
        // Two tenants each asking for half an 8-worker pool: both admitted.
        assert_eq!(
            fair.plan(&pending(&[4, 4]), 8, 8, 0),
            vec![
                Admission {
                    index: 0,
                    workers: 4
                },
                Admission {
                    index: 1,
                    workers: 4
                }
            ]
        );
        // Three tenants asking for everything: 2 + 2 + 1 over 5 free.
        assert_eq!(
            fair.plan(&pending(&[8, 8, 8]), 5, 8, 1),
            vec![
                Admission {
                    index: 0,
                    workers: 2
                },
                Admission {
                    index: 1,
                    workers: 2
                },
                Admission {
                    index: 2,
                    workers: 1
                }
            ]
        );
    }

    #[test]
    fn fair_share_is_work_conserving_for_a_lone_tenant() {
        let mut fair = FairShare;
        assert_eq!(
            fair.plan(&pending(&[8]), 8, 8, 0),
            vec![Admission {
                index: 0,
                workers: 8
            }],
            "a lone tenant asking for the whole pool gets it"
        );
    }

    #[test]
    fn fair_share_admits_with_a_single_free_worker_and_never_overcommits() {
        let mut fair = FairShare;
        assert_eq!(
            fair.plan(&pending(&[4, 4]), 1, 8, 3),
            vec![Admission {
                index: 0,
                workers: 1
            }],
            "admission as soon as one worker is free; the rest stay queued"
        );
        assert!(fair.plan(&pending(&[4]), 0, 8, 4).is_empty());
        // Grants never exceed the request even with a surplus of workers.
        assert_eq!(
            fair.plan(&pending(&[2]), 8, 8, 0),
            vec![Admission {
                index: 0,
                workers: 2
            }]
        );
    }

    #[test]
    fn fair_share_redistributes_what_small_requests_leave_unused() {
        let mut fair = FairShare;
        // A greedy request followed by a tiny one on an idle 8-worker pool:
        // the first pass would grant 4 + 1 and strand 3 workers; the
        // redistribution pass tops the greedy request back up to 7.
        assert_eq!(
            fair.plan(&pending(&[8, 1]), 8, 8, 0),
            vec![
                Admission {
                    index: 0,
                    workers: 7
                },
                Admission {
                    index: 1,
                    workers: 1
                }
            ],
            "no worker stays idle while an admitted request is unmet"
        );
        // Total demand below the pool: everyone gets their request, the
        // genuine surplus stays free for future arrivals.
        assert_eq!(
            fair.plan(&pending(&[2, 2]), 8, 8, 0),
            vec![
                Admission {
                    index: 0,
                    workers: 2
                },
                Admission {
                    index: 1,
                    workers: 2
                }
            ]
        );
    }

    #[test]
    fn fair_share_replan_leaves_no_worker_idle_after_small_admissions() {
        // The stranding edge (satellite): 3 small requests on an 8-pool are
        // admitted in full (2+2+2) with 2 workers left over; the plan pass
        // cannot place them (every request is satisfied), so replan must.
        let mut fair = FairShare;
        let queue = pending(&[2, 2, 2]);
        let admissions = fair.plan(&queue, 8, 8, 0);
        let granted: usize = admissions.iter().map(|a| a.workers).sum();
        assert_eq!(granted, 6, "plan caps every grant at its request");
        let live: Vec<RunningSearch> = admissions
            .iter()
            .enumerate()
            .map(|(i, a)| running(i as u64 + 1, a.workers, queue[a.index].requested_workers))
            .collect();
        let adjustments = fair.replan(&live, &[], 8 - granted, 8);
        let grown: usize = adjustments
            .iter()
            .map(|adj| match adj {
                Adjustment::Grow { workers, .. } => *workers,
                _ => panic!("grow-only replan, got {adj:?}"),
            })
            .sum();
        assert_eq!(grown, 2, "zero idle workers post-plan: {adjustments:?}");
        // Round-robin: the two leftovers go to the two oldest searches.
        assert_eq!(
            adjustments,
            vec![
                Adjustment::Grow {
                    search: 1,
                    workers: 1
                },
                Adjustment::Grow {
                    search: 2,
                    workers: 1
                }
            ]
        );
    }

    #[test]
    fn fair_share_replan_reclaims_over_grants_when_submissions_wait() {
        let mut fair = FairShare;
        // Search 1 grew from its requested 2 workers to 5 during an idle
        // spell; a new arrival must get those over-grants back.
        let mut live = [running(1, 5, 2)];
        assert_eq!(
            fair.replan(&live, &pending(&[4]), 0, 8),
            vec![Adjustment::Shrink {
                search: 1,
                workers: 3
            }]
        );
        // Idempotent across ticks: once the revocations are in flight the
        // settled worker count matches the request and nothing more is taken.
        live[0].pending_revocations = 3;
        assert!(fair.replan(&live, &pending(&[4]), 0, 8).is_empty());
        // And never below the original request, let alone below one.
        assert!(fair
            .replan(&[running(1, 2, 2)], &pending(&[4]), 0, 8)
            .is_empty());
    }

    #[test]
    fn deadline_share_plans_in_priority_order() {
        let mut policy = DeadlineShare;
        let mut queue = pending(&[8, 8]);
        queue[1].priority = Priority::High;
        // 5 free workers: the High request (index 1) is served first and
        // takes the ceiling share.
        assert_eq!(
            policy.plan(&queue, 5, 8, 1),
            vec![
                Admission {
                    index: 0,
                    workers: 2
                },
                Admission {
                    index: 1,
                    workers: 3
                }
            ],
            "indices ascending, shares assigned priority-first"
        );
        // Deadlines break priority ties: soonest first.
        let mut queue = pending(&[8, 8]);
        queue[0].deadline = Some(Duration::from_secs(10));
        queue[1].deadline = Some(Duration::from_secs(1));
        assert_eq!(
            policy.plan(&queue, 5, 8, 1),
            vec![
                Admission {
                    index: 0,
                    workers: 2
                },
                Admission {
                    index: 1,
                    workers: 3
                }
            ]
        );
    }

    #[test]
    fn deadline_share_reclaims_workers_for_an_urgent_arrival() {
        let mut policy = DeadlineShare;
        // A saturating Normal background search holds all 8 workers; an
        // Urgent request for 4 arrives.  Nothing is free, so the background
        // search is shrunk by exactly the deficit.
        let mut bg = running(1, 8, 8);
        bg.running_for = Duration::from_secs(5);
        let mut queue = pending(&[4]);
        queue[0].priority = Priority::Urgent;
        assert_eq!(
            policy.replan(&[bg.clone()], &queue, 0, 8),
            vec![Adjustment::Shrink {
                search: 1,
                workers: 4
            }]
        );
        // Idempotent while the revocations are in flight.
        bg.pending_revocations = 4;
        assert!(policy.replan(&[bg.clone()], &queue, 0, 8).is_empty());
        // Normal-priority arrivals never trigger reclamation.
        assert!(policy
            .replan(&[running(1, 8, 8)], &pending(&[4]), 0, 8)
            .is_empty());
    }

    #[test]
    fn deadline_share_never_shrinks_below_one_and_escalates_to_preemption() {
        let mut policy = DeadlineShare;
        // Two single-worker Low searches cannot give anything up
        // cooperatively (never below one worker), so an Urgent request
        // preempts them outright — lowest priority, longest running first.
        let mut a = running(1, 1, 1);
        a.priority = Priority::Low;
        a.running_for = Duration::from_secs(9);
        let mut b = running(2, 1, 1);
        b.priority = Priority::Low;
        b.running_for = Duration::from_secs(1);
        let mut queue = pending(&[2]);
        queue[0].priority = Priority::Urgent;
        assert_eq!(
            policy.replan(&[a, b], &queue, 0, 2),
            vec![
                Adjustment::Preempt { search: 1 },
                Adjustment::Preempt { search: 2 }
            ]
        );
        // High (non-Urgent) requests shrink but never preempt.
        let mut c = running(1, 1, 1);
        c.priority = Priority::Low;
        let mut queue = pending(&[2]);
        queue[0].priority = Priority::High;
        assert!(policy.replan(&[c], &queue, 0, 2).is_empty());
    }

    #[test]
    fn deadline_share_grows_idle_capacity_priority_first() {
        let mut policy = DeadlineShare;
        let mut high = running(2, 2, 4);
        high.priority = Priority::High;
        let low = running(1, 2, 4);
        // 3 idle workers, nothing pending: the High search gets the extra
        // round-robin share.
        assert_eq!(
            policy.replan(&[low, high], &[], 3, 8),
            vec![
                Adjustment::Grow {
                    search: 2,
                    workers: 2
                },
                Adjustment::Grow {
                    search: 1,
                    workers: 1
                }
            ]
        );
    }

    #[test]
    fn policy_names_and_modes() {
        assert_eq!(Fifo.name(), "fifo");
        assert!(!Fifo.concurrent());
        assert_eq!(FairShare.name(), "fair-share");
        assert!(FairShare.concurrent());
        assert_eq!(DeadlineShare.name(), "deadline-share");
        assert!(DeadlineShare.concurrent());
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert!(Priority::High < Priority::Urgent);
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
