//! Pluggable scheduling policies for the multiplexed [`Runtime`].
//!
//! Since PR 5 the runtime's dispatcher is an *allocator*: it owns the pool's
//! worker slots and leases disjoint subsets of them to searches, running
//! several searches concurrently and reclaiming workers as searches finish.
//! *Which* pending submissions are admitted, and with how many workers each,
//! is policy — and, mirroring the paper's design of keeping coordination
//! policy pluggable behind one engine, scheduling policy is a trait with the
//! mechanism (slot leasing, dispatch, reclamation) owned by the runtime:
//!
//! * [`Fifo`] — the PR 4 behaviour and the default: one search at a time
//!   over the whole pool, granted exactly the worker count it asked for
//!   (oversubscription allowed), admitted only when the pool is fully free.
//!   Zero scheduling latency, no co-tenant interference — still the right
//!   choice for a dedicated solver box.
//! * [`FairShare`] — multi-tenant service scheduling: a submission is
//!   admitted as soon as **one** worker is free, and the free workers are
//!   split proportionally across the pending queue (each submission capped
//!   at the worker count it requested).  Two searches requesting half an
//!   8-worker pool each therefore run *concurrently* on disjoint 4-worker
//!   subsets instead of serialising.
//!
//! A policy only *plans* ([`SchedulePolicy::plan`]): it maps the pending
//! queue and the free-worker count to admissions.  It never touches threads
//! or slots, which keeps implementations pure and unit-testable — and lets
//! the discrete-event simulator drive the *same* policy objects in virtual
//! time (`yewpar_sim::simulate_multiplexed`), so fairness properties can be
//! asserted deterministically.
//!
//! [`Runtime`]: crate::runtime::Runtime

use std::time::Duration;

/// A submission waiting in the runtime's queue, as seen by a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRequest {
    /// The worker count the submission asked for
    /// ([`SearchConfig::workers`](crate::params::SearchConfig::workers)).
    pub requested_workers: usize,
    /// How long the submission has been waiting, from its submission
    /// timestamp to the dispatcher's planning instant (both read on the
    /// process-monotonic clock, computed by the dispatcher — the submitter
    /// never self-reports).  Time spent in the submission channel while the
    /// dispatcher runs a FIFO job inline therefore counts as waiting.
    pub queued_for: Duration,
}

/// One admission decision: grant `workers` workers to the pending
/// submission at `index` (an index into the `pending` slice passed to
/// [`SchedulePolicy::plan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Index into the pending queue (FIFO order, 0 = oldest).
    pub index: usize,
    /// Workers granted.  At least 1; policies other than [`Fifo`] keep it
    /// within both the request and the free-worker budget.
    pub workers: usize,
}

/// A scheduling policy: decides which pending submissions the runtime
/// admits, and with how many workers each.
///
/// The runtime calls [`plan`](SchedulePolicy::plan) whenever the scheduler
/// state changes (a submission arrives, a search finishes) and then executes
/// the returned admissions itself: leasing disjoint pool-thread slots,
/// dispatching the search, and reclaiming the lease when it finishes.  See
/// the [module docs](self) for the two built-in policies.
pub trait SchedulePolicy: Send + 'static {
    /// Short policy name for logs, metrics and benchmark tables.
    fn name(&self) -> &'static str;

    /// May several searches run concurrently under this policy?  When
    /// `false` the runtime executes admitted jobs inline on the dispatcher
    /// thread (the PR 4 fast path: zero handoff latency, submission-to-start
    /// identical to the FIFO runtime); when `true` each admitted search gets
    /// its own driver thread so the dispatcher stays free to admit more.
    fn concurrent(&self) -> bool;

    /// Plan admissions for the current scheduler state.
    ///
    /// `pending` is the FIFO submission queue (index 0 = oldest),
    /// `free_workers` the unleased worker count, `capacity` the pool's total
    /// worker count, and `active` the number of searches currently running.
    /// Returned indices must be strictly increasing and each admission must
    /// grant at least one worker; the runtime debug-asserts both.
    fn plan(
        &mut self,
        pending: &[PendingRequest],
        free_workers: usize,
        capacity: usize,
        active: usize,
    ) -> Vec<Admission>;
}

/// One search at a time over the whole pool — the PR 4 scheduler and the
/// default.  The head of the queue is admitted only when the pool is fully
/// free and is granted exactly the worker count it requested, even beyond
/// the pool size (oversubscribed workers round-robin onto the leased
/// threads, exactly as before).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fifo;

impl SchedulePolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn concurrent(&self) -> bool {
        false
    }

    fn plan(
        &mut self,
        pending: &[PendingRequest],
        free_workers: usize,
        capacity: usize,
        active: usize,
    ) -> Vec<Admission> {
        if active > 0 || free_workers < capacity {
            return Vec::new();
        }
        pending
            .first()
            .map(|head| {
                vec![Admission {
                    index: 0,
                    workers: head.requested_workers.max(1),
                }]
            })
            .unwrap_or_default()
    }
}

/// Proportional worker split across the pending queue, admission as soon as
/// one worker is free.
///
/// Each planning round divides the free workers evenly over the still-
/// pending submissions (oldest first, remainder to the earlier ones via the
/// shrinking divisor), capping every grant at the submission's requested
/// worker count; a redistribution pass then tops admissions up to their
/// requests (oldest first) with whatever small requests left unused, so no
/// worker idles while an admitted request is unmet.  The policy is
/// work-conserving across the admitted set: a lone tenant that asks for the
/// whole pool gets it; concurrency arises whenever tenants request less
/// than the pool (or arrive while part of it is leased out).  Admitted
/// searches keep their allotment until they finish — there is no preemption,
/// so fairness is *admission-time* fairness (see README for when FIFO is
/// still the right choice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FairShare;

impl SchedulePolicy for FairShare {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn concurrent(&self) -> bool {
        true
    }

    fn plan(
        &mut self,
        pending: &[PendingRequest],
        free_workers: usize,
        _capacity: usize,
        _active: usize,
    ) -> Vec<Admission> {
        let mut admissions = Vec::new();
        let mut free = free_workers;
        let mut remaining = pending.len();
        for (index, request) in pending.iter().enumerate() {
            if free == 0 {
                break;
            }
            // Ceiling division: the remainder goes to the *older* waiters.
            let share = free.div_ceil(remaining).max(1);
            let workers = request.requested_workers.clamp(1, share).min(free);
            admissions.push(Admission { index, workers });
            free -= workers;
            remaining -= 1;
        }
        // Redistribution pass: a small request early in the queue shrinks
        // later shares, which can leave workers unleased while another
        // admitted request is still below what it asked for.  Grants are
        // fixed for a search's lifetime, so top admissions up to their
        // requests (oldest first) rather than strand workers idle.
        while free > 0 {
            let mut granted_any = false;
            for admission in admissions.iter_mut() {
                if free == 0 {
                    break;
                }
                let requested = pending[admission.index].requested_workers.max(1);
                if admission.workers < requested {
                    let top_up = (requested - admission.workers).min(free);
                    admission.workers += top_up;
                    free -= top_up;
                    granted_any = true;
                }
            }
            if !granted_any {
                break; // Every admitted request is satisfied in full.
            }
        }
        admissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(requests: &[usize]) -> Vec<PendingRequest> {
        requests
            .iter()
            .map(|&requested_workers| PendingRequest {
                requested_workers,
                queued_for: Duration::ZERO,
            })
            .collect()
    }

    #[test]
    fn fifo_admits_only_the_head_and_only_on_an_idle_pool() {
        let mut fifo = Fifo;
        let queue = pending(&[4, 2, 8]);
        assert_eq!(
            fifo.plan(&queue, 8, 8, 0),
            vec![Admission {
                index: 0,
                workers: 4
            }],
            "head admitted with exactly its requested workers"
        );
        assert!(
            fifo.plan(&queue, 4, 8, 1).is_empty(),
            "a busy pool admits nothing"
        );
        assert!(fifo.plan(&[], 8, 8, 0).is_empty());
    }

    #[test]
    fn fifo_grants_oversubscribed_requests_in_full() {
        let mut fifo = Fifo;
        let queue = pending(&[16]);
        assert_eq!(
            fifo.plan(&queue, 2, 2, 0),
            vec![Admission {
                index: 0,
                workers: 16
            }],
            "PR 4 semantics: the search gets the worker count it asked for"
        );
    }

    #[test]
    fn fair_share_splits_the_pool_proportionally() {
        let mut fair = FairShare;
        // Two tenants each asking for half an 8-worker pool: both admitted.
        assert_eq!(
            fair.plan(&pending(&[4, 4]), 8, 8, 0),
            vec![
                Admission {
                    index: 0,
                    workers: 4
                },
                Admission {
                    index: 1,
                    workers: 4
                }
            ]
        );
        // Three tenants asking for everything: 2 + 2 + 1 over 5 free.
        assert_eq!(
            fair.plan(&pending(&[8, 8, 8]), 5, 8, 1),
            vec![
                Admission {
                    index: 0,
                    workers: 2
                },
                Admission {
                    index: 1,
                    workers: 2
                },
                Admission {
                    index: 2,
                    workers: 1
                }
            ]
        );
    }

    #[test]
    fn fair_share_is_work_conserving_for_a_lone_tenant() {
        let mut fair = FairShare;
        assert_eq!(
            fair.plan(&pending(&[8]), 8, 8, 0),
            vec![Admission {
                index: 0,
                workers: 8
            }],
            "a lone tenant asking for the whole pool gets it"
        );
    }

    #[test]
    fn fair_share_admits_with_a_single_free_worker_and_never_overcommits() {
        let mut fair = FairShare;
        assert_eq!(
            fair.plan(&pending(&[4, 4]), 1, 8, 3),
            vec![Admission {
                index: 0,
                workers: 1
            }],
            "admission as soon as one worker is free; the rest stay queued"
        );
        assert!(fair.plan(&pending(&[4]), 0, 8, 4).is_empty());
        // Grants never exceed the request even with a surplus of workers.
        assert_eq!(
            fair.plan(&pending(&[2]), 8, 8, 0),
            vec![Admission {
                index: 0,
                workers: 2
            }]
        );
    }

    #[test]
    fn fair_share_redistributes_what_small_requests_leave_unused() {
        let mut fair = FairShare;
        // A greedy request followed by a tiny one on an idle 8-worker pool:
        // the first pass would grant 4 + 1 and strand 3 workers; the
        // redistribution pass tops the greedy request back up to 7.
        assert_eq!(
            fair.plan(&pending(&[8, 1]), 8, 8, 0),
            vec![
                Admission {
                    index: 0,
                    workers: 7
                },
                Admission {
                    index: 1,
                    workers: 1
                }
            ],
            "no worker stays idle while an admitted request is unmet"
        );
        // Total demand below the pool: everyone gets their request, the
        // genuine surplus stays free for future arrivals.
        assert_eq!(
            fair.plan(&pending(&[2, 2]), 8, 8, 0),
            vec![
                Admission {
                    index: 0,
                    workers: 2
                },
                Admission {
                    index: 1,
                    workers: 2
                }
            ]
        );
    }

    #[test]
    fn policy_names_and_modes() {
        assert_eq!(Fifo.name(), "fifo");
        assert!(!Fifo.concurrent());
        assert_eq!(FairShare.name(), "fair-share");
        assert!(FairShare.concurrent());
    }
}
