//! Error types for skeleton configuration and execution.

use std::fmt;

/// Errors produced when configuring or running a search skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A configuration parameter was outside its valid range.
    InvalidConfig(String),
    /// A worker thread panicked during the search.
    WorkerPanic(String),
    /// An instance file could not be parsed.
    Parse(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid skeleton configuration: {msg}"),
            Error::WorkerPanic(msg) => write!(f, "search worker panicked: {msg}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            Error::InvalidConfig("dcutoff".into()).to_string(),
            "invalid skeleton configuration: dcutoff"
        );
        assert_eq!(
            Error::WorkerPanic("boom".into()).to_string(),
            "search worker panicked: boom"
        );
        assert_eq!(
            Error::Parse("bad line".into()).to_string(),
            "parse error: bad line"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
